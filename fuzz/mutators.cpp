#include "fuzz/mutators.hpp"

#include <algorithm>
#include <array>

#include "proto/codec.hpp"
#include "proto/messages.hpp"
#include "util/serialize.hpp"

namespace bsfuzz {

namespace {

std::string Hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return buf;
}

void PutU32(bsutil::ByteVec& data, std::size_t off, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    data[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

/// Flip one random bit.
std::string BitFlip(bsutil::ByteVec& d, bsutil::Rng& rng) {
  if (d.empty()) return "bitflip:noop";
  const std::size_t off = rng.Below(d.size());
  const unsigned bit = static_cast<unsigned>(rng.Below(8));
  d[off] ^= static_cast<std::uint8_t>(1u << bit);
  return "bitflip@" + std::to_string(off) + "." + std::to_string(bit);
}

/// Overwrite one byte with an interesting value.
std::string ByteSet(bsutil::ByteVec& d, bsutil::Rng& rng) {
  if (d.empty()) return "byteset:noop";
  static constexpr std::uint8_t kInteresting[] = {0x00, 0x01, 0x7f, 0x80,
                                                  0xfd, 0xfe, 0xff};
  const std::size_t off = rng.Below(d.size());
  d[off] = kInteresting[rng.Below(std::size(kInteresting))];
  return "byteset@" + std::to_string(off) + "=" + std::to_string(d[off]);
}

/// Cut the input at a random point (torn frame / short read).
std::string Truncate(bsutil::ByteVec& d, bsutil::Rng& rng) {
  if (d.empty()) return "truncate:noop";
  const std::size_t keep = rng.Below(d.size());
  d.resize(keep);
  return "truncate(" + std::to_string(keep) + ")";
}

/// Append random garbage (trailing bytes past a valid tail).
std::string Extend(bsutil::ByteVec& d, bsutil::Rng& rng) {
  const std::size_t n = 1 + rng.Below(24);
  for (std::size_t i = 0; i < n; ++i) {
    d.push_back(static_cast<std::uint8_t>(rng.Next()));
  }
  return "extend(" + std::to_string(n) + ")";
}

/// Overwrite a 4-byte aligned-ish region with a lying length field. Targets
/// the protocol header length offset (16) with elevated probability so
/// encode-side length lies are probed constantly.
std::string LengthLie(bsutil::ByteVec& d, bsutil::Rng& rng) {
  if (d.size() < 4) return "lenlie:noop";
  static constexpr std::uint32_t kLies[] = {
      0,          1,          0x7fffffffu, 0x80000000u,
      0xffffffffu, 4'000'000u, 4'000'001u,  16u * 1024 * 1024 + 1};
  std::size_t off = rng.Below(d.size() - 3);
  if (d.size() >= 20 && rng.Chance(0.5)) off = 16;  // wire-header length field
  const std::uint32_t lie = kLies[rng.Below(std::size(kLies))];
  PutU32(d, off, lie);
  return "lenlie@" + std::to_string(off) + "=" + Hex32(lie);
}

/// Splice a CompactSize edge case into a random offset: non-canonical
/// encodings, max values, and off-by-one boundaries.
std::string VarintEdge(bsutil::ByteVec& d, bsutil::Rng& rng) {
  static const std::vector<bsutil::ByteVec> kCases = {
      {0xfd, 0xfc, 0x00},                    // non-canonical (252 as 3 bytes)
      {0xfd, 0xfd, 0x00},                    // canonical minimum for 0xfd form
      {0xfd, 0xff, 0xff},                    // 65535
      {0xfe, 0xff, 0xff, 0xff, 0xff},        // 2^32-1
      {0xfe, 0x00, 0x00, 0x00, 0x00},        // non-canonical zero
      {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},  // 2^64-1
      {0xff, 0x00, 0x00, 0x00, 0x80, 0x00, 0x00, 0x00, 0x00},  // 2^31
  };
  const bsutil::ByteVec& edge = kCases[rng.Below(kCases.size())];
  const std::size_t off = d.empty() ? 0 : rng.Below(d.size());
  d.insert(d.begin() + static_cast<std::ptrdiff_t>(off), edge.begin(), edge.end());
  return "varint@" + std::to_string(off) + "(" + std::to_string(edge.size()) +
         "B)";
}

/// Swap two random chunks (frame reordering / interleaving).
std::string Splice(bsutil::ByteVec& d, bsutil::Rng& rng) {
  if (d.size() < 8) return "splice:noop";
  const std::size_t len = 1 + rng.Below(std::min<std::size_t>(d.size() / 2, 64));
  const std::size_t a = rng.Below(d.size() - len + 1);
  const std::size_t b = rng.Below(d.size() - len + 1);
  std::swap_ranges(d.begin() + static_cast<std::ptrdiff_t>(a),
                   d.begin() + static_cast<std::ptrdiff_t>(a + len),
                   d.begin() + static_cast<std::ptrdiff_t>(b));
  return "splice(" + std::to_string(a) + "<->" + std::to_string(b) + "," +
         std::to_string(len) + ")";
}

/// Duplicate a random chunk in place (replayed frame / repeated field).
std::string Duplicate(bsutil::ByteVec& d, bsutil::Rng& rng) {
  if (d.empty()) return "dup:noop";
  const std::size_t len = 1 + rng.Below(std::min<std::size_t>(d.size(), 48));
  const std::size_t off = rng.Below(d.size() - len + 1);
  bsutil::ByteVec chunk(d.begin() + static_cast<std::ptrdiff_t>(off),
                        d.begin() + static_cast<std::ptrdiff_t>(off + len));
  d.insert(d.begin() + static_cast<std::ptrdiff_t>(off + len), chunk.begin(),
           chunk.end());
  return "dup@" + std::to_string(off) + "(" + std::to_string(len) + ")";
}

/// Remove a random interior chunk (lost frame / skipped field).
std::string Excise(bsutil::ByteVec& d, bsutil::Rng& rng) {
  if (d.size() < 2) return "excise:noop";
  const std::size_t len = 1 + rng.Below(std::min<std::size_t>(d.size() - 1, 48));
  const std::size_t off = rng.Below(d.size() - len + 1);
  d.erase(d.begin() + static_cast<std::ptrdiff_t>(off),
          d.begin() + static_cast<std::ptrdiff_t>(off + len));
  return "excise@" + std::to_string(off) + "(" + std::to_string(len) + ")";
}

/// Prepend or insert a frame carrying a foreign network magic: the decoder
/// must reject it by the header alone without trusting its length field.
std::string ForeignFrame(bsutil::ByteVec& d, bsutil::Rng& rng) {
  const std::uint32_t foreign_magic = kFuzzMagic ^ 0x00010000u;
  bsutil::Writer w;
  w.WriteU32(foreign_magic);
  const char cmd[12] = {'p', 'i', 'n', 'g'};
  w.WriteBytes(bsutil::ByteSpan(reinterpret_cast<const std::uint8_t*>(cmd), 12));
  w.WriteU32(static_cast<std::uint32_t>(rng.Next()));  // lying length
  w.WriteU32(static_cast<std::uint32_t>(rng.Next()));  // bogus checksum
  const bsutil::ByteVec& frame = w.Data();
  const std::size_t off = d.empty() ? 0 : rng.Below(d.size());
  d.insert(d.begin() + static_cast<std::ptrdiff_t>(off), frame.begin(),
           frame.end());
  return "foreign@" + std::to_string(off);
}

/// Insert a well-framed TIPPROBE whose tip vector lies: heights pinned to the
/// int32 extremes, runs that jump backwards mid-vector, duplicate entries
/// under one nonce, or (half the time) a vector-count varint rewritten after
/// encoding to promise far more entries than the payload carries. The codec
/// must bound the decode and the partition monitor's divergence math must
/// digest whatever survives it.
std::string TipVector(bsutil::ByteVec& d, bsutil::Rng& rng) {
  bsproto::TipProbeMsg m;
  m.nonce = rng.Next();
  static constexpr std::int32_t kEdges[] = {0, 1, -1, 0x7fffffff, -0x7fffffff,
                                            1'000'000};
  const std::size_t n = 1 + rng.Below(6);
  std::int32_t height = kEdges[rng.Below(std::size(kEdges))];
  m.tips.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.tips[i].height = height;
    std::array<std::uint8_t, 32> hash_bytes;
    for (auto& b : hash_bytes) b = static_cast<std::uint8_t>(rng.Next());
    m.tips[i].hash = bscrypto::Hash256(hash_bytes);
    // Walk the vector divergently: sometimes re-pin to an extreme, sometimes
    // step backwards past genesis. Step in 64-bit and wrap through uint32 —
    // the extremes above sit one step from int32 overflow.
    if (rng.Chance(0.3)) {
      height = kEdges[rng.Below(std::size(kEdges))];
    } else {
      const std::int64_t step = static_cast<std::int64_t>(rng.Below(64)) - 32;
      height = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(static_cast<std::int64_t>(height) + step));
    }
  }
  bsutil::ByteVec frame = bsproto::EncodeMessage(kFuzzMagic, m);
  std::string note = "tipvec(" + std::to_string(n) + ")";
  if (frame.size() > 24 + 9 && rng.Chance(0.5)) {
    // The vector count sits right after the 8-byte nonce in the payload
    // (offset 24 = wire header). Promise up to 2^64-1 tips, then re-seal the
    // checksum so the lie reaches the decoder's count bound instead of dying
    // at the checksum gate.
    frame[32] = 0xff;
    for (std::size_t i = 33; i < std::min<std::size_t>(frame.size(), 41); ++i) {
      frame[i] = static_cast<std::uint8_t>(rng.Next());
    }
    const auto ck = bsproto::PayloadChecksum(
        bsutil::ByteSpan(frame.data() + 24, frame.size() - 24));
    std::copy(ck.begin(), ck.end(), frame.begin() + 20);
    note += "+countlie";
  }
  const std::size_t off = d.empty() ? 0 : rng.Below(d.size());
  d.insert(d.begin() + static_cast<std::ptrdiff_t>(off), frame.begin(),
           frame.end());
  return note + "@" + std::to_string(off);
}

/// Cut the stream at a wire-frame boundary and rotate the halves — the
/// reordering a streaming transport produces when frames race across a
/// reconnect. Boundaries come from PeekFrame walking the (possibly already
/// mutated) input, so the cut lands exactly between frames; when no clean
/// boundary survives earlier mutations, the cut falls mid-header instead,
/// probing the incremental decoder's resynchronization path.
std::string FrameBoundarySplice(bsutil::ByteVec& d, bsutil::Rng& rng) {
  if (d.size() < bsproto::kHeaderSize) return "framesplice:noop";
  std::vector<std::size_t> cuts;
  std::size_t off = 0;
  while (off + bsproto::kHeaderSize <= d.size()) {
    bsproto::FramePeek peek;
    const bsutil::ByteSpan rest(d.data() + off, d.size() - off);
    if (!bsproto::PeekFrame(kFuzzMagic, rest, peek)) break;
    if (peek.frame_size == 0 || peek.frame_size > rest.size()) break;
    off += peek.frame_size;
    if (off < d.size()) cuts.push_back(off);
  }
  std::string kind = "boundary";
  std::size_t cut;
  if (!cuts.empty()) {
    cut = cuts[rng.Below(cuts.size())];
  } else {
    cut = 1 + rng.Below(std::min(d.size() - 1, bsproto::kHeaderSize - 1));
    kind = "midheader";
  }
  std::rotate(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(cut), d.end());
  return "framesplice:" + kind + "@" + std::to_string(cut);
}

using MutatorFn = std::string (*)(bsutil::ByteVec&, bsutil::Rng&);
constexpr MutatorFn kMutators[] = {BitFlip,   ByteSet,  Truncate, Extend,
                                   LengthLie, VarintEdge, Splice, Duplicate,
                                   Excise,    ForeignFrame, TipVector,
                                   FrameBoundarySplice};

}  // namespace

std::string MutateOnce(bsutil::ByteVec& input, bsutil::Rng& rng) {
  return kMutators[rng.Below(std::size(kMutators))](input, rng);
}

std::string MutateTipVector(bsutil::ByteVec& input, bsutil::Rng& rng) {
  return TipVector(input, rng);
}

void Mutate(bsutil::ByteVec& input, bsutil::Rng& rng, std::size_t count,
            std::vector<std::string>& trace) {
  for (std::size_t i = 0; i < count; ++i) {
    trace.push_back(MutateOnce(input, rng));
  }
}

}  // namespace bsfuzz
