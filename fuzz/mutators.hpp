// Structure-aware mutators. Each mutation appends a human-readable step to
// the trace (e.g. "lenlie@16=0x80000000") so a failing input's full
// provenance — seed, base generator, mutation stack — lands verbatim in the
// minimized repro artifact.
#pragma once

#include <string>
#include <vector>

#include "fuzz/fuzz.hpp"
#include "util/rng.hpp"

namespace bsfuzz {

/// Apply one randomly chosen mutation in place; returns the trace step.
std::string MutateOnce(bsutil::ByteVec& input, bsutil::Rng& rng);

/// Apply `count` mutations, appending each step to `trace`.
void Mutate(bsutil::ByteVec& input, bsutil::Rng& rng, std::size_t count,
            std::vector<std::string>& trace);

}  // namespace bsfuzz
