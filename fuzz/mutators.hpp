// Structure-aware mutators. Each mutation appends a human-readable step to
// the trace (e.g. "lenlie@16=0x80000000") so a failing input's full
// provenance — seed, base generator, mutation stack — lands verbatim in the
// minimized repro artifact.
#pragma once

#include <string>
#include <vector>

#include "fuzz/fuzz.hpp"
#include "util/rng.hpp"

namespace bsfuzz {

/// Apply one randomly chosen mutation in place; returns the trace step.
std::string MutateOnce(bsutil::ByteVec& input, bsutil::Rng& rng);

/// Apply `count` mutations, appending each step to `trace`.
void Mutate(bsutil::ByteVec& input, bsutil::Rng& rng, std::size_t count,
            std::vector<std::string>& trace);

/// The divergent tip-vector mutation by name: inserts a well-framed TIPPROBE
/// whose tip vector lies (int32-extreme heights, backwards runs, re-sealed
/// vector-count lies). Exposed so the committed codec corpus always carries
/// one such entry regardless of which mutators the reseed RNG draws.
std::string MutateTipVector(bsutil::ByteVec& input, bsutil::Rng& rng);

}  // namespace bsfuzz
