// Tests for the attack library: BM-DoS flooding (all payload vectors),
// serial Sybil reconnection (Fig. 8 mechanics), pre/post-connection
// Defamation (§IV), and the ICMP flooder.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "attack/bmdos.hpp"
#include "attack/defamation.hpp"
#include "attack/eclipse.hpp"
#include "attack/icmpflood.hpp"
#include "attack/sybil.hpp"
#include "attack/traffic.hpp"
#include "core/node.hpp"

namespace {

using namespace bsattack;  // NOLINT
using bsnet::Node;
using bsnet::NodeConfig;

constexpr std::uint32_t kTargetIp = 0x0a000001;
constexpr std::uint32_t kAttackerIp = 0x0a000002;
constexpr std::uint32_t kInnocentIp = 0x0a000003;

struct AttackFixture : ::testing::Test {
  AttackFixture()
      : net(sched),
        cpu(),
        node(sched, net, kTargetIp, NodeConfig{}, &cpu),
        attacker(sched, net, kAttackerIp, NodeConfig{}.chain.magic),
        crafter(NodeConfig{}.chain) {
    node.Start();
  }

  bsim::Scheduler sched;
  bsim::Network net;
  bsim::CpuModel cpu;
  Node node;
  AttackerNode attacker;
  Crafter crafter;
};

// ---------------------------------------------------------------------------
// BM-DoS

TEST_F(AttackFixture, PingFloodIsNeverBanned) {
  BmDosConfig config;
  config.payload = BmDosConfig::Payload::kPing;
  BmDosAttack attack(attacker, {kTargetIp, 8333}, crafter, config);
  attack.Start();
  sched.RunUntil(5 * bsim::kSecond);
  attack.Stop();
  EXPECT_GT(attack.MessagesSent(), 3000u);
  EXPECT_EQ(node.PeersBanned(), 0u);
  EXPECT_EQ(attack.ReadySessions(), 1);
  EXPECT_GE(node.MessageCounts().at(bsproto::MsgType::kPing), 3000u);
}

TEST_F(AttackFixture, PingFloodRateRespectsPipelineCap) {
  BmDosConfig config;
  config.payload = BmDosConfig::Payload::kPing;
  config.rate_msgs_per_sec = 50'000;  // demanded above the cap
  BmDosAttack attack(attacker, {kTargetIp, 8333}, crafter, config);
  EXPECT_DOUBLE_EQ(attack.EffectiveRate(), bsnet::kBmDosPipelineCapMsgsPerSec);
  attack.Start();
  sched.RunUntil(3 * bsim::kSecond);
  attack.Stop();
  EXPECT_LE(attack.MessagesSent(), 3100u);  // ~1e3/s despite the demand
}

TEST_F(AttackFixture, BogusBlockFloodConsumesVictimCpuWithoutBans) {
  cpu.SetActiveConnections(1);
  BmDosConfig config;
  config.payload = BmDosConfig::Payload::kBogusBlock;
  BmDosAttack attack(attacker, {kTargetIp, 8333}, crafter, config);
  attack.Start();
  cpu.BeginWindow(sched.Now());
  sched.RunUntil(5 * bsim::kSecond);
  const auto sample = cpu.EndWindow(sched.Now());
  attack.Stop();

  EXPECT_EQ(node.PeersBanned(), 0u);
  EXPECT_GT(node.FramesDroppedBadChecksum(), 3000u);
  // 1e3/s of 60 kB bogus blocks should depress mining well below baseline.
  EXPECT_LT(sample.mining_rate_hps, 5.0e5);
}

TEST_F(AttackFixture, PingFloodHurtsLessThanBogusBlockFlood) {
  auto run_flood = [](BmDosConfig::Payload payload) {
    bsim::Scheduler sched;
    bsim::Network net(sched);
    bsim::CpuModel cpu;
    Node node(sched, net, kTargetIp, NodeConfig{}, &cpu);
    node.Start();
    AttackerNode attacker(sched, net, kAttackerIp, NodeConfig{}.chain.magic);
    Crafter crafter(NodeConfig{}.chain);
    BmDosConfig config;
    config.payload = payload;
    BmDosAttack attack(attacker, {kTargetIp, 8333}, crafter, config);
    attack.Start();
    sched.RunUntil(2 * bsim::kSecond);  // warm up
    cpu.BeginWindow(sched.Now());
    sched.RunUntil(7 * bsim::kSecond);
    return cpu.EndWindow(sched.Now()).mining_rate_hps;
  };
  const double under_ping = run_flood(BmDosConfig::Payload::kPing);
  const double under_block = run_flood(BmDosConfig::Payload::kBogusBlock);
  EXPECT_GT(under_ping, under_block);  // Fig. 6's ordering
}

TEST_F(AttackFixture, InvalidPowBlockFloodGetsBanned) {
  BmDosConfig config;
  config.payload = BmDosConfig::Payload::kInvalidPowBlock;
  BmDosAttack attack(attacker, {kTargetIp, 8333}, crafter, config);
  attack.Start();
  sched.RunUntil(3 * bsim::kSecond);
  attack.Stop();
  EXPECT_GE(node.PeersBanned(), 1u);  // parseable invalid blocks are punished
}

// ---------------------------------------------------------------------------
// Serial Sybil (Fig. 8 mechanics)

TEST_F(AttackFixture, SerialSybilBansSuccessionOfIdentifiers) {
  SerialSybilConfig config;
  config.max_identifiers = 5;
  SerialSybilAttack attack(attacker, {kTargetIp, 8333}, config);
  attack.Start();
  sched.RunUntil(10 * bsim::kSecond);
  EXPECT_TRUE(attack.Finished());
  EXPECT_EQ(attack.IdentifiersBanned(), 5);
  // Every identifier is distinct and every one is banned.
  std::set<std::uint16_t> ports;
  for (const auto& rec : attack.Records()) {
    ports.insert(rec.identifier.port);
    EXPECT_TRUE(node.Bans().IsBanned(rec.identifier, sched.Now()));
  }
  EXPECT_EQ(ports.size(), 5u);
  EXPECT_EQ(node.Bans().BannedPortsOf(kAttackerIp, sched.Now()), 5u);
}

TEST_F(AttackFixture, NoDelayTimeToBanNearPaperHundredMs) {
  SerialSybilConfig config;
  config.max_identifiers = 5;
  config.extra_message_delay = 0;
  SerialSybilAttack attack(attacker, {kTargetIp, 8333}, config);
  attack.Start();
  sched.RunUntil(10 * bsim::kSecond);
  ASSERT_TRUE(attack.Finished());
  // 100 duplicate VERSIONs at the 1 ms pipeline interval ≈ 0.1 s (Fig. 8).
  EXPECT_NEAR(attack.MeanTimeToBan(), 0.1, 0.02);
}

TEST_F(AttackFixture, OneMsDelayDoublesTimeToBan) {
  SerialSybilConfig config;
  config.max_identifiers = 3;
  config.extra_message_delay = bsim::kMillisecond;
  SerialSybilAttack attack(attacker, {kTargetIp, 8333}, config);
  attack.Start();
  sched.RunUntil(10 * bsim::kSecond);
  ASSERT_TRUE(attack.Finished());
  EXPECT_NEAR(attack.MeanTimeToBan(), 0.2, 0.03);  // Fig. 8's 1 ms series
}

TEST_F(AttackFixture, SybilLoopIsUselessAgainstV22) {
  // The VERSION rules are gone in 0.22.0: duplicates score nothing, nobody
  // gets banned, and the attack spins on one identifier forever.
  bsim::Scheduler sched2;
  bsim::Network net2(sched2);
  NodeConfig config;
  config.core_version = bsnet::CoreVersion::kV0_22;
  Node v22(sched2, net2, kTargetIp, config);
  v22.Start();
  AttackerNode attacker2(sched2, net2, kAttackerIp, config.chain.magic);
  SerialSybilConfig sc;
  sc.max_identifiers = 3;
  SerialSybilAttack attack(attacker2, {kTargetIp, 8333}, sc);
  attack.Start();
  sched2.RunUntil(5 * bsim::kSecond);
  EXPECT_EQ(attack.IdentifiersBanned(), 0);
  EXPECT_EQ(v22.PeersBanned(), 0u);
}

// ---------------------------------------------------------------------------
// Defamation

TEST_F(AttackFixture, PreConnectionDefamationBansInnocentIdentifier) {
  // The innocent host exists on the LAN but has no connection to the target.
  bsim::Host innocent(sched, net, kInnocentIp);
  const Endpoint innocent_id{kInnocentIp, 55555};

  PreConnectionDefamation defamation(
      attacker, {kTargetIp, 8333}, innocent_id,
      PreConnectionDefamation::InstantBanFrames(node.Config().chain.magic));
  bool done = false;
  defamation.Run([&]() { done = true; });
  sched.RunUntil(5 * bsim::kSecond);

  EXPECT_TRUE(done);
  EXPECT_TRUE(defamation.HandshakeSucceeded());
  EXPECT_TRUE(node.Bans().IsBanned(innocent_id, sched.Now()));

  // The innocent host now cannot use its own identifier toward the target:
  // TCP may complete (as with real Bitcoin Core, the ban check runs at
  // session-accept time), but the node resets the connection immediately.
  bool reset_by_target = false;
  bsim::TcpConnection* conn =
      innocent.ConnectFrom(55555, {kTargetIp, 8333}, nullptr);
  ASSERT_NE(conn, nullptr);
  conn->on_closed = [&]() { reset_by_target = true; };
  sched.RunUntil(sched.Now() + 10 * bsim::kSecond);
  EXPECT_TRUE(reset_by_target);
}

TEST_F(AttackFixture, PreConnectionDefamationDefeatedByEgressFiltering) {
  bsim::Scheduler sched2;
  bsim::NetworkConfig net_config;
  net_config.block_spoofed_egress = true;  // the ISP/AS countermeasure
  bsim::Network net2(sched2, net_config);
  Node target(sched2, net2, kTargetIp, NodeConfig{});
  target.Start();
  AttackerNode attacker2(sched2, net2, kAttackerIp, NodeConfig{}.chain.magic);

  const Endpoint innocent_id{kInnocentIp, 55555};
  PreConnectionDefamation defamation(
      attacker2, {kTargetIp, 8333}, innocent_id,
      PreConnectionDefamation::InstantBanFrames(NodeConfig{}.chain.magic));
  defamation.Run();
  sched2.RunUntil(5 * bsim::kSecond);
  EXPECT_FALSE(defamation.HandshakeSucceeded());
  EXPECT_FALSE(target.Bans().IsBanned(innocent_id, sched2.Now()));
}

TEST_F(AttackFixture, PostConnectionDefamationBansConnectedInboundPeer) {
  // The innocent peer is a real node with a live inbound session to the
  // target.
  NodeConfig innocent_config;
  innocent_config.target_outbound = 1;
  Node innocent(sched, net, kInnocentIp, innocent_config);
  innocent.AddKnownAddress({kTargetIp, 8333});
  innocent.Start();
  sched.RunUntil(5 * bsim::kSecond);
  ASSERT_EQ(innocent.OutboundCount(), 1u);

  // Algorithm 1: the attacker learns the 4-tuple by sniffing; here we look
  // up the innocent's ephemeral port the same way its sniffer would.
  const bsnet::Peer* session_at_target = nullptr;
  for (const bsnet::Peer* p : node.Peers()) {
    if (p->remote.ip == kInnocentIp) session_at_target = p;
  }
  ASSERT_NE(session_at_target, nullptr);
  const Endpoint innocent_id = session_at_target->remote;

  PostConnectionDefamation defamation(attacker, {kTargetIp, 8333}, innocent_id);
  Crafter crafter2(node.Config().chain);
  defamation.Arm({bsproto::EncodeMessage(node.Config().chain.magic,
                                         crafter2.SegwitInvalidTx())});

  // Trigger traffic on the connection so the sniffer learns the live state.
  innocent.SendToRemoteIp(kTargetIp, bsproto::PingMsg{7});
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);

  EXPECT_TRUE(defamation.SequenceKnown());
  EXPECT_TRUE(defamation.Injected());
  EXPECT_TRUE(node.Bans().IsBanned(innocent_id, sched.Now()));
  EXPECT_GE(node.PeersBanned(), 1u);
}

TEST_F(AttackFixture, PostConnectionDefamationOfOutboundPeerTriggersReconnect) {
  // Target holds outbound connections to two innocent peer nodes; defaming
  // one forces the target to reconnect — the detection feature c.
  bsim::Scheduler sched2;
  bsim::Network net2(sched2);
  NodeConfig target_config;
  target_config.target_outbound = 1;
  Node target(sched2, net2, kTargetIp, target_config, nullptr);

  NodeConfig peer_config;
  peer_config.target_outbound = 0;
  Node peer_a(sched2, net2, 0x0a000010, peer_config);
  Node peer_b(sched2, net2, 0x0a000011, peer_config);
  peer_a.Start();
  peer_b.Start();
  target.AddKnownAddress({peer_a.Ip(), 8333});
  target.AddKnownAddress({peer_b.Ip(), 8333});
  target.Start();
  sched2.RunUntil(5 * bsim::kSecond);
  ASSERT_EQ(target.OutboundCount(), 1u);

  const bsnet::Peer* outbound = nullptr;
  for (const bsnet::Peer* p : target.Peers()) {
    if (!p->inbound) outbound = p;
  }
  ASSERT_NE(outbound, nullptr);
  const Endpoint victim_id = outbound->remote;  // [peer_ip:8333]

  AttackerNode attacker2(sched2, net2, kAttackerIp, target_config.chain.magic);
  // For an outbound connection the target side uses an ephemeral port, which
  // the attacker learns from sniffed segments — read it off the connection
  // the same way.
  const Endpoint target_ep = outbound->conn->Local();
  PostConnectionDefamation defamation(attacker2, target_ep, victim_id);
  Crafter crafter2(target_config.chain);
  defamation.Arm({bsproto::EncodeMessage(target_config.chain.magic,
                                         crafter2.SegwitInvalidTx())});

  // The victim peer sends something so the attacker learns the TCP state.
  peer_a.SendToRemoteIp(kTargetIp, bsproto::PingMsg{1});
  peer_b.SendToRemoteIp(kTargetIp, bsproto::PingMsg{1});
  sched2.RunUntil(sched2.Now() + 10 * bsim::kSecond);

  EXPECT_TRUE(target.Bans().IsBanned(victim_id, sched2.Now()));
  // The target replaced the banned outbound peer with the other one.
  EXPECT_EQ(target.OutboundCount(), 1u);
  EXPECT_GE(target.OutboundReconnects(), 1u);
}

// ---------------------------------------------------------------------------
// ICMP flooder

TEST_F(AttackFixture, IcmpFloodDeliversAtConfiguredRate) {
  IcmpFloodConfig config;
  config.rate_pkts_per_sec = 10'000;
  IcmpFlooder flooder(attacker, kTargetIp, config);
  flooder.Start();
  sched.RunUntil(sched.Now() + 2 * bsim::kSecond);
  flooder.Stop();
  EXPECT_NEAR(static_cast<double>(flooder.PacketsSent()), 20'000.0, 200.0);
  EXPECT_NEAR(static_cast<double>(node.IcmpPacketsReceived()), 20'000.0, 300.0);
}

TEST_F(AttackFixture, IcmpFloodDepressesMiningLessThanBmDosAtSameRate) {
  // §VI-C: at 1e3/s, application-layer PING hurts more than kernel ICMP.
  auto mining_under = [&](bool bmdos) {
    bsim::Scheduler s;
    bsim::Network n(s);
    bsim::CpuModel c;
    Node victim(s, n, kTargetIp, NodeConfig{}, &c);
    victim.Start();
    AttackerNode a(s, n, kAttackerIp, NodeConfig{}.chain.magic);
    Crafter cr(NodeConfig{}.chain);
    BmDosAttack bm(a, {kTargetIp, 8333}, cr, BmDosConfig{});
    IcmpFloodConfig ic;
    ic.rate_pkts_per_sec = 1000;
    IcmpFlooder fl(a, kTargetIp, ic);
    if (bmdos) {
      bm.Start();
    } else {
      fl.Start();
    }
    s.RunUntil(2 * bsim::kSecond);
    c.BeginWindow(s.Now());
    s.RunUntil(7 * bsim::kSecond);
    return c.EndWindow(s.Now()).mining_rate_hps;
  };
  EXPECT_LT(mining_under(true), mining_under(false));
}

// ---------------------------------------------------------------------------
// Traffic generator

TEST(TrafficGenerator, ProducesCalibratedMessageRate) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig target_config;
  target_config.target_outbound = 8;
  Node target(sched, net, kTargetIp, target_config);

  std::vector<std::unique_ptr<Node>> peer_storage;
  std::vector<Node*> peers;
  for (int i = 0; i < 12; ++i) {
    NodeConfig pc;
    pc.target_outbound = 0;
    auto peer = std::make_unique<Node>(sched, net, 0x0a000100 + i, pc);
    peer->Start();
    target.AddKnownAddress({peer->Ip(), 8333});
    peers.push_back(peer.get());
    peer_storage.push_back(std::move(peer));
  }
  target.Start();
  sched.RunUntil(10 * bsim::kSecond);
  ASSERT_EQ(target.OutboundCount(), 8u);

  MainnetTrafficGenerator traffic(sched, peers, target, TrafficConfig{});
  traffic.Start();
  const std::uint64_t before = target.TotalMessagesReceived();
  sched.RunUntil(sched.Now() + 10 * bsim::kMinute);
  traffic.Stop();
  const double per_minute =
      static_cast<double>(target.TotalMessagesReceived() - before) / 10.0;
  // The paper's normal envelope: τ_n = [252, 390] messages/minute.
  EXPECT_GT(per_minute, 252.0);
  EXPECT_LT(per_minute, 390.0);
  EXPECT_EQ(target.PeersBanned(), 0u);  // honest traffic never triggers bans
}

}  // namespace

// NOTE: appended tests for the Eclipse composition (§II motivation).
namespace {

struct EclipseFixture : ::testing::Test {
  void SetUp() override {
    net = std::make_unique<bsim::Network>(sched);
    NodeConfig victim_config;
    victim_config.target_outbound = 4;
    victim_config.max_inbound = 8;
    victim = std::make_unique<Node>(sched, *net, kTargetIp, victim_config);

    NodeConfig pc;
    pc.target_outbound = 0;
    for (int i = 0; i < 6; ++i) {  // honest Mainnet stand-ins
      auto peer = std::make_unique<Node>(sched, *net, 0x0a000100 + i, pc);
      peer->Start();
      victim->AddKnownAddress({peer->Ip(), 8333});
      honest.push_back(peer.get());
      storage.push_back(std::move(peer));
    }
    for (int i = 0; i < 12; ++i) {  // attacker-controlled infrastructure
      auto node = std::make_unique<Node>(sched, *net, 0x0ae00000 + i, pc);
      node->Start();
      infrastructure.push_back(node.get());
      storage.push_back(std::move(node));
    }
    victim->Start();
    sched.RunUntil(10 * bsim::kSecond);
    ASSERT_EQ(victim->OutboundCount(), 4u);

    attacker = std::make_unique<bsattack::AttackerNode>(sched, *net, 0x0ae000ff,
                                                        victim_config.chain.magic);
    traffic = std::make_unique<MainnetTrafficGenerator>(sched, honest, *victim,
                                                        bsattack::TrafficConfig{});
    traffic->Start();
  }

  bsim::Scheduler sched;
  std::unique_ptr<bsim::Network> net;
  std::unique_ptr<Node> victim;
  std::vector<std::unique_ptr<Node>> storage;
  std::vector<Node*> honest;
  std::vector<Node*> infrastructure;
  std::unique_ptr<bsattack::AttackerNode> attacker;
  std::unique_ptr<MainnetTrafficGenerator> traffic;
};

TEST_F(EclipseFixture, CompositionEclipsesTheVictim) {
  bsattack::EclipseConfig config;
  config.inbound_sessions = 8;  // == the victim's max_inbound
  bsattack::EclipseAttack eclipse(*attacker, *victim, infrastructure, config);
  eclipse.Start();

  sched.RunUntil(sched.Now() + 5 * bsim::kMinute);

  // Inbound side: the Sybil sessions hold every slot.
  EXPECT_EQ(eclipse.InboundSessionsHeld(), 8);
  EXPECT_EQ(victim->InboundCount(), 8u);
  // The poisoning stayed under every ban-score rule.
  EXPECT_GT(eclipse.AddrEntriesGossiped(), 1000u);
  EXPECT_FALSE(victim->Bans().IsBanned({attacker->Ip(), 0}, sched.Now()));
  // Outbound side: Defamation evicted honest peers; the poisoned table
  // refills toward attacker infrastructure.
  EXPECT_GE(eclipse.OutboundPeersDefamed(), 2);
  EXPECT_GE(eclipse.ControlFraction(), 0.75);
  // Ban score punished nobody on the attacker side along the way.
  int attacker_scores = 0;
  for (const bsnet::Peer* p : victim->Peers()) {
    if (p->remote.ip == attacker->Ip()) {
      attacker_scores += victim->Tracker().Score(p->id);
    }
  }
  EXPECT_EQ(attacker_scores, 0);
}

TEST_F(EclipseFixture, WithoutDefamationTheOutboundSideResists) {
  bsattack::EclipseConfig config;
  config.inbound_sessions = 8;
  config.defame_outbound = false;  // poisoning + occupation only
  bsattack::EclipseAttack eclipse(*attacker, *victim, infrastructure, config);
  eclipse.Start();
  sched.RunUntil(sched.Now() + 3 * bsim::kMinute);

  // Established outbound connections persist, so the honest view largely
  // survives even though the address table is poisoned (natural churn can
  // cost the odd slot): the Defamation lever is what completes the eclipse.
  std::size_t honest_outbound = 0;
  for (const bsnet::Peer* p : victim->Peers()) {
    if (!p->inbound && p->HandshakeComplete() && p->remote.ip < 0x0ae00000) {
      ++honest_outbound;
    }
  }
  EXPECT_GE(honest_outbound, 3u);
  EXPECT_FALSE(eclipse.FullyEclipsed());
}

}  // namespace

// NOTE: appended Defamation payload-variant tests: any 100-point rule makes a
// one-shot injection; 20-point rules need five.
namespace {

TEST_F(AttackFixture, PostConnectionDefamationWithMutatedBlockPayload) {
  NodeConfig innocent_config;
  innocent_config.target_outbound = 1;
  Node innocent(sched, net, kInnocentIp, innocent_config);
  innocent.AddKnownAddress({kTargetIp, 8333});
  innocent.Start();
  sched.RunUntil(5 * bsim::kSecond);
  ASSERT_EQ(innocent.OutboundCount(), 1u);

  const bsnet::Peer* session_at_target = nullptr;
  for (const bsnet::Peer* p : node.Peers()) {
    if (p->remote.ip == kInnocentIp) session_at_target = p;
  }
  ASSERT_NE(session_at_target, nullptr);
  // Copy the identifier now: the ban destroys the Peer object.
  const Endpoint victim_id = session_at_target->remote;

  PostConnectionDefamation defamation(attacker, {kTargetIp, 8333}, victim_id);
  defamation.Arm({bsproto::EncodeMessage(
      node.Config().chain.magic, crafter.MutatedBlock(node.Chain().TipHash()))});
  innocent.SendToRemoteIp(kTargetIp, bsproto::PingMsg{3});
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
  EXPECT_TRUE(node.Bans().IsBanned(victim_id, sched.Now()));
}

TEST_F(AttackFixture, PostConnectionDefamationWithOversizeRuleNeedsFiveInjections) {
  NodeConfig innocent_config;
  innocent_config.target_outbound = 1;
  Node innocent(sched, net, kInnocentIp, innocent_config);
  innocent.AddKnownAddress({kTargetIp, 8333});
  innocent.Start();
  sched.RunUntil(5 * bsim::kSecond);
  const bsnet::Peer* session_at_target = nullptr;
  for (const bsnet::Peer* p : node.Peers()) {
    if (p->remote.ip == kInnocentIp) session_at_target = p;
  }
  ASSERT_NE(session_at_target, nullptr);
  const Endpoint victim_id = session_at_target->remote;

  // Five oversize-ADDR frames (+20 each) in one injected burst.
  std::vector<bsutil::ByteVec> frames;
  for (int i = 0; i < 5; ++i) {
    frames.push_back(
        bsproto::EncodeMessage(node.Config().chain.magic, crafter.OversizeAddr()));
  }
  PostConnectionDefamation defamation(attacker, {kTargetIp, 8333}, victim_id);
  defamation.Arm(std::move(frames));
  innocent.SendToRemoteIp(kTargetIp, bsproto::PingMsg{4});
  sched.RunUntil(sched.Now() + 10 * bsim::kSecond);
  EXPECT_TRUE(node.Bans().IsBanned(victim_id, sched.Now()));
}

}  // namespace
