// Live-node tests of the §VIII countermeasures: forgoing ban score
// (threshold→∞ and disabled-checking), the good-score mechanism, and the
// checksum-ordering ablation.
#include <gtest/gtest.h>

#include <memory>

#include "attack/attacker.hpp"
#include "attack/crafter.hpp"
#include "attack/defamation.hpp"
#include "core/node.hpp"

namespace {

using namespace bsnet;  // NOLINT
using bsattack::AttackerNode;
using bsattack::AttackSession;
using bsattack::Crafter;

constexpr std::uint32_t kTargetIp = 0x0a000001;
constexpr std::uint32_t kAttackerIp = 0x0a000002;
constexpr std::uint32_t kInnocentIp = 0x0a000003;

struct PolicyFixture {
  explicit PolicyFixture(BanPolicy policy, int good_exemption = 1)
      : net(sched), crafter(bschain::ChainParams{}) {
    NodeConfig config;
    config.ban_policy = policy;
    config.good_score_exemption = good_exemption;
    node = std::make_unique<Node>(sched, net, kTargetIp, config);
    node->Start();
    attacker = std::make_unique<AttackerNode>(sched, net, kAttackerIp,
                                              config.chain.magic);
  }

  AttackSession* ReadySession() {
    AttackSession* session = attacker->OpenSession({kTargetIp, 8333});
    sched.RunUntil(sched.Now() + bsim::kSecond);
    return session;
  }

  void Settle() { sched.RunUntil(sched.Now() + bsim::kSecond); }

  bsim::Scheduler sched;
  bsim::Network net;
  Crafter crafter;
  std::unique_ptr<Node> node;
  std::unique_ptr<AttackerNode> attacker;
};

TEST(Countermeasures, ThresholdInfinityNeverBansButKeepsScore) {
  PolicyFixture fx(BanPolicy::kThresholdInfinity);
  AttackSession* session = fx.ReadySession();
  for (int i = 0; i < 5; ++i) {
    fx.attacker->Send(*session, fx.crafter.SegwitInvalidTx());
  }
  fx.Settle();
  EXPECT_FALSE(session->closed);
  EXPECT_EQ(fx.node->PeersBanned(), 0u);
  // The misbehavior tracking still works (peer-health ranking use case)...
  Peer* peer = fx.node->FindPeerByRemote(session->local);
  ASSERT_NE(peer, nullptr);
  EXPECT_EQ(fx.node->Tracker().Score(peer->id), 500);
}

TEST(Countermeasures, DisabledPolicyTracksNothing) {
  PolicyFixture fx(BanPolicy::kDisabled);
  AttackSession* session = fx.ReadySession();
  for (int i = 0; i < 5; ++i) {
    fx.attacker->Send(*session, fx.crafter.SegwitInvalidTx());
  }
  fx.Settle();
  EXPECT_FALSE(session->closed);
  Peer* peer = fx.node->FindPeerByRemote(session->local);
  ASSERT_NE(peer, nullptr);
  EXPECT_EQ(fx.node->Tracker().Score(peer->id), 0);
}

TEST(Countermeasures, DisablingBanScoreDoesNotAffectNormalOperation) {
  // §VIII: "Disabling the ban score does not affect any of the other Bitcoin
  // operations" — blocks still validate and relay.
  PolicyFixture fx(BanPolicy::kDisabled);
  AttackSession* session = fx.ReadySession();
  const auto valid = fx.crafter.ValidBlock(fx.node->Chain().TipHash());
  fx.attacker->Send(*session, valid);
  fx.Settle();
  EXPECT_TRUE(fx.node->Chain().HaveBlock(valid.block.Hash()));
}

TEST(Countermeasures, GoodScoreProtectsBlockProvidingPeerFromDefamation) {
  PolicyFixture fx(BanPolicy::kGoodScore);
  AttackSession* innocent_like = fx.ReadySession();
  // The "innocent" session first delivers a valid block (earning credit)...
  fx.attacker->Send(*innocent_like, fx.crafter.ValidBlock(fx.node->Chain().TipHash()));
  fx.Settle();
  // ...then "its" identifier emits a 100-point misbehavior (as a Defamation
  // attacker would inject). The credit exempts it from the ban.
  fx.attacker->Send(*innocent_like, fx.crafter.SegwitInvalidTx());
  fx.Settle();
  EXPECT_FALSE(innocent_like->closed);
  EXPECT_EQ(fx.node->PeersBanned(), 0u);
}

TEST(Countermeasures, GoodScoreStillBansCreditlessAttacker) {
  PolicyFixture fx(BanPolicy::kGoodScore);
  AttackSession* attacker_session = fx.ReadySession();
  fx.attacker->Send(*attacker_session, fx.crafter.SegwitInvalidTx());
  fx.Settle();
  EXPECT_TRUE(attacker_session->closed);
  EXPECT_EQ(fx.node->PeersBanned(), 1u);
}

TEST(Countermeasures, ChecksumOrderingAblationClosesBogusLoophole) {
  // Stock ordering: bogus frames are free. Flipped ordering (the ablation):
  // each bad-checksum frame costs the sender ban score.
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.checksum_before_misbehavior = false;
  Node node(sched, net, kTargetIp, config);
  node.Start();
  AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);
  Crafter crafter(config.chain);

  AttackSession* session = attacker.OpenSession({kTargetIp, 8333});
  sched.RunUntil(bsim::kSecond);
  const auto frame = crafter.BogusBlockFrame(config.chain.magic, 1000);
  for (int i = 0; i < 20; ++i) attacker.SendRawFrame(*session, frame);
  sched.RunUntil(sched.Now() + bsim::kSecond);
  // 10 points per bad frame → banned after the 10th.
  EXPECT_TRUE(session->closed);
  EXPECT_GE(node.PeersBanned(), 1u);
}

TEST(Countermeasures, BanDurationConfigurable) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.ban_duration = bsim::kMinute;
  Node node(sched, net, kTargetIp, config);
  node.Start();
  AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);
  Crafter crafter(config.chain);
  AttackSession* session = attacker.OpenSession({kTargetIp, 8333});
  sched.RunUntil(bsim::kSecond);
  attacker.Send(*session, crafter.SegwitInvalidTx());
  sched.RunUntil(sched.Now() + bsim::kSecond);
  const Endpoint banned = session->local;
  EXPECT_TRUE(node.Bans().IsBanned(banned, sched.Now()));
  sched.RunUntil(sched.Now() + 2 * bsim::kMinute);
  EXPECT_FALSE(node.Bans().IsBanned(banned, sched.Now()));

  // After expiry the identifier can connect again.
  AttackSession* retry =
      attacker.OpenSession({kTargetIp, 8333}, /*auto_handshake=*/true, banned.port);
  sched.RunUntil(sched.Now() + bsim::kSecond);
  EXPECT_TRUE(retry->SessionReady());
}

TEST(Countermeasures, LowerBanThresholdBansFaster) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.ban_threshold = 20;
  Node node(sched, net, kTargetIp, config);
  node.Start();
  AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);
  Crafter crafter(config.chain);
  AttackSession* session = attacker.OpenSession({kTargetIp, 8333});
  sched.RunUntil(bsim::kSecond);
  attacker.Send(*session, crafter.OversizeAddr());  // 20 points == threshold
  sched.RunUntil(sched.Now() + bsim::kSecond);
  EXPECT_TRUE(session->closed);
}

TEST(Countermeasures, GoodScoreDefamationEndToEnd) {
  // Full §VIII story on the wire: under kGoodScore, a post-connection
  // Defamation injection against an outbound peer that has relayed blocks
  // fails to get it banned.
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig target_config;
  target_config.ban_policy = BanPolicy::kGoodScore;
  target_config.target_outbound = 1;
  Node target(sched, net, kTargetIp, target_config);

  NodeConfig peer_config;
  peer_config.target_outbound = 0;
  Node innocent(sched, net, kInnocentIp, peer_config);
  innocent.Start();
  target.AddKnownAddress({kInnocentIp, 8333});
  target.Start();
  sched.RunUntil(5 * bsim::kSecond);
  ASSERT_EQ(target.OutboundCount(), 1u);

  // The innocent peer mines a block; the target fetches it (good score +1).
  innocent.MineAndRelay();
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
  const bsnet::Peer* outbound = nullptr;
  for (const bsnet::Peer* p : target.Peers()) {
    if (!p->inbound) outbound = p;
  }
  ASSERT_NE(outbound, nullptr);
  ASSERT_GE(target.Tracker().GoodScore(outbound->id), 1);

  // Defame it.
  AttackerNode attacker(sched, net, kAttackerIp, target_config.chain.magic);
  bsattack::PostConnectionDefamation defamation(attacker, outbound->conn->Local(),
                                                outbound->remote);
  Crafter crafter(target_config.chain);
  defamation.Arm({bsproto::EncodeMessage(target_config.chain.magic,
                                         crafter.SegwitInvalidTx())});
  innocent.SendToRemoteIp(kTargetIp, bsproto::PingMsg{5});
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);

  EXPECT_TRUE(defamation.Injected());
  EXPECT_FALSE(target.Bans().IsBanned(Endpoint{kInnocentIp, 8333}, sched.Now()));
  EXPECT_EQ(target.PeersBanned(), 0u);
  EXPECT_EQ(target.OutboundCount(), 1u);  // the peer connection survived
}

}  // namespace

// NOTE: appended tests for the Core 0.21+ discouragement mode (per-IP,
// non-expiring) vs the 0.20.0 banning regime the paper studies.
namespace {

TEST(Discouragement, MisbehaviorDiscouragesWholeIpInsteadOfBanning) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.use_discouragement = true;
  Node node(sched, net, kTargetIp, config);
  node.Start();
  AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);
  Crafter crafter(config.chain);

  AttackSession* session = attacker.OpenSession({kTargetIp, 8333});
  sched.RunUntil(bsim::kSecond);
  attacker.Send(*session, crafter.SegwitInvalidTx());
  sched.RunUntil(sched.Now() + bsim::kSecond);

  EXPECT_TRUE(session->closed);
  // No timed [IP:Port] ban — the whole IP is discouraged instead.
  EXPECT_EQ(node.Bans().Size(), 0u);
  EXPECT_TRUE(node.Bans().IsDiscouraged(kAttackerIp));

  // The Sybil fresh-port loophole is closed in this regime: ANY new port
  // from the discouraged IP is refused.
  AttackSession* sybil = attacker.OpenSession({kTargetIp, 8333});
  sched.RunUntil(sched.Now() + bsim::kSecond);
  EXPECT_TRUE(sybil->closed);
  EXPECT_FALSE(sybil->SessionReady());
}

TEST(Discouragement, DoesNotExpireWithTime) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.use_discouragement = true;
  Node node(sched, net, kTargetIp, config);
  node.Start();
  AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);
  Crafter crafter(config.chain);
  AttackSession* session = attacker.OpenSession({kTargetIp, 8333});
  sched.RunUntil(bsim::kSecond);
  attacker.Send(*session, crafter.SegwitInvalidTx());
  sched.RunUntil(sched.Now() + 48 * bsim::kHour);  // well past the 24h ban window
  EXPECT_TRUE(node.Bans().IsDiscouraged(kAttackerIp));
  AttackSession* retry = attacker.OpenSession({kTargetIp, 8333});
  sched.RunUntil(sched.Now() + bsim::kSecond);
  EXPECT_TRUE(retry->closed);
}

TEST(Discouragement, OutboundDialsAvoidDiscouragedIps) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.use_discouragement = true;
  config.target_outbound = 1;
  Node node(sched, net, kTargetIp, config);
  node.Bans().Discourage(kInnocentIp);
  NodeConfig pc;
  pc.target_outbound = 0;
  Node discouraged_peer(sched, net, kInnocentIp, pc);
  discouraged_peer.Start();
  node.AddKnownAddress({kInnocentIp, 8333});
  node.Start();
  sched.RunUntil(10 * bsim::kSecond);
  EXPECT_EQ(node.OutboundCount(), 0u);  // the only candidate is discouraged
}

TEST(Discouragement, DefamationBlacklistsTheWholeInnocentIp) {
  // The flip side the paper's Table I comparison hints at: with per-IP
  // discouragement, ONE successful Defamation injection denies the target
  // every identifier of the innocent IP — the full-IP attack needs one
  // identifier instead of 16384.
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig target_config;
  target_config.use_discouragement = true;
  target_config.target_outbound = 1;
  Node target(sched, net, kTargetIp, target_config);
  NodeConfig pc;
  pc.target_outbound = 0;
  Node innocent(sched, net, kInnocentIp, pc);
  innocent.Start();
  target.AddKnownAddress({kInnocentIp, 8333});
  target.Start();
  sched.RunUntil(5 * bsim::kSecond);
  const Peer* outbound = nullptr;
  for (const Peer* p : target.Peers()) {
    if (!p->inbound) outbound = p;
  }
  ASSERT_NE(outbound, nullptr);

  AttackerNode attacker(sched, net, kAttackerIp, target_config.chain.magic);
  Crafter crafter(target_config.chain);
  bsattack::PostConnectionDefamation defamation(attacker, outbound->conn->Local(),
                                                outbound->remote);
  defamation.Arm({bsproto::EncodeMessage(target_config.chain.magic,
                                         crafter.SegwitInvalidTx())});
  innocent.SendToRemoteIp(kTargetIp, bsproto::PingMsg{1});
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);

  EXPECT_TRUE(target.Bans().IsDiscouraged(kInnocentIp));
  // The target will never redial any port of the innocent IP.
  sched.RunUntil(sched.Now() + 30 * bsim::kSecond);
  EXPECT_EQ(target.OutboundCount(), 0u);
}

}  // namespace
