// Unit tests for bscrypto: SHA-256 against FIPS/NIST vectors, Hash256
// arithmetic and compact-bits codec, merkle trees with mutation detection.
#include <gtest/gtest.h>

#include <string>

#include "crypto/hash256.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "util/hex.hpp"

namespace {

using bscrypto::Hash256;
using bscrypto::Sha256;
using bsutil::ByteVec;

std::string HashHex(const std::string& input) {
  const auto digest = Sha256::Hash(bsutil::ToBytes(input));
  return bsutil::HexEncode(digest);
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 / NIST CAVS vectors)

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HashHex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HashHex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const ByteVec chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  std::array<std::uint8_t, 32> digest;
  hasher.Finalize(digest);
  EXPECT_EQ(bsutil::HexEncode(digest),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64 bytes: exercises the padding path that adds a full extra block.
  const std::string input(64, 'x');
  const auto one_shot = Sha256::Hash(bsutil::ToBytes(input));
  Sha256 incremental;
  incremental.Update(bsutil::ToBytes(input.substr(0, 13)));
  incremental.Update(bsutil::ToBytes(input.substr(13)));
  std::array<std::uint8_t, 32> digest;
  incremental.Finalize(digest);
  EXPECT_EQ(digest, one_shot);
}

TEST(Sha256Test, IncrementalMatchesOneShotAcrossSplits) {
  const std::string input =
      "the quick brown fox jumps over the lazy dog repeatedly and at length";
  const auto expected = Sha256::Hash(bsutil::ToBytes(input));
  for (std::size_t split = 0; split <= input.size(); split += 7) {
    Sha256 hasher;
    hasher.Update(bsutil::ToBytes(input.substr(0, split)));
    hasher.Update(bsutil::ToBytes(input.substr(split)));
    std::array<std::uint8_t, 32> digest;
    hasher.Finalize(digest);
    EXPECT_EQ(digest, expected) << "split at " << split;
  }
}

TEST(Sha256Test, DoubleShaKnownVector) {
  // HashD("hello") = sha256(sha256("hello")).
  EXPECT_EQ(bsutil::HexEncode(Sha256::HashD(bsutil::ToBytes("hello"))),
            "9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50");
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 hasher;
  hasher.Update(bsutil::ToBytes("garbage"));
  hasher.Reset();
  hasher.Update(bsutil::ToBytes("abc"));
  std::array<std::uint8_t, 32> digest;
  hasher.Finalize(digest);
  EXPECT_EQ(bsutil::HexEncode(digest),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// ---------------------------------------------------------------------------
// Hash256

TEST(Hash256Test, HexRoundTripPreservesDisplayOrientation) {
  const std::string hex =
      "00000000000000000008a89e854d57e5667df88f1cdef6fde2fbca1de5b639ad";
  const Hash256 h = Hash256::FromHex(hex);
  EXPECT_EQ(h.ToHex(), hex);
  // Little-endian storage: most-significant (display-leading) bytes at the end.
  EXPECT_EQ(h.Bytes()[31], 0x00);
  EXPECT_EQ(h.Bytes()[0], 0xad);
}

TEST(Hash256Test, MalformedHexYieldsZero) {
  EXPECT_TRUE(Hash256::FromHex("xyz").IsZero());
  EXPECT_TRUE(Hash256::FromHex("abcd").IsZero());  // wrong length
}

TEST(Hash256Test, NumericOrdering) {
  const Hash256 small = Hash256::FromHex(
      "0000000000000000000000000000000000000000000000000000000000000001");
  const Hash256 big = Hash256::FromHex(
      "1000000000000000000000000000000000000000000000000000000000000000");
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_EQ(small, small);
}

TEST(Hash256Test, CompactRoundTripMainnetGenesisBits) {
  // 0x1d00ffff is the Bitcoin mainnet genesis difficulty.
  bool negative = false, overflow = false;
  const Hash256 target = Hash256::FromCompact(0x1d00ffff, &negative, &overflow);
  EXPECT_FALSE(negative);
  EXPECT_FALSE(overflow);
  EXPECT_EQ(target.ToHex(),
            "00000000ffff0000000000000000000000000000000000000000000000000000");
  EXPECT_EQ(target.ToCompact(), 0x1d00ffffu);
}

TEST(Hash256Test, CompactRegtestBits) {
  const Hash256 target = Hash256::FromCompact(0x207fffff);
  EXPECT_EQ(target.ToHex(),
            "7fffff0000000000000000000000000000000000000000000000000000000000");
  EXPECT_EQ(target.ToCompact(), 0x207fffffu);
}

TEST(Hash256Test, CompactNegativeFlag) {
  bool negative = false, overflow = false;
  (void)Hash256::FromCompact(0x01800000 | 0x12, &negative, &overflow);
  // Sign bit set with nonzero mantissa.
  bool neg2 = false;
  (void)Hash256::FromCompact(0x04923456, &neg2, nullptr);
  EXPECT_TRUE(([&] {
    bool n = false;
    (void)Hash256::FromCompact(0x04800001, &n, nullptr);
    return n;
  })());
}

TEST(Hash256Test, CompactOverflowFlag) {
  bool negative = false, overflow = false;
  (void)Hash256::FromCompact(0xff123456, &negative, &overflow);
  EXPECT_TRUE(overflow);
}

TEST(Hash256Test, CompactZeroMantissa) {
  bool negative = false, overflow = false;
  const Hash256 target = Hash256::FromCompact(0x00000000, &negative, &overflow);
  EXPECT_TRUE(target.IsZero());
  EXPECT_FALSE(negative);
  EXPECT_FALSE(overflow);
}

TEST(Hash256Test, SerializeRoundTrip) {
  const Hash256 h = Hash256::FromHex(
      "00000000000000000008a89e854d57e5667df88f1cdef6fde2fbca1de5b639ad");
  bsutil::Writer w;
  h.Serialize(w);
  EXPECT_EQ(w.Size(), 32u);
  bsutil::Reader r(w.Data());
  EXPECT_EQ(Hash256::Deserialize(r), h);
}

// ---------------------------------------------------------------------------
// Merkle

Hash256 LeafFrom(int i) {
  ByteVec data = {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8)};
  return Hash256{Sha256::HashD(data)};
}

TEST(MerkleTest, EmptyIsZero) {
  EXPECT_TRUE(bscrypto::MerkleRoot({}).IsZero());
}

TEST(MerkleTest, SingleLeafIsItself) {
  const Hash256 leaf = LeafFrom(1);
  EXPECT_EQ(bscrypto::MerkleRoot({leaf}), leaf);
}

TEST(MerkleTest, TwoLeavesCombine) {
  const Hash256 a = LeafFrom(1), b = LeafFrom(2);
  std::uint8_t concat[64];
  std::copy(a.Bytes().begin(), a.Bytes().end(), concat);
  std::copy(b.Bytes().begin(), b.Bytes().end(), concat + 32);
  const Hash256 expected{Sha256::HashD(bsutil::ByteSpan(concat, 64))};
  EXPECT_EQ(bscrypto::MerkleRoot({a, b}), expected);
}

TEST(MerkleTest, OddCountDuplicatesLastWithoutMutationFlag) {
  bool mutated = true;
  const Hash256 root3 = bscrypto::MerkleRoot({LeafFrom(1), LeafFrom(2), LeafFrom(3)},
                                             &mutated);
  EXPECT_FALSE(mutated);  // self-padding is not mutation
  // Odd-padding means [1,2,3] == [1,2,3,3] (the CVE-2012-2459 ambiguity).
  const Hash256 root4 =
      bscrypto::MerkleRoot({LeafFrom(1), LeafFrom(2), LeafFrom(3), LeafFrom(3)});
  EXPECT_EQ(root3, root4);
}

TEST(MerkleTest, DuplicatePairFlagsMutation) {
  bool mutated = false;
  (void)bscrypto::MerkleRoot({LeafFrom(1), LeafFrom(1)}, &mutated);
  EXPECT_TRUE(mutated);
}

TEST(MerkleTest, DuplicatePairDeepInTreeFlagsMutation) {
  bool mutated = false;
  (void)bscrypto::MerkleRoot({LeafFrom(1), LeafFrom(2), LeafFrom(5), LeafFrom(5)},
                             &mutated);
  EXPECT_TRUE(mutated);
}

TEST(MerkleTest, DistinctLeavesNotMutated) {
  bool mutated = true;
  (void)bscrypto::MerkleRoot(
      {LeafFrom(1), LeafFrom(2), LeafFrom(3), LeafFrom(4), LeafFrom(5)}, &mutated);
  EXPECT_FALSE(mutated);
}

TEST(MerkleTest, RootDependsOnOrder) {
  const auto r1 = bscrypto::MerkleRoot({LeafFrom(1), LeafFrom(2)});
  const auto r2 = bscrypto::MerkleRoot({LeafFrom(2), LeafFrom(1)});
  EXPECT_NE(r1, r2);
}

class MerkleSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(MerkleSizeSweep, RootIsStableAndNonZero) {
  std::vector<Hash256> leaves;
  for (int i = 0; i < GetParam(); ++i) leaves.push_back(LeafFrom(i));
  const Hash256 root_a = bscrypto::MerkleRoot(leaves);
  const Hash256 root_b = bscrypto::MerkleRoot(leaves);
  EXPECT_EQ(root_a, root_b);
  EXPECT_FALSE(root_a.IsZero());
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 33, 100, 255));

}  // namespace
