// Property tests for the bucketed AddrMan: deterministic seeded placement,
// the per-/16 bucket-quota confinement that blunts Eclipse-style ADDR
// poisoning, tried/new lifecycle, terrible-address expiry, flat-table
// eviction at capacity, the fallback-scan offset, and durability of the
// tried/new split through DurableNodeState.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/addrman.hpp"
#include "core/banman.hpp"
#include "core/durable.hpp"
#include "core/misbehavior.hpp"
#include "sim/simfs.hpp"

namespace {

using bsnet::AddrMan;
using bsproto::Endpoint;

Endpoint Ep(std::uint32_t ip, std::uint16_t port = 8333) { return {ip, port}; }

// Addresses spread over many /16s.
std::vector<Endpoint> DiverseAddrs(int count) {
  std::vector<Endpoint> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(Ep(0x0a000001 + (static_cast<std::uint32_t>(i) << 16)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Placement determinism

TEST(AddrMan, PlacementIsDeterministicPerSeed) {
  AddrMan a(42);
  AddrMan b(42);
  a.EnableBucketing();
  b.EnableBucketing();
  const auto addrs = DiverseAddrs(200);
  for (const Endpoint& ep : addrs) {
    a.Add(ep);
    b.Add(ep);
  }
  std::size_t placed = 0;
  for (const Endpoint& ep : addrs) {
    const auto da = a.DebugEntry(ep);
    const auto db = b.DebugEntry(ep);
    // Same seed → same slot collisions → the same survivors, identically
    // placed (a collision loser is dropped in both instances alike).
    ASSERT_EQ(da.has_value(), db.has_value());
    if (!da.has_value()) continue;
    ++placed;
    EXPECT_EQ(da->bucket, db->bucket);
    EXPECT_EQ(da->slot, db->slot);
    EXPECT_EQ(da->tried, db->tried);
  }
  EXPECT_GT(placed, 150u);
}

TEST(AddrMan, PlacementDiffersAcrossSeeds) {
  AddrMan a(1);
  AddrMan b(2);
  a.EnableBucketing();
  b.EnableBucketing();
  const auto addrs = DiverseAddrs(200);
  int differing = 0;
  for (const Endpoint& ep : addrs) {
    a.Add(ep);
    b.Add(ep);
    const auto da = a.DebugEntry(ep);
    const auto db = b.DebugEntry(ep);
    if (da.has_value() && db.has_value() &&
        (da->bucket != db->bucket || da->slot != db->slot)) {
      ++differing;
    }
  }
  // A different seed must re-key the placement hash: with 256 buckets the
  // chance of 200 collisions agreeing is nil.
  EXPECT_GT(differing, 100);
}

// ---------------------------------------------------------------------------
// Netgroup confinement: the poisoning defense

TEST(AddrMan, SingleNetgroupConfinedToNewBucketQuota) {
  AddrMan man(7);
  man.EnableBucketing();
  // 2000 distinct addresses, all in 10.0.0.0/16 — a poisoning flood.
  for (std::uint32_t i = 0; i < 2000; ++i) {
    man.Add(Ep(0x0a000001 + i));
  }
  std::set<int> buckets;
  std::size_t placed = 0;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const auto entry = man.DebugEntry(Ep(0x0a000001 + i));
    if (!entry.has_value()) continue;  // lost its slot collision
    ++placed;
    EXPECT_FALSE(entry->tried);
    buckets.insert(entry->bucket);
  }
  EXPECT_GT(placed, 0u);
  EXPECT_LE(buckets.size(), AddrMan::kGroupNewBuckets);
  // The flood can hold at most quota * bucket-size slots of the whole table.
  EXPECT_LE(man.NewCount(), AddrMan::kGroupNewBuckets * AddrMan::kBucketSize);
}

TEST(AddrMan, SingleNetgroupConfinedToTriedBucketQuota) {
  AddrMan man(7);
  man.EnableBucketing();
  for (std::uint32_t i = 0; i < 600; ++i) {
    const Endpoint ep = Ep(0x0a000001 + i);
    man.Add(ep);
    man.Good(ep, /*now=*/bsim::kSecond);
  }
  std::set<int> tried_buckets;
  for (std::uint32_t i = 0; i < 600; ++i) {
    const auto entry = man.DebugEntry(Ep(0x0a000001 + i));
    if (!entry.has_value() || !entry->tried) continue;
    tried_buckets.insert(entry->bucket);
  }
  EXPECT_GT(man.TriedCount(), 0u);
  EXPECT_LE(tried_buckets.size(), AddrMan::kGroupTriedBuckets);
  EXPECT_LE(man.TriedCount(), AddrMan::kGroupTriedBuckets * AddrMan::kBucketSize);
}

// ---------------------------------------------------------------------------
// Lifecycle: Good promotion, Attempt-driven terrible expiry

TEST(AddrMan, GoodPromotesOnceAndIsTried) {
  AddrMan man(3);
  man.EnableBucketing();
  const Endpoint ep = Ep(0x0a000001);
  man.Add(ep);
  EXPECT_FALSE(man.IsTried(ep));
  EXPECT_TRUE(man.Good(ep, bsim::kSecond));
  EXPECT_TRUE(man.IsTried(ep));
  EXPECT_EQ(man.TriedCount(), 1u);
  EXPECT_EQ(man.NewCount(), 0u);
  // Re-promotion is a no-op (returns false, counts stable).
  EXPECT_FALSE(man.Good(ep, 2 * bsim::kSecond));
  EXPECT_EQ(man.TriedCount(), 1u);
}

TEST(AddrMan, NeverSuccessfulAddressExpiresAfterMaxRetries) {
  AddrMan man(3);
  man.EnableBucketing();
  const Endpoint ep = Ep(0x0a000001);
  man.Add(ep);
  for (int i = 0; i < AddrMan::kMaxRetries; ++i) {
    EXPECT_TRUE(man.Contains(ep)) << "expired after only " << i << " attempts";
    man.Attempt(ep, (i + 1) * bsim::kSecond);
  }
  EXPECT_FALSE(man.Contains(ep));  // terrible: never succeeded, kept failing
  EXPECT_EQ(man.NewCount(), 0u);
}

TEST(AddrMan, TriedAddressSurvivesFailedAttempts) {
  AddrMan man(3);
  man.EnableBucketing();
  const Endpoint ep = Ep(0x0a000001);
  man.Add(ep);
  man.Good(ep, bsim::kSecond);
  for (int i = 0; i < 2 * AddrMan::kMaxRetries; ++i) {
    man.Attempt(ep, (i + 2) * bsim::kSecond);
  }
  EXPECT_TRUE(man.Contains(ep));  // earned its slot with a real handshake
  EXPECT_TRUE(man.IsTried(ep));
}

// ---------------------------------------------------------------------------
// Flat-table capacity eviction (legacy mode)

TEST(AddrMan, FlatTableEvictsAtMaxSize) {
  AddrMan man(5);
  for (std::uint32_t i = 0; i < AddrMan::kMaxSize; ++i) {
    man.Add(Ep(0x01000001 + i));
  }
  ASSERT_EQ(man.Size(), AddrMan::kMaxSize);
  const Endpoint newcomer = Ep(0xdeadbeef);
  man.Add(newcomer);
  EXPECT_EQ(man.Size(), AddrMan::kMaxSize);  // capacity held
  EXPECT_TRUE(man.Contains(newcomer));       // newcomer admitted, not starved
}

// ---------------------------------------------------------------------------
// Select fallback scan: random offset, not a head-of-table bias

TEST(AddrMan, SelectFallbackFindsTheOnlyUsableEntry) {
  AddrMan man(11);
  const auto addrs = DiverseAddrs(1000);
  for (const Endpoint& ep : addrs) man.Add(ep);
  const Endpoint needle = addrs[703];
  for (int i = 0; i < 10; ++i) {
    const auto got = man.Select([&](const Endpoint& ep) { return ep == needle; });
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, needle);
  }
}

TEST(AddrMan, SelectFallbackOffsetVariesAcrossSeeds) {
  // Two usable entries at opposite ends of insertion order: a head-biased
  // scan would always return the first. The seeded random offset must make
  // both reachable across seeds.
  const auto addrs = DiverseAddrs(1000);
  const Endpoint first = addrs[0];
  const Endpoint late = addrs[500];
  std::set<std::uint32_t> returned;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    AddrMan man(seed);
    for (const Endpoint& ep : addrs) man.Add(ep);
    const auto got = man.Select(
        [&](const Endpoint& ep) { return ep == first || ep == late; });
    ASSERT_TRUE(got.has_value());
    returned.insert(got->ip);
  }
  EXPECT_TRUE(returned.contains(first.ip));
  EXPECT_TRUE(returned.contains(late.ip));
}

// ---------------------------------------------------------------------------
// Durability: the tried/new split survives a crash-reload cycle

TEST(AddrMan, TriedNewSplitRoundTripsThroughDurableStore) {
  bsim::SimFs fs(9);
  const Endpoint tried_ep = Ep(0x0a000001);
  const Endpoint new_ep = Ep(0x0b000001);
  const Endpoint expired_ep = Ep(0x0c000001);
  {
    bsnet::BanMan bans;
    bsnet::MisbehaviorTracker tracker(bsnet::CoreVersion::kV0_20,
                                      bsnet::BanPolicy::kBanScore, 100);
    AddrMan addrs(4);
    addrs.EnableBucketing();
    bsnet::DurableNodeState durable(fs, "addr-node", bans, tracker, addrs);
    ASSERT_TRUE(durable.Open(/*now=*/0));
    addrs.Add(tried_ep);
    addrs.Add(new_ep);
    addrs.Add(expired_ep);
    addrs.Good(tried_ep, bsim::kSecond);
    for (int i = 0; i < AddrMan::kMaxRetries; ++i) {
      addrs.Attempt(expired_ep, (i + 2) * bsim::kSecond);
    }
    ASSERT_FALSE(addrs.Contains(expired_ep));
    ASSERT_TRUE(durable.SetAnchors({tried_ep}));
    // No Flush: the reload below replays the WAL, simulating a crash.
  }
  bsnet::BanMan bans;
  bsnet::MisbehaviorTracker tracker(bsnet::CoreVersion::kV0_20,
                                    bsnet::BanPolicy::kBanScore, 100);
  AddrMan addrs(4);
  addrs.EnableBucketing();
  bsnet::DurableNodeState durable(fs, "addr-node", bans, tracker, addrs);
  ASSERT_TRUE(durable.Open(/*now=*/bsim::kMinute));
  EXPECT_TRUE(addrs.Contains(tried_ep));
  EXPECT_TRUE(addrs.IsTried(tried_ep));
  EXPECT_TRUE(addrs.Contains(new_ep));
  EXPECT_FALSE(addrs.IsTried(new_ep));
  EXPECT_FALSE(addrs.Contains(expired_ep));  // expiry journaled as remove
  ASSERT_EQ(durable.Anchors().size(), 1u);
  EXPECT_EQ(durable.Anchors()[0], tried_ep);
}

TEST(AddrMan, SerializeRoundTripPreservesBucketedState) {
  AddrMan man(6);
  man.EnableBucketing();
  const auto addrs = DiverseAddrs(50);
  for (const Endpoint& ep : addrs) man.Add(ep);
  for (int i = 0; i < 10; ++i) man.Good(addrs[static_cast<std::size_t>(i)], bsim::kSecond);

  AddrMan clone(6);
  clone.EnableBucketing();
  ASSERT_TRUE(clone.Deserialize(man.Serialize()));
  EXPECT_EQ(clone.Size(), man.Size());
  EXPECT_EQ(clone.TriedCount(), man.TriedCount());
  EXPECT_EQ(clone.NewCount(), man.NewCount());
  for (const Endpoint& ep : addrs) {
    EXPECT_EQ(clone.Contains(ep), man.Contains(ep));
    EXPECT_EQ(clone.IsTried(ep), man.IsTried(ep));
  }
}

}  // namespace
