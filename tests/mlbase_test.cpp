// Tests for the Fig. 11 ML baselines: every detector must actually learn the
// synthetic traffic-anomaly dataset (the latency comparison is meaningless
// against broken models), plus unit checks for the shared pieces.
#include <gtest/gtest.h>

#include <memory>

#include "mlbase/autoencoder.hpp"
#include "mlbase/boosting.hpp"
#include "mlbase/dataset.hpp"
#include "mlbase/dnn.hpp"
#include "mlbase/forest.hpp"
#include "mlbase/kernel_svm.hpp"
#include "mlbase/logistic.hpp"
#include "mlbase/ocsvm.hpp"
#include "mlbase/svm.hpp"

namespace {

using namespace bsml;  // NOLINT

// ---------------------------------------------------------------------------
// Shared pieces

TEST(Standardizer, CentersAndScales) {
  Standardizer scaler;
  scaler.Fit({{0.0, 10.0}, {2.0, 10.0}, {4.0, 10.0}});
  const Vec z = scaler.Transform(Vec{2.0, 10.0});
  EXPECT_NEAR(z[0], 0.0, 1e-9);
  EXPECT_NEAR(z[1], 0.0, 1e-9);  // constant feature centered, not exploded
  const Vec hi = scaler.Transform(Vec{4.0, 10.0});
  EXPECT_GT(hi[0], 0.9);
}

TEST(SyntheticData, ShapesAndLabels) {
  const LabeledData data = MakeSyntheticTrafficData(100, 40, 12, 3);
  ASSERT_EQ(data.X.size(), 140u);
  ASSERT_EQ(data.y.size(), 140u);
  EXPECT_EQ(data.X[0].size(), 12u);
  int positives = 0;
  for (int label : data.y) positives += label;
  EXPECT_EQ(positives, 40);
}

TEST(SyntheticData, DeterministicPerSeed) {
  const LabeledData a = MakeSyntheticTrafficData(10, 5, 6, 42);
  const LabeledData b = MakeSyntheticTrafficData(10, 5, 6, 42);
  EXPECT_EQ(a.X, b.X);
}

// ---------------------------------------------------------------------------
// Every detector learns the detection problem

struct DetectorFactory {
  const char* name;
  std::unique_ptr<Detector> (*make)();
};

class DetectorLearning : public ::testing::TestWithParam<DetectorFactory> {};

TEST_P(DetectorLearning, SeparatesFloodAndChurnAnomalies) {
  const LabeledData train = MakeSyntheticTrafficData(400, 200, 10, 1);
  const LabeledData test = MakeSyntheticTrafficData(200, 100, 10, 2);
  auto model = GetParam().make();
  model->Fit(train.X, train.y);
  const double accuracy = Accuracy(*model, test.X, test.y);
  EXPECT_GT(accuracy, 0.9) << GetParam().name << " accuracy " << accuracy;
}

TEST_P(DetectorLearning, PredictIsDeterministic) {
  const LabeledData train = MakeSyntheticTrafficData(200, 100, 8, 4);
  auto model = GetParam().make();
  model->Fit(train.X, train.y);
  const Vec probe = train.X[17];
  EXPECT_EQ(model->Predict(probe), model->Predict(probe));
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, DetectorLearning,
    ::testing::Values(
        DetectorFactory{"LR",
                        []() -> std::unique_ptr<Detector> {
                          return std::make_unique<LogisticRegression>();
                        }},
        DetectorFactory{"GB",
                        []() -> std::unique_ptr<Detector> {
                          return std::make_unique<GradientBoosting>();
                        }},
        DetectorFactory{"RF",
                        []() -> std::unique_ptr<Detector> {
                          return std::make_unique<RandomForest>();
                        }},
        DetectorFactory{"SVM",
                        []() -> std::unique_ptr<Detector> {
                          return std::make_unique<LinearSvm>();
                        }},
        DetectorFactory{"DNN",
                        []() -> std::unique_ptr<Detector> {
                          return std::make_unique<Dnn>();
                        }},
        DetectorFactory{"OCSVM",
                        []() -> std::unique_ptr<Detector> {
                          return std::make_unique<OneClassSvm>();
                        }},
        DetectorFactory{"AE",
                        []() -> std::unique_ptr<Detector> {
                          return std::make_unique<AutoEncoder>();
                        }},
        DetectorFactory{"KernelSVM",
                        []() -> std::unique_ptr<Detector> {
                          return std::make_unique<KernelSvm>();
                        }},
        DetectorFactory{"KernelOCSVM",
                        []() -> std::unique_ptr<Detector> {
                          return std::make_unique<KernelOneClass>();
                        }}),
    [](const ::testing::TestParamInfo<DetectorFactory>& info) {
      return std::string(info.param.name);
    });

// ---------------------------------------------------------------------------
// Targeted behaviours

TEST(LogisticRegressionTest, ProbabilitiesOrdered) {
  const LabeledData train = MakeSyntheticTrafficData(300, 150, 6, 9);
  LogisticRegression model;
  model.Fit(train.X, train.y);
  // A blatant flood row should get a higher probability than a normal row.
  Vec normal = train.X[0];
  Vec flood = normal;
  flood[0] = 20'000.0;
  flood[2] = 0.95;
  EXPECT_GT(model.PredictProba(flood), model.PredictProba(normal));
}

TEST(AutoEncoderTest, ReconstructionErrorHigherForAnomalies) {
  const LabeledData train = MakeSyntheticTrafficData(400, 0, 8, 21);
  AutoEncoder model;
  model.Fit(train.X, train.y);
  const LabeledData probe = MakeSyntheticTrafficData(50, 50, 8, 22);
  double normal_err = 0.0, anomaly_err = 0.0;
  for (std::size_t i = 0; i < probe.X.size(); ++i) {
    (probe.y[i] == 0 ? normal_err : anomaly_err) += model.ReconstructionError(probe.X[i]);
  }
  EXPECT_GT(anomaly_err / 50.0, normal_err / 50.0);
}

TEST(OneClassSvmTest, TrainsWithoutAnomalyLabels) {
  const LabeledData train = MakeSyntheticTrafficData(400, 0, 8, 31);
  OneClassSvm model;
  model.Fit(train.X, train.y);
  const LabeledData probe = MakeSyntheticTrafficData(100, 100, 8, 32);
  int caught = 0;
  for (std::size_t i = 0; i < probe.X.size(); ++i) {
    if (probe.y[i] == 1 && model.Predict(probe.X[i]) == 1) ++caught;
  }
  EXPECT_GT(caught, 60);  // catches most anomalies unseen in training
}

TEST(RandomForestTest, ScoreIsBetweenZeroAndOne) {
  const LabeledData train = MakeSyntheticTrafficData(200, 100, 6, 41);
  RandomForest model;
  model.Fit(train.X, train.y);
  for (const auto& row : train.X) {
    const double score = model.Score(row);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST(Detectors, EmptyFitIsSafe) {
  LogisticRegression lr;
  lr.Fit({}, {});
  RandomForest rf;
  rf.Fit({}, {});
  Dnn dnn;
  dnn.Fit({}, {});
  EXPECT_EQ(lr.Predict(Vec{1, 2, 3}), 0);
}

}  // namespace
