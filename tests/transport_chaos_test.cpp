// Transport chaos tier: two full Nodes over RealTransport with every syscall
// routed through a seeded FaultSocketApi. 50 seeds of EAGAIN storms, short
// writes, resets, accept failures, refused connects and blackholes — the
// acceptance bar is the paper's: infrastructure noise must never look like
// misbehavior (zero honest bans), no connection may wedge mid-connect past
// the timeout, and the reconnect-backoff map must respect its cap.
#include <gtest/gtest.h>

#include <string>

#include "core/event_loop.hpp"
#include "core/node.hpp"
#include "core/real_transport.hpp"
#include "sim/faultsock.hpp"

namespace {

using namespace bsnet;  // NOLINT

constexpr std::uint32_t kLoopback = 0x7f000001;

bool PumpUntil(EventLoop& loop, const std::function<bool()>& done,
               int budget_ms) {
  const bsim::SimTime deadline = loop.WallNow() + budget_ms * bsim::kMillisecond;
  while (!done()) {
    if (loop.WallNow() >= deadline) return false;
    loop.PumpOnce(10);
  }
  return true;
}

bool AnyBan(Node& a, Node& b) {
  return a.Bans().Size() > 0 || b.Bans().Size() > 0;
}

class TransportChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

// One seed of the sweep: two nodes on a faulty substrate keep (re)connecting,
// mining and relaying for a fixed wall budget. Liveness is best-effort under
// 30% refused connects — the hard assertions are about what must NOT happen.
TEST_P(TransportChaosSweep, FaultStormNeverManufacturesMisbehavior) {
  const std::uint64_t seed = GetParam();

  bsim::Scheduler sched;
  EventLoop loop(sched);
  bsim::FaultSocketApi api(bsim::RealSocketApi::Instance());
  bsim::FaultSocketFaults faults;
  faults.eagain_rate = 0.2;
  faults.short_io_rate = 0.2;
  faults.reset_rate = 0.05;
  faults.accept_fail_rate = 0.3;
  faults.connect_fail_rate = 0.3;
  faults.blackhole_rate = 0.02;
  faults.seed = seed;
  api.SetFaults(faults);

  RealTransportConfig rta;
  rta.bind_port = 0;
  rta.connect_timeout = 300 * bsim::kMillisecond;
  RealTransportConfig rtb = rta;
  RealTransport ta(loop, api, rta);
  RealTransport tb(loop, api, rtb);

  NodeConfig config;
  config.listen_port = 0;
  config.reconnect_backoff = true;
  config.dial_backoff_max_entries = 64;
  // The watchdog that turns a blackholed (half-open) peer into a teardown
  // instead of an eternal zombie.
  config.ping_interval = 200 * bsim::kMillisecond;
  config.ping_timeout = 400 * bsim::kMillisecond;
  Node a(sched, ta, config);
  Node b(sched, tb, config);

  // Transport faults must never read as *protocol* misbehavior. The one
  // symptom a lossy link CAN legitimately produce is an orphan block — a
  // swallowed relay followed by the next block is Table I's prev-missing
  // rule firing on an honest peer (the phenomenon the partition-damping
  // defense exists for). Everything else — checksum, malformed, handshake
  // ordering — would mean the transport corrupted or reordered the stream.
  std::vector<Misbehavior> unexpected;
  const auto audit = [&unexpected](const Peer&, Misbehavior what,
                                   const MisbehaviorOutcome&) {
    if (what != Misbehavior::kBlockPrevMissing) unexpected.push_back(what);
  };
  a.on_misbehavior = audit;
  b.on_misbehavior = audit;

  a.Start();
  b.Start();
  ASSERT_EQ(ta.LastListenError(), 0);
  ASSERT_EQ(tb.LastListenError(), 0);
  const std::uint16_t port_a = ta.BoundPort(0);
  const std::uint16_t port_b = tb.BoundPort(0);

  // Both sides know each other; Node's own maintenance loop redials through
  // its capped backoff whenever a fault kills the link.
  a.AddKnownAddress({kLoopback, port_b});
  b.AddKnownAddress({kLoopback, port_a});
  b.ConnectTo({kLoopback, port_a});

  const bsim::SimTime stop = loop.WallNow() + 1500 * bsim::kMillisecond;
  int mined = 0;
  while (loop.WallNow() < stop) {
    loop.PumpOnce(10);
    // Keep real frames flowing so faults land on live traffic, not silence.
    if (mined < 5 && !b.Peers().empty()) {
      b.MineAndRelay();
      ++mined;
    }
    if (AnyBan(a, b)) break;  // already failed; audited below
  }

  // Quiesce: stop injecting, give every in-flight connect one full timeout
  // (plus epoll slack) to either establish or fail — nothing may stay wedged
  // in kConnecting, and the graveyard must drain.
  api.SetFaults({});
  PumpUntil(
      loop, [&] { return ta.PendingConnects() == 0 && tb.PendingConnects() == 0; },
      2000);
  EXPECT_EQ(ta.PendingConnects(), 0u) << "seed " << seed;
  EXPECT_EQ(tb.PendingConnects(), 0u) << "seed " << seed;

  // The backoff map honored its bound no matter how much churn the seed made.
  EXPECT_LE(a.DialBackoffEntries(), config.dial_backoff_max_entries);
  EXPECT_LE(b.DialBackoffEntries(), config.dial_backoff_max_entries);

  // Final misbehavior audit after the dust settles: no bans, and no penalty
  // class other than the loss-induced orphan symptom ever fired.
  EXPECT_FALSE(AnyBan(a, b))
      << "seed " << seed << " turned transport faults into a ban";
  EXPECT_TRUE(unexpected.empty())
      << "seed " << seed << " charged a non-orphan penalty, first kind "
      << static_cast<int>(unexpected.front());

  a.Shutdown();
  b.Shutdown();
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, TransportChaosSweep,
                         ::testing::Range<std::uint64_t>(1, 51),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Deterministic half-open case: a blackholed peer produces no socket error at
// all — only the ping watchdog can notice, and it must, without any ban.
TEST(TransportBlackhole, PingWatchdogReapsHalfOpenPeerWithoutBanning) {
  bsim::Scheduler sched;
  EventLoop loop(sched);
  bsim::FaultSocketApi api(bsim::RealSocketApi::Instance());

  RealTransportConfig rt;
  rt.bind_port = 0;
  RealTransport ta(loop, api, rt);
  RealTransport tb(loop, api, rt);

  NodeConfig config;
  config.listen_port = 0;
  config.ping_interval = 150 * bsim::kMillisecond;
  config.ping_timeout = 300 * bsim::kMillisecond;
  Node a(sched, ta, config);
  Node b(sched, tb, config);
  a.Start();
  b.Start();
  ASSERT_EQ(ta.LastListenError(), 0);
  ASSERT_EQ(tb.LastListenError(), 0);

  ASSERT_TRUE(b.ConnectTo({kLoopback, ta.BoundPort(0)}));
  ASSERT_TRUE(PumpUntil(
      loop,
      [&] {
        const auto pa = a.Peers();
        const auto pb = b.Peers();
        return pa.size() == 1 && pb.size() == 1 && pa[0]->got_verack &&
               pb[0]->got_verack;
      },
      3000));

  // Poison every plausible fd at the syscall layer: all writes vanish, all
  // reads go silent. From each node's view the peer is now half-open — no
  // EOF, no error, just nothing. Only Send/Recv/SockError honor poison, so
  // listeners and redials keep working; re-established links stay mute too.
  for (int fd = 3; fd < 200; ++fd) {
    api.PoisonFd(fd, bsim::FaultSocketApi::Poison::kBlackhole);
  }

  // The watchdog must tear the zombie down within a few ping cycles...
  ASSERT_TRUE(PumpUntil(loop, [&] { return b.Peers().empty(); }, 5000))
      << "half-open peer never reaped";
  // ...and silence is infrastructure, not misbehavior: nobody got banned.
  EXPECT_EQ(a.Bans().Size(), 0u);
  EXPECT_EQ(b.Bans().Size(), 0u);

  a.Shutdown();
  b.Shutdown();
}

}  // namespace
