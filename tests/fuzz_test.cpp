// Tests for the in-repo fuzz fabric itself: generator validity, mutator and
// engine determinism, minimizer behavior, repro-file round-trips, the short
// smoke campaigns that gate every ctest run, and the Table I differential
// rule-set oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz/differential.hpp"
#include "fuzz/engine.hpp"
#include "fuzz/generators.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/mutators.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace {

using bsutil::ByteVec;

std::string TempDir(const std::string& leaf) {
  const auto dir = std::filesystem::temp_directory_path() / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// --- generators -----------------------------------------------------------

TEST(FuzzGenerators, BaseInputsAreValidUnderTheirHarness) {
  // The whole structure-aware premise: unmutated generator output must pass
  // its harness, otherwise every campaign would drown in false positives.
  for (const std::string& harness : bsfuzz::AllHarnesses()) {
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
      bsutil::Rng rng(seed * 977);
      const ByteVec input = bsfuzz::BaseInputFor(harness, rng);
      ASSERT_FALSE(input.empty()) << harness << " seed " << seed;
      const bsfuzz::HarnessResult r = bsfuzz::RunHarness(harness, input);
      EXPECT_TRUE(r.ok) << harness << " seed " << seed << ": " << r.oracle
                        << " — " << r.detail;
    }
  }
}

TEST(FuzzGenerators, Deterministic) {
  for (const std::string& harness : bsfuzz::AllHarnesses()) {
    bsutil::Rng a(42), b(42);
    EXPECT_EQ(bsfuzz::BaseInputFor(harness, a), bsfuzz::BaseInputFor(harness, b))
        << harness;
  }
}

TEST(FuzzGenerators, UnknownHarnessThrows) {
  bsutil::Rng rng(1);
  EXPECT_THROW(bsfuzz::BaseInputFor("nope", rng), std::invalid_argument);
  EXPECT_THROW(bsfuzz::RunHarness("nope", ByteVec{}), std::invalid_argument);
}

// --- mutators -------------------------------------------------------------

TEST(FuzzMutators, DeterministicAndTraced) {
  bsutil::Rng gen(7);
  const ByteVec base = bsfuzz::CodecBase(gen);

  ByteVec a = base, b = base;
  std::vector<std::string> trace_a, trace_b;
  bsutil::Rng ra(99), rb(99);
  bsfuzz::Mutate(a, ra, 4, trace_a);
  bsfuzz::Mutate(b, rb, 4, trace_b);

  EXPECT_EQ(a, b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(trace_a.size(), 4u);
  for (const std::string& step : trace_a) EXPECT_FALSE(step.empty());
}

TEST(FuzzMutators, EventuallyChangesInput) {
  bsutil::Rng gen(11);
  const ByteVec base = bsfuzz::CodecBase(gen);
  bsutil::Rng rng(13);
  ByteVec mutated = base;
  std::vector<std::string> trace;
  // A single mutation may be a no-op (e.g. flipping then restoring layout);
  // a stack of eight across several tries must not be.
  bool changed = false;
  for (int attempt = 0; attempt < 8 && !changed; ++attempt) {
    mutated = base;
    bsfuzz::Mutate(mutated, rng, 8, trace);
    changed = mutated != base;
  }
  EXPECT_TRUE(changed);
}

// --- minimizer ------------------------------------------------------------

TEST(FuzzMinimize, ShrinksToThePinnedCause) {
  // Failure predicate: input contains the byte 0x42 anywhere.
  ByteVec input(100, 0xaa);
  input[57] = 0x42;
  const auto still_fails = [](bsutil::ByteSpan candidate) {
    return std::find(candidate.begin(), candidate.end(), 0x42) !=
           candidate.end();
  };
  const ByteVec minimized = bsfuzz::Minimize(input, still_fails);
  ASSERT_FALSE(minimized.empty());
  EXPECT_TRUE(still_fails(minimized));
  // Greedy chunk removal must strip all the irrelevant padding.
  EXPECT_LE(minimized.size(), 2u);
}

TEST(FuzzMinimize, NeverReturnsAPassingInput) {
  ByteVec input = {1, 2, 3, 4};
  std::size_t calls = 0;
  const auto still_fails = [&calls](bsutil::ByteSpan candidate) {
    ++calls;
    return candidate.size() >= 3;  // fails while at least 3 bytes remain
  };
  const ByteVec minimized = bsfuzz::Minimize(input, still_fails);
  EXPECT_GE(minimized.size(), 3u);
  EXPECT_GT(calls, 0u);
}

// --- repro files ----------------------------------------------------------

TEST(FuzzEngine, ReproFileRoundTrip) {
  const std::string dir = TempDir("bsfuzz-repro-test");
  bsfuzz::FuzzFailure failure;
  failure.harness = "codec";
  failure.seed = 12345;
  failure.iter = 67;
  failure.oracle = "roundtrip-idempotence";
  failure.detail = "unit-test artifact";
  failure.trace = {"bitflip@3", "lenlie@16=0x80000000"};
  for (int i = 0; i < 300; ++i) {
    failure.input.push_back(static_cast<std::uint8_t>(i * 7));
  }

  const std::string path = bsfuzz::WriteReproFile(dir, failure);
  ASSERT_FALSE(path.empty());

  ByteVec reread;
  ASSERT_TRUE(bsfuzz::ReadReproFile(path, reread));
  EXPECT_EQ(reread, failure.input);
}

TEST(FuzzEngine, ReadReproFileRejectsMissing) {
  ByteVec out;
  EXPECT_FALSE(bsfuzz::ReadReproFile("/nonexistent/file.repro", out));
}

// --- engine ---------------------------------------------------------------

TEST(FuzzEngine, CampaignIsDeterministic) {
  bsfuzz::CampaignConfig config;
  config.harness = "codec";
  config.seed = 5;
  config.iters = 100;
  const bsfuzz::CampaignResult a = bsfuzz::RunCampaign(config);
  const bsfuzz::CampaignResult b = bsfuzz::RunCampaign(config);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(FuzzEngine, SmokeCampaignsAreClean) {
  // The in-tests smoke gate: every harness must survive a short seeded
  // campaign with zero oracle violations. Deeper runs live in check.sh.
  for (const std::string& harness : bsfuzz::AllHarnesses()) {
    for (std::uint64_t seed : {1ull, 2ull}) {
      bsfuzz::CampaignConfig config;
      config.harness = harness;
      config.seed = seed;
      config.iters = 150;
      const bsfuzz::CampaignResult r = bsfuzz::RunCampaign(config);
      EXPECT_EQ(r.iterations, 150u);
      for (const auto& f : r.failures) {
        ADD_FAILURE() << harness << " seed " << seed << " iter " << f.iter
                      << ": " << f.oracle << " — " << f.detail;
      }
    }
  }
}

TEST(FuzzEngine, CommittedCorpusReplaysClean) {
#ifdef BS_FUZZ_CORPUS_DIR
  std::size_t total = 0;
  for (const std::string& harness : bsfuzz::AllHarnesses()) {
    bsfuzz::CampaignConfig config;
    config.harness = harness;
    config.seed = 1;
    config.iters = 0;  // corpus replay only
    config.corpus_dir = BS_FUZZ_CORPUS_DIR;
    const bsfuzz::CampaignResult r = bsfuzz::RunCampaign(config);
    total += r.corpus_inputs;
    for (const auto& f : r.failures) {
      ADD_FAILURE() << harness << " corpus " << f.source << ": " << f.oracle
                    << " — " << f.detail;
    }
  }
  // The committed corpus must actually exist; an empty replay would make
  // this test vacuous.
  EXPECT_GT(total, 0u);
#else
  GTEST_SKIP() << "BS_FUZZ_CORPUS_DIR not defined";
#endif
}

TEST(FuzzEngine, ReseedCorpusWritesReplayableInputs) {
  const std::string dir = TempDir("bsfuzz-reseed-test");
  for (const std::string& harness : bsfuzz::AllHarnesses()) {
    // The codec corpus always gets one extra pinned divergent tip-probe
    // entry on top of the requested count.
    const std::size_t expect = harness == "codec" ? 5u : 4u;
    const std::size_t n = bsfuzz::ReseedCorpus(harness, dir, 1, 4);
    EXPECT_EQ(n, expect) << harness;
    bsfuzz::CampaignConfig config;
    config.harness = harness;
    config.seed = 1;
    config.iters = 0;
    config.corpus_dir = dir;
    const bsfuzz::CampaignResult r = bsfuzz::RunCampaign(config);
    EXPECT_EQ(r.corpus_inputs, expect) << harness;
    EXPECT_TRUE(r.failures.empty()) << harness;
  }
}

// --- differential oracle --------------------------------------------------

TEST(FuzzDifferential, PredictionIsTheTableIMatrix) {
  const auto& cells = bsfuzz::PredictedDivergenceCells();
  ASSERT_EQ(cells.size(), 8u);
  EXPECT_TRUE(std::is_sorted(cells.begin(), cells.end()));
  // Spot-check the two rules dropped after 0.20 and the two dropped in 0.22.
  EXPECT_NE(std::find(cells.begin(), cells.end(),
                      "filteradd-version-gate@0.20/0.22"),
            cells.end());
  EXPECT_NE(std::find(cells.begin(), cells.end(),
                      "version-duplicate@0.21/0.22"),
            cells.end());
}

TEST(FuzzDifferential, ObservedDivergenceEqualsTableI) {
  const bsfuzz::DiffResult r = bsfuzz::RunDifferential(/*seed=*/1,
                                                       /*iters=*/120);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.observed, r.predicted);
  for (const std::string& cell : r.unpredicted) {
    ADD_FAILURE() << "unpredicted divergence: " << cell;
  }
  for (const std::string& cell : r.missing) {
    ADD_FAILURE() << "missing divergence: " << cell;
  }
  EXPECT_GT(r.events, 100u);
}

TEST(FuzzDifferential, DeterministicAcrossRuns) {
  const bsfuzz::DiffResult a = bsfuzz::RunDifferential(9, 40);
  const bsfuzz::DiffResult b = bsfuzz::RunDifferential(9, 40);
  EXPECT_EQ(a.observed, b.observed);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
