// Unit tests for bsutil: hex, serialization, RNG, statistics.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/hex.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/stats.hpp"

namespace {

using bsutil::ByteVec;
using bsutil::Reader;
using bsutil::Writer;

// ---------------------------------------------------------------------------
// Hex

TEST(Hex, EncodesKnownBytes) {
  const ByteVec data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(bsutil::HexEncode(data), "0001abff");
}

TEST(Hex, EncodesEmpty) { EXPECT_EQ(bsutil::HexEncode(ByteVec{}), ""); }

TEST(Hex, DecodesLowerAndUpperCase) {
  const auto lower = bsutil::HexDecode("deadbeef");
  const auto upper = bsutil::HexDecode("DEADBEEF");
  ASSERT_TRUE(lower.has_value());
  ASSERT_TRUE(upper.has_value());
  EXPECT_EQ(*lower, *upper);
  EXPECT_EQ((*lower)[0], 0xde);
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(bsutil::HexDecode("abc").has_value()); }

TEST(Hex, RejectsNonHexCharacters) {
  EXPECT_FALSE(bsutil::HexDecode("zz").has_value());
  EXPECT_FALSE(bsutil::HexDecode("0g").has_value());
}

TEST(Hex, RoundTripsRandomData) {
  bsutil::Rng rng(7);
  ByteVec data(257);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  const auto decoded = bsutil::HexDecode(bsutil::HexEncode(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

// ---------------------------------------------------------------------------
// Serialization

TEST(Serialize, LittleEndianIntegers) {
  Writer w;
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0102030405060708ULL);
  const ByteVec& bytes = w.Data();
  EXPECT_EQ(bytes[0], 0x34);
  EXPECT_EQ(bytes[1], 0x12);
  EXPECT_EQ(bytes[2], 0xef);
  EXPECT_EQ(bytes[5], 0xde);

  Reader r(bytes);
  EXPECT_EQ(r.ReadU16(), 0x1234);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 0x0102030405060708ULL);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serialize, SignedRoundTrip) {
  Writer w;
  w.WriteI32(-42);
  w.WriteI64(-1234567890123LL);
  Reader r(w.Data());
  EXPECT_EQ(r.ReadI32(), -42);
  EXPECT_EQ(r.ReadI64(), -1234567890123LL);
}

TEST(Serialize, TruncatedReadThrows) {
  Writer w;
  w.WriteU16(7);
  Reader r(w.Data());
  EXPECT_THROW(r.ReadU32(), bsutil::DeserializeError);
}

struct CompactSizeCase {
  std::uint64_t value;
  std::size_t encoded_size;
};

class CompactSizeTest : public ::testing::TestWithParam<CompactSizeCase> {};

TEST_P(CompactSizeTest, RoundTripsWithExpectedWidth) {
  const auto [value, encoded_size] = GetParam();
  Writer w;
  w.WriteCompactSize(value);
  EXPECT_EQ(w.Size(), encoded_size);
  Reader r(w.Data());
  EXPECT_EQ(r.ReadCompactSize(), value);
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    Widths, CompactSizeTest,
    ::testing::Values(CompactSizeCase{0, 1}, CompactSizeCase{1, 1},
                      CompactSizeCase{0xfc, 1}, CompactSizeCase{0xfd, 3},
                      CompactSizeCase{0xffff, 3}, CompactSizeCase{0x10000, 5},
                      CompactSizeCase{0xffffffff, 5}, CompactSizeCase{0x100000000ULL, 9},
                      CompactSizeCase{0xffffffffffffffffULL, 9}));

TEST(Serialize, NonCanonicalCompactSizeRejected) {
  // 0xfd prefix encoding a value < 0xfd must be rejected.
  const ByteVec bad = {0xfd, 0x10, 0x00};
  Reader r(bad);
  EXPECT_THROW(r.ReadCompactSize(), bsutil::DeserializeError);

  const ByteVec bad32 = {0xfe, 0xff, 0xff, 0x00, 0x00};  // fits in 16 bits
  Reader r32(bad32);
  EXPECT_THROW(r32.ReadCompactSize(), bsutil::DeserializeError);

  const ByteVec bad64 = {0xff, 0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00};
  Reader r64(bad64);
  EXPECT_THROW(r64.ReadCompactSize(), bsutil::DeserializeError);
}

TEST(Serialize, VarBytesRoundTrip) {
  Writer w;
  const ByteVec payload = {1, 2, 3, 4, 5};
  w.WriteVarBytes(payload);
  Reader r(w.Data());
  EXPECT_EQ(r.ReadVarBytes(), payload);
}

TEST(Serialize, VarBytesLengthLimitEnforced) {
  Writer w;
  w.WriteVarBytes(ByteVec(100, 0xaa));
  Reader r(w.Data());
  EXPECT_THROW(r.ReadVarBytes(/*max_len=*/50), bsutil::DeserializeError);
}

TEST(Serialize, VarStringRoundTrip) {
  Writer w;
  w.WriteVarString("/banscore:1.0/");
  Reader r(w.Data());
  EXPECT_EQ(r.ReadVarString(), "/banscore:1.0/");
}

TEST(Serialize, BoolRoundTrip) {
  Writer w;
  w.WriteBool(true);
  w.WriteBool(false);
  Reader r(w.Data());
  EXPECT_TRUE(r.ReadBool());
  EXPECT_FALSE(r.ReadBool());
}

// ---------------------------------------------------------------------------
// RNG

TEST(Rng, DeterministicFromSeed) {
  bsutil::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  bsutil::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(Rng, RangeIsInclusive) {
  bsutil::Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  bsutil::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  bsutil::Rng rng(11);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, NormalHasRequestedMoments) {
  bsutil::Rng rng(13);
  bsutil::Accumulator acc;
  for (int i = 0; i < 50'000; ++i) acc.Add(rng.Normal(10.0, 3.0));
  EXPECT_NEAR(acc.Mean(), 10.0, 0.1);
  EXPECT_NEAR(acc.StdDev(), 3.0, 0.1);
}

// ---------------------------------------------------------------------------
// Statistics

TEST(Stats, SummaryOfKnownSample) {
  const auto s = bsutil::Summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
  EXPECT_GT(s.ci95_half_width, 0.0);
}

TEST(Stats, SummaryOfEmptySample) {
  const auto s = bsutil::Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, PearsonPerfectPositive) {
  EXPECT_NEAR(bsutil::PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative) {
  EXPECT_NEAR(bsutil::PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVarianceIsZero) {
  EXPECT_EQ(bsutil::PearsonCorrelation({1, 1, 1}, {2, 4, 6}), 0.0);
}

TEST(Stats, PearsonMismatchedLengthsIsZero) {
  EXPECT_EQ(bsutil::PearsonCorrelation({1, 2}, {1, 2, 3}), 0.0);
}

TEST(Stats, NormalizeDistributionSumsToOne) {
  const auto d = bsutil::NormalizeDistribution({1, 3, 6});
  EXPECT_NEAR(d[0] + d[1] + d[2], 1.0, 1e-12);
  EXPECT_NEAR(d[2], 0.6, 1e-12);
}

TEST(Stats, NormalizeAllZeroStaysZero) {
  const auto d = bsutil::NormalizeDistribution({0, 0});
  EXPECT_EQ(d[0], 0.0);
  EXPECT_EQ(d[1], 0.0);
}

TEST(Stats, AccumulatorMatchesBatchSummary) {
  bsutil::Rng rng(3);
  std::vector<double> xs;
  bsutil::Accumulator acc;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble() * 10;
    xs.push_back(v);
    acc.Add(v);
  }
  const auto s = bsutil::Summarize(xs);
  EXPECT_NEAR(acc.Mean(), s.mean, 1e-9);
  EXPECT_NEAR(acc.StdDev(), s.stddev, 1e-9);
  EXPECT_EQ(acc.Min(), s.min);
  EXPECT_EQ(acc.Max(), s.max);
}

TEST(Stats, AlignedDistributionsHandleDisjointKeys) {
  const std::map<std::string, double> a = {{"tx", 9.0}, {"ping", 1.0}};
  const std::map<std::string, double> b = {{"tx", 1.0}, {"version", 1.0}};
  const auto [va, vb] = bsutil::AlignedDistributions(a, b);
  ASSERT_EQ(va.size(), 3u);  // keys: ping, tx, version
  ASSERT_EQ(vb.size(), 3u);
  EXPECT_NEAR(va[0] + va[1] + va[2], 1.0, 1e-12);
  EXPECT_NEAR(vb[0] + vb[1] + vb[2], 1.0, 1e-12);
}

TEST(Stats, AlignedIdenticalDistributionsCorrelateToOne) {
  const std::map<std::string, double> a = {{"tx", 10.0}, {"inv", 5.0}, {"ping", 1.0}};
  const auto [va, vb] = bsutil::AlignedDistributions(a, a);
  EXPECT_NEAR(bsutil::PearsonCorrelation(va, vb), 1.0, 1e-12);
}


// ---------------------------------------------------------------------------
// JSON reader (tooling: bench-diff, forensic CLI)

TEST(Json, ParsesScalarsAndStructure) {
  const auto doc = bsutil::ParseJson(
      R"({"name":"x","n":42,"neg":-1.5e2,"yes":true,"no":false,"nil":null,)"
      R"("arr":[1,2,3],"obj":{"inner":7}})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->IsObject());
  EXPECT_EQ(doc->Find("name")->str, "x");
  EXPECT_DOUBLE_EQ(doc->Find("n")->number, 42.0);
  EXPECT_DOUBLE_EQ(doc->Find("neg")->number, -150.0);
  EXPECT_TRUE(doc->Find("yes")->boolean);
  EXPECT_FALSE(doc->Find("no")->boolean);
  EXPECT_EQ(doc->Find("nil")->kind, bsutil::JsonValue::Kind::kNull);
  ASSERT_TRUE(doc->Find("arr")->IsArray());
  EXPECT_EQ(doc->Find("arr")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(doc->Find("obj")->Find("inner")->number, 7.0);
  EXPECT_EQ(doc->Find("absent"), nullptr);
}

TEST(Json, ParsesStringEscapes) {
  const auto doc = bsutil::ParseJson(R"({"s":"a\"b\\c\n\u0041"})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Find("s")->str, "a\"b\\c\nA");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(bsutil::ParseJson("").has_value());
  EXPECT_FALSE(bsutil::ParseJson("{").has_value());
  EXPECT_FALSE(bsutil::ParseJson("{\"a\":}").has_value());
  EXPECT_FALSE(bsutil::ParseJson("[1,2,]").has_value());
  EXPECT_FALSE(bsutil::ParseJson("{} trailing").has_value());
  EXPECT_FALSE(bsutil::ParseJson("nul").has_value());
}

TEST(Json, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_FALSE(bsutil::ParseJson(deep).has_value());
}

TEST(Json, FlattenNumbersUsesDottedPaths) {
  const auto doc = bsutil::ParseJson(
      R"({"a":1,"b":{"c":2,"d":[3,4]},"skip":"str","flag":true})");
  ASSERT_TRUE(doc.has_value());
  std::vector<std::pair<std::string, double>> flat;
  bsutil::FlattenJsonNumbers(*doc, "", flat);
  const std::map<std::string, double> m(flat.begin(), flat.end());
  EXPECT_DOUBLE_EQ(m.at("a"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("b.c"), 2.0);
  EXPECT_DOUBLE_EQ(m.at("b.d.0"), 3.0);
  EXPECT_DOUBLE_EQ(m.at("b.d.1"), 4.0);
  EXPECT_DOUBLE_EQ(m.at("flag"), 1.0);  // booleans flatten as 0/1
  EXPECT_EQ(m.count("skip"), 0u);       // strings are not numbers
}

}  // namespace\n