// Causal span tracing: id allocation, the bounded SpanLog ring, the
// stream-offset claim algorithm (exact / lost / resync / orphan), and the
// end-to-end cross-node lineage guarantees — including under network fault
// plans and with tracing disabled.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "attack/attacker.hpp"
#include "attack/crafter.hpp"
#include "attack/defamation.hpp"
#include "core/node.hpp"
#include "obs/span.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace {

using bsnet::Node;
using bsnet::NodeConfig;
using bsobs::SpanKind;
using bsobs::SpanRecord;
using bsobs::SpanStreamKey;
using bsobs::SpanTracer;
using bsobs::TraceContext;

TEST(SpanTracerTest, BeginAllocatesDistinctIds) {
  SpanTracer tracer;
  const TraceContext a = tracer.Begin();
  const TraceContext b = tracer.Begin();
  EXPECT_TRUE(a.Valid());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_NE(a.span_id, b.span_id);
}

TEST(SpanTracerTest, ChildKeepsTraceIdAllocatesNewSpanId) {
  SpanTracer tracer;
  const TraceContext root = tracer.Begin();
  const TraceContext child = tracer.Child(root);
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_NE(child.span_id, root.span_id);
}

TEST(SpanLogTest, RingWrapsAndCountsDrops) {
  bsobs::SpanLog log(4);
  for (int i = 0; i < 10; ++i) {
    SpanRecord rec;
    rec.span_id = static_cast<std::uint64_t>(i + 1);
    log.Record(rec);
  }
  EXPECT_EQ(log.Size(), 4u);
  EXPECT_EQ(log.Recorded(), 10u);
  EXPECT_EQ(log.Dropped(), 6u);
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest first: records 7, 8, 9, 10 survive.
  EXPECT_EQ(snap.front().span_id, 7u);
  EXPECT_EQ(snap.back().span_id, 10u);
}

TEST(SpanLogTest, ClearResets) {
  bsobs::SpanLog log(4);
  log.Record(SpanRecord{});
  log.Clear();
  EXPECT_EQ(log.Size(), 0u);
  EXPECT_EQ(log.Recorded(), 0u);
  EXPECT_TRUE(log.Snapshot().empty());
}

// The ctest name carries "SpanLog" so the check.sh TSan stage picks it up.
TEST(SpanLogTest, ThreadedRecordIsSafe) {
  bsobs::SpanLog log(256);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        SpanRecord rec;
        rec.node_ip = static_cast<std::uint32_t>(t);
        log.Record(rec);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(log.Recorded(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(log.Size(), 256u);
}

TEST(SpanTracerTest, ThreadedClaimIsSafe) {
  SpanTracer tracer;
  constexpr int kThreads = 4;
  constexpr int kFrames = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t]() {
      const SpanStreamKey key{static_cast<std::uint64_t>(t + 1), 99};
      std::uint64_t offset = 0;
      for (int i = 0; i < kFrames; ++i) {
        const TraceContext ctx = tracer.Begin();
        tracer.NoteFrameSent(key, offset, 100, ctx);
        const bsobs::SpanClaim claim = tracer.ClaimFrame(key, offset, 100);
        EXPECT_TRUE(claim.ctx.Valid());
        offset += 100;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.PendingFrames(), 0u);
}

TEST(SpanClaimTest, ExactOffsetMatch) {
  SpanTracer tracer;
  const SpanStreamKey key{1, 2};
  const TraceContext c1 = tracer.Begin();
  const TraceContext c2 = tracer.Begin();
  tracer.NoteFrameSent(key, 0, 100, c1);
  tracer.NoteFrameSent(key, 100, 50, c2);

  const auto claim1 = tracer.ClaimFrame(key, 0, 100);
  EXPECT_EQ(claim1.ctx.span_id, c1.span_id);
  EXPECT_FALSE(claim1.resync);
  EXPECT_EQ(claim1.lost, 0u);
  const auto claim2 = tracer.ClaimFrame(key, 100, 50);
  EXPECT_EQ(claim2.ctx.span_id, c2.span_id);
  EXPECT_EQ(tracer.PendingFrames(), 0u);
}

TEST(SpanClaimTest, SkippedEntriesCountAsLost) {
  SpanTracer tracer;
  const SpanStreamKey key{1, 2};
  tracer.NoteFrameSent(key, 0, 100, tracer.Begin());
  const TraceContext kept = tracer.Begin();
  tracer.NoteFrameSent(key, 100, 50, kept);
  // The receiver's decoder next reaches offset 100: the [0,100) entry can
  // never match again.
  const auto claim = tracer.ClaimFrame(key, 100, 50);
  EXPECT_EQ(claim.ctx.span_id, kept.span_id);
  EXPECT_EQ(claim.lost, 1u);
  EXPECT_EQ(tracer.PendingDropped(), 1u);
}

TEST(SpanClaimTest, ForeignFrameMatchesByLengthAsResync) {
  SpanTracer tracer;
  const SpanStreamKey key{1, 2};
  const TraceContext injected = tracer.Begin();
  tracer.NoteForeignFrame(key, 94, injected);
  // The victim's decoder is at some offset the injector never knew.
  const auto claim = tracer.ClaimFrame(key, 7777, 94);
  EXPECT_EQ(claim.ctx.span_id, injected.span_id);
  EXPECT_TRUE(claim.resync);
}

TEST(SpanClaimTest, OffsetSkewMatchesByLengthAsResync) {
  SpanTracer tracer;
  const SpanStreamKey key{1, 2};
  const TraceContext ctx = tracer.Begin();
  // Sender registered [100,180); the receive stream is skewed forward by an
  // injected frame, so the decoder claims at 150.
  tracer.NoteFrameSent(key, 100, 80, ctx);
  const auto claim = tracer.ClaimFrame(key, 150, 80);
  EXPECT_EQ(claim.ctx.span_id, ctx.span_id);
  EXPECT_TRUE(claim.resync);
}

TEST(SpanClaimTest, UnmatchedClaimIsOrphan) {
  SpanTracer tracer;
  const SpanStreamKey key{1, 2};
  // Nothing registered at all.
  EXPECT_FALSE(tracer.ClaimFrame(key, 0, 100).ctx.Valid());
  // A future frame is registered but neither offset nor length match: the
  // entry must survive for its real claim later.
  const TraceContext ctx = tracer.Begin();
  tracer.NoteFrameSent(key, 500, 80, ctx);
  EXPECT_FALSE(tracer.ClaimFrame(key, 0, 33).ctx.Valid());
  EXPECT_EQ(tracer.PendingFrames(), 1u);
  EXPECT_TRUE(tracer.ClaimFrame(key, 500, 80).ctx.Valid());
}

TEST(SpanClaimTest, PendingCapDropsOldest) {
  SpanTracer tracer;
  const SpanStreamKey key{1, 2};
  for (std::uint64_t i = 0; i < 5000; ++i) {
    tracer.NoteFrameSent(key, i * 10, 10, tracer.Begin());
  }
  EXPECT_EQ(tracer.PendingFrames(), 4096u);
  EXPECT_EQ(tracer.PendingDropped(), 5000u - 4096u);
}

// ---------------------------------------------------------------------------
// End-to-end lineage through the simulated network.

/// Walk parent links from `leaf` through `by_span`; returns the chain
/// leaf-first.
std::vector<const SpanRecord*> WalkChain(
    const SpanRecord* leaf, const std::map<std::uint64_t, const SpanRecord*>& by_span) {
  std::vector<const SpanRecord*> chain;
  for (const SpanRecord* rec = leaf; rec != nullptr;) {
    chain.push_back(rec);
    if (rec->parent_span == 0) break;
    const auto it = by_span.find(rec->parent_span);
    rec = it == by_span.end() ? nullptr : it->second;
  }
  return chain;
}

std::map<std::uint64_t, const SpanRecord*> IndexBySpan(
    const std::vector<SpanRecord>& spans) {
  std::map<std::uint64_t, const SpanRecord*> by_span;
  for (const SpanRecord& rec : spans) by_span[rec.span_id] = &rec;
  return by_span;
}

TEST(SpanLineageTest, BlockRelayChainCrossesNodes) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  SpanTracer tracer;

  NodeConfig ac;
  ac.span_tracer = &tracer;
  ac.target_outbound = 1;
  Node a(sched, net, 0x0a000001, ac);
  NodeConfig bc;
  bc.span_tracer = &tracer;
  bc.target_outbound = 0;
  Node b(sched, net, 0x0a000002, bc);
  b.Start();
  a.AddKnownAddress({b.Ip(), 8333});
  a.Start();
  sched.RunUntil(5 * bsim::kSecond);

  // a mines: INV -> b GETDATA -> a BLOCK -> b. The last BLOCK receive on b
  // must chain back, across both nodes, to a's root INV send.
  ASSERT_TRUE(a.MineAndRelay().has_value());
  sched.RunUntil(sched.Now() + 2 * bsim::kSecond);

  const auto spans = tracer.Log().Snapshot();
  const auto by_span = IndexBySpan(spans);
  const SpanRecord* block_recv = nullptr;
  for (const SpanRecord& rec : spans) {
    if (rec.kind == SpanKind::kReceive && rec.node_ip == b.Ip() &&
        rec.msg_type == static_cast<std::int16_t>(bsproto::MsgType::kBlock)) {
      block_recv = &rec;
    }
  }
  ASSERT_NE(block_recv, nullptr) << "no BLOCK receive span on node b";

  const auto chain = WalkChain(block_recv, by_span);
  ASSERT_GE(chain.size(), 5u);  // recv BLOCK <- send BLOCK <- recv GETDATA
                                // <- send GETDATA <- recv INV <- send INV
  const SpanRecord* root = chain.back();
  EXPECT_EQ(root->parent_span, 0u);
  EXPECT_EQ(root->kind, SpanKind::kSend);
  EXPECT_EQ(root->node_ip, a.Ip());
  std::set<std::uint32_t> nodes;
  for (const SpanRecord* rec : chain) nodes.insert(rec->node_ip);
  EXPECT_EQ(nodes.size(), 2u);
  // Every span in the chain belongs to one trace.
  for (const SpanRecord* rec : chain) {
    EXPECT_EQ(rec->trace_id, root->trace_id);
  }
}

TEST(SpanLineageTest, MisbehaviorAndBanChainToAttackerSend) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  SpanTracer tracer;

  NodeConfig tc;
  tc.span_tracer = &tracer;
  Node target(sched, net, 0x0a000001, tc);
  target.Start();
  bsattack::AttackerNode attacker(sched, net, 0x0a000066, tc.chain.magic);
  attacker.SetSpanTracer(&tracer);

  auto* session = attacker.OpenSession({target.Ip(), 8333}, /*auto_handshake=*/false);
  sched.RunUntil(bsim::kSecond);
  for (int i = 0; i < 120 && !session->closed; ++i) {
    attacker.Send(*session, bsproto::VersionMsg{});
    sched.RunUntil(sched.Now() + bsim::kMillisecond);
  }
  ASSERT_GE(target.PeersBanned(), 1u);

  const auto spans = tracer.Log().Snapshot();
  const auto by_span = IndexBySpan(spans);
  const SpanRecord* ban = nullptr;
  for (const SpanRecord& rec : spans) {
    if (rec.kind == SpanKind::kBan) ban = &rec;
  }
  ASSERT_NE(ban, nullptr);
  const auto chain = WalkChain(ban, by_span);
  // ban <- misbehavior <- recv VERSION <- attacker send VERSION (root).
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[1]->kind, SpanKind::kMisbehavior);
  EXPECT_EQ(chain[2]->kind, SpanKind::kReceive);
  EXPECT_EQ(chain[3]->kind, SpanKind::kSend);
  EXPECT_EQ(chain[3]->node_ip, attacker.Ip());
  EXPECT_EQ(chain[3]->parent_span, 0u);
}

TEST(SpanLineageTest, PostConnectionDefamationChainReachesInjector) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  SpanTracer tracer;

  NodeConfig tc;
  tc.span_tracer = &tracer;
  tc.target_outbound = 1;
  Node target(sched, net, 0x0a000001, tc);
  NodeConfig ic;
  ic.span_tracer = &tracer;
  ic.target_outbound = 0;
  Node innocent(sched, net, 0x0a000002, ic);
  innocent.Start();
  target.AddKnownAddress({innocent.Ip(), 8333});
  target.Start();
  sched.RunUntil(5 * bsim::kSecond);

  bsattack::AttackerNode attacker(sched, net, 0x0a000066, tc.chain.magic);
  attacker.SetSpanTracer(&tracer);
  bsattack::Crafter crafter(tc.chain);
  const bsnet::Peer* outbound = nullptr;
  for (const bsnet::Peer* p : target.Peers()) {
    if (!p->inbound) outbound = p;
  }
  ASSERT_NE(outbound, nullptr);
  bsattack::PostConnectionDefamation post(attacker, outbound->conn->Local(),
                                          outbound->remote);
  post.SetSpanTracer(&tracer);
  post.Arm({bsproto::EncodeMessage(tc.chain.magic, crafter.SegwitInvalidTx())});
  innocent.SendToRemoteIp(target.Ip(), bsproto::PingMsg{1});
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
  ASSERT_TRUE(post.Injected());
  ASSERT_GE(target.PeersBanned(), 1u);

  const auto spans = tracer.Log().Snapshot();
  const auto by_span = IndexBySpan(spans);
  const SpanRecord* ban = nullptr;
  for (const SpanRecord& rec : spans) {
    if (rec.kind == SpanKind::kBan) ban = &rec;
  }
  ASSERT_NE(ban, nullptr);
  // The banned identity is the innocent peer...
  EXPECT_EQ(static_cast<std::uint32_t>(ban->a), innocent.Ip());
  // ...but the causal root is the attacker's inject span, resync-claimed.
  const auto chain = WalkChain(ban, by_span);
  const SpanRecord* root = chain.back();
  EXPECT_EQ(root->kind, SpanKind::kInject);
  EXPECT_EQ(root->node_ip, attacker.Ip());
  bool saw_resync = false;
  for (const SpanRecord* rec : chain) {
    if ((rec->flags & bsobs::kFlagResync) != 0) saw_resync = true;
  }
  EXPECT_TRUE(saw_resync);
}

TEST(SpanFaultTest, LineageSurvivesLossDupReorder) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  bsim::FaultPlan plan(sched, /*seed=*/1234);
  net.SetFaultPlan(&plan);
  bsim::FaultSpec spec;
  spec.loss = 0.10;
  spec.duplicate = 0.08;
  spec.reorder = 0.15;
  plan.SetDefaultFaults(spec);

  SpanTracer tracer;
  NodeConfig ac;
  ac.span_tracer = &tracer;
  ac.target_outbound = 1;
  ac.ping_interval = 200 * bsim::kMillisecond;
  Node a(sched, net, 0x0a000001, ac);
  NodeConfig bc;
  bc.span_tracer = &tracer;
  bc.target_outbound = 0;
  bc.ping_interval = 200 * bsim::kMillisecond;
  Node b(sched, net, 0x0a000002, bc);
  b.Start();
  a.AddKnownAddress({b.Ip(), 8333});
  a.Start();
  sched.RunUntil(30 * bsim::kSecond);

  // Reliable TCP rebuilds the exact byte stream, so every decoded frame must
  // claim its send span: no orphans, no resyncs, despite the weather.
  const auto spans = tracer.Log().Snapshot();
  std::size_t receives = 0;
  for (const SpanRecord& rec : spans) {
    if (rec.kind != SpanKind::kReceive) continue;
    ++receives;
    EXPECT_EQ(rec.flags & bsobs::kFlagOrphan, 0) << "orphan receive span";
    EXPECT_EQ(rec.flags & bsobs::kFlagResync, 0) << "resync receive span";
    EXPECT_NE(rec.parent_span, 0u);
  }
  EXPECT_GT(receives, 50u);
}

TEST(SpanDisabledTest, NodesWorkWithoutTracerAndRegisterNothing) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  // No tracer anywhere: the default-off configuration.
  NodeConfig ac;
  ac.target_outbound = 1;
  ac.ping_interval = 500 * bsim::kMillisecond;
  Node a(sched, net, 0x0a000001, ac);
  NodeConfig bc;
  bc.target_outbound = 0;
  Node b(sched, net, 0x0a000002, bc);
  b.Start();
  a.AddKnownAddress({b.Ip(), 8333});
  a.Start();
  sched.RunUntil(10 * bsim::kSecond);
  ASSERT_TRUE(a.MineAndRelay().has_value());
  sched.RunUntil(sched.Now() + 2 * bsim::kSecond);
  EXPECT_GT(a.TotalMessagesReceived(), 0u);
  EXPECT_GT(b.TotalMessagesReceived(), 0u);

  // Stream offsets advance regardless (they are plain integers), but the
  // sim-visible behavior is identical and nothing references a tracer.
  for (const bsnet::Peer* p : a.Peers()) {
    EXPECT_GT(p->tx_stream_offset, 0u);
  }
}

TEST(SpanDisabledTest, TracingDoesNotChangeSimulationOutcome) {
  // The same seeded world with and without a tracer must produce identical
  // message/event counts — the bit-identical guarantee the benches rely on.
  const auto run = [](SpanTracer* tracer) {
    bsim::Scheduler sched;
    bsim::Network net(sched);
    NodeConfig ac;
    ac.span_tracer = tracer;
    ac.target_outbound = 1;
    ac.ping_interval = 250 * bsim::kMillisecond;
    Node a(sched, net, 0x0a000001, ac);
    NodeConfig bc;
    bc.span_tracer = tracer;
    bc.target_outbound = 0;
    Node b(sched, net, 0x0a000002, bc);
    b.Start();
    a.AddKnownAddress({b.Ip(), 8333});
    a.Start();
    sched.RunUntil(5 * bsim::kSecond);
    a.MineAndRelay();
    sched.RunUntil(10 * bsim::kSecond);
    return std::make_pair(sched.ExecutedEvents(),
                          a.TotalMessagesReceived() + b.TotalMessagesReceived());
  };
  SpanTracer tracer;
  EXPECT_EQ(run(nullptr), run(&tracer));
}

}  // namespace
