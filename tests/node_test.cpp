// Live-node tests: the full receive pipeline on the simulator — handshake
// rules, every Table I rule triggered by crafted wire messages, the checksum
// gate, banning and reconnection-refusal, and outbound maintenance.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "attack/attacker.hpp"
#include "attack/crafter.hpp"
#include "core/node.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace bsnet;  // NOLINT
using bsattack::AttackerNode;
using bsattack::AttackSession;
using bsattack::Crafter;

constexpr std::uint32_t kTargetIp = 0x0a000001;
constexpr std::uint32_t kAttackerIp = 0x0a000002;

struct NodeFixture : ::testing::Test {
  NodeFixture() : NodeFixture(NodeConfig{}) {}
  explicit NodeFixture(NodeConfig config)
      : net(sched),
        node(sched, net, kTargetIp, config),
        attacker(sched, net, kAttackerIp, config.chain.magic),
        crafter(config.chain) {
    node.Start();
  }

  /// Open a handshake-complete session from the attacker to the node.
  AttackSession* ReadySession() {
    AttackSession* session = attacker.OpenSession({kTargetIp, 8333});
    sched.RunUntil(sched.Now() + bsim::kSecond);
    EXPECT_TRUE(session->SessionReady());
    return session;
  }

  /// The node's view of the attacker session.
  Peer* NodePeer(AttackSession* session) {
    return node.FindPeerByRemote(session->local);
  }

  int ScoreOf(AttackSession* session) {
    Peer* peer = NodePeer(session);
    return peer == nullptr ? -1 : node.Tracker().Score(peer->id);
  }

  void Settle() { sched.RunUntil(sched.Now() + bsim::kSecond); }

  bsim::Scheduler sched;
  bsim::Network net;
  Node node;
  AttackerNode attacker;
  Crafter crafter;
};

// ---------------------------------------------------------------------------
// Handshake

TEST_F(NodeFixture, InboundHandshakeCompletes) {
  AttackSession* session = ReadySession();
  Peer* peer = NodePeer(session);
  ASSERT_NE(peer, nullptr);
  EXPECT_TRUE(peer->HandshakeComplete());
  EXPECT_TRUE(peer->inbound);
  EXPECT_EQ(node.InboundCount(), 1u);
}

TEST_F(NodeFixture, DuplicateVersionScoresOneEach) {
  AttackSession* session = ReadySession();
  attacker.Send(*session, bsproto::VersionMsg{});
  attacker.Send(*session, bsproto::VersionMsg{});
  Settle();
  EXPECT_EQ(ScoreOf(session), 2);
}

TEST_F(NodeFixture, MessageBeforeVersionScoresOne) {
  AttackSession* session = attacker.OpenSession({kTargetIp, 8333},
                                                /*auto_handshake=*/false);
  Settle();
  attacker.Send(*session, bsproto::PingMsg{1});
  Settle();
  EXPECT_EQ(ScoreOf(session), 1);
}

TEST_F(NodeFixture, MessageBeforeVerackScoresOneInV20) {
  AttackSession* session = attacker.OpenSession({kTargetIp, 8333},
                                                /*auto_handshake=*/false);
  Settle();
  attacker.Send(*session, bsproto::VersionMsg{});  // no verack afterwards
  Settle();
  attacker.Send(*session, bsproto::PingMsg{1});
  Settle();
  EXPECT_EQ(ScoreOf(session), 1);
}

TEST_F(NodeFixture, PingPongAfterHandshake) {
  AttackSession* session = ReadySession();
  attacker.Send(*session, bsproto::PingMsg{42});
  Settle();
  // The node replied PONG; no misbehavior for PING.
  EXPECT_EQ(ScoreOf(session), 0);
  EXPECT_GE(node.MessageCounts().at(bsproto::MsgType::kPing), 1u);
}

// ---------------------------------------------------------------------------
// Table I rules triggered live

TEST_F(NodeFixture, OversizeAddrScoresTwenty) {
  AttackSession* session = ReadySession();
  attacker.Send(*session, crafter.OversizeAddr());
  Settle();
  EXPECT_EQ(ScoreOf(session), 20);
}

TEST_F(NodeFixture, OversizeInvScoresTwenty) {
  AttackSession* session = ReadySession();
  attacker.Send(*session, crafter.OversizeInv());
  Settle();
  EXPECT_EQ(ScoreOf(session), 20);
}

TEST_F(NodeFixture, OversizeGetDataScoresTwenty) {
  AttackSession* session = ReadySession();
  attacker.Send(*session, crafter.OversizeGetData());
  Settle();
  EXPECT_EQ(ScoreOf(session), 20);
}

TEST_F(NodeFixture, OversizeHeadersScoresTwenty) {
  AttackSession* session = ReadySession();
  attacker.Send(*session, crafter.OversizeHeaders());
  Settle();
  EXPECT_EQ(ScoreOf(session), 20);
}

TEST_F(NodeFixture, NonContinuousHeadersScoresTwenty) {
  AttackSession* session = ReadySession();
  attacker.Send(*session, crafter.NonContinuousHeaders());
  Settle();
  EXPECT_EQ(ScoreOf(session), 20);
}

TEST_F(NodeFixture, TenNonConnectingHeadersScoreTwenty) {
  AttackSession* session = ReadySession();
  for (int i = 0; i < bsproto::kMaxUnconnectingHeaders - 1; ++i) {
    attacker.Send(*session, crafter.NonConnectingHeaders());
  }
  Settle();
  EXPECT_EQ(ScoreOf(session), 0) << "tolerated until the 10th";
  attacker.Send(*session, crafter.NonConnectingHeaders());
  Settle();
  EXPECT_EQ(ScoreOf(session), 20);
}

TEST_F(NodeFixture, SegwitInvalidTxBansImmediately) {
  AttackSession* session = ReadySession();
  attacker.Send(*session, crafter.SegwitInvalidTx());
  Settle();
  // Score 100 → banned → disconnected.
  EXPECT_TRUE(session->closed);
  EXPECT_TRUE(node.Bans().IsBanned(session->local, sched.Now()));
  EXPECT_EQ(node.PeersBanned(), 1u);
}

TEST_F(NodeFixture, MutatedBlockBansImmediately) {
  AttackSession* session = ReadySession();
  attacker.Send(*session, crafter.MutatedBlock(node.Chain().TipHash()));
  Settle();
  EXPECT_TRUE(session->closed);
  EXPECT_TRUE(node.Bans().IsBanned(session->local, sched.Now()));
}

TEST_F(NodeFixture, PrevMissingBlockScoresTen) {
  AttackSession* session = ReadySession();
  attacker.Send(*session, crafter.PrevMissingBlock());
  Settle();
  EXPECT_EQ(ScoreOf(session), 10);
  EXPECT_FALSE(session->closed);
}

TEST_F(NodeFixture, PrevInvalidBlockBans) {
  AttackSession* session = ReadySession();
  // First make the node cache an invalid block without reaching the ban
  // threshold from this session: prev-missing child of the invalid one is
  // not possible, so use a fresh session for the invalid parent.
  const auto bad_parent = crafter.MutatedBlock(node.Chain().TipHash());
  AttackSession* sacrificial = ReadySession();
  attacker.Send(*sacrificial, bad_parent);
  Settle();
  ASSERT_TRUE(node.Chain().IsKnownInvalid(bad_parent.block.Hash()));

  attacker.Send(*session, crafter.ChildOf(bad_parent.block.Hash()));
  Settle();
  EXPECT_TRUE(session->closed);
  EXPECT_TRUE(node.Bans().IsBanned(session->local, sched.Now()));
}

TEST_F(NodeFixture, CachedInvalidScopeIsOutboundOnly) {
  // An inbound peer re-offering a cached-invalid block is NOT punished
  // (Table I scopes the rule to outbound peers).
  const auto bad = crafter.MutatedBlock(node.Chain().TipHash());
  AttackSession* first = ReadySession();
  attacker.Send(*first, bad);
  Settle();
  ASSERT_TRUE(node.Chain().IsKnownInvalid(bad.block.Hash()));

  AttackSession* second = ReadySession();
  attacker.Send(*second, bad);
  Settle();
  EXPECT_EQ(ScoreOf(second), 0);
  EXPECT_FALSE(second->closed);
}

TEST_F(NodeFixture, InvalidCompactBlockBans) {
  AttackSession* session = ReadySession();
  attacker.Send(*session, crafter.InvalidCompactBlock(node.Chain().TipHash()));
  Settle();
  EXPECT_TRUE(session->closed);
}

TEST_F(NodeFixture, OutOfBoundsGetBlockTxnBans) {
  // Give the node a block first so GETBLOCKTXN resolves it.
  AttackSession* feeder = ReadySession();
  const auto valid = crafter.ValidBlock(node.Chain().TipHash());
  attacker.Send(*feeder, valid);
  Settle();
  ASSERT_TRUE(node.Chain().HaveBlock(valid.block.Hash()));

  AttackSession* session = ReadySession();
  attacker.Send(*session, crafter.OutOfBoundsGetBlockTxn(valid.block.Hash(),
                                                          valid.block.txs.size()));
  Settle();
  EXPECT_TRUE(session->closed);
  EXPECT_TRUE(node.Bans().IsBanned(session->local, sched.Now()));
}

TEST_F(NodeFixture, GetBlockTxnForUnknownBlockIgnored) {
  AttackSession* session = ReadySession();
  bscrypto::Hash256 unknown;
  unknown.Data()[0] = 0x77;
  attacker.Send(*session, crafter.OutOfBoundsGetBlockTxn(unknown, 1));
  Settle();
  EXPECT_EQ(ScoreOf(session), 0);
}

TEST_F(NodeFixture, OversizeFilterLoadBans) {
  AttackSession* session = ReadySession();
  attacker.Send(*session, crafter.OversizeFilterLoad());
  Settle();
  EXPECT_TRUE(session->closed);
}

TEST_F(NodeFixture, OversizeFilterAddBans) {
  AttackSession* session = ReadySession();
  attacker.Send(*session, crafter.OversizeFilterAdd());
  Settle();
  EXPECT_TRUE(session->closed);
}

TEST_F(NodeFixture, FilterAddVersionGateBansInV20) {
  // Our attacker speaks protocol 70015 >= 70011, so any in-bounds FILTERADD
  // trips the 0.20.0-only version-gate rule.
  AttackSession* session = ReadySession();
  bsproto::FilterAddMsg msg;
  msg.data = {0x01, 0x02};
  attacker.Send(*session, msg);
  Settle();
  EXPECT_TRUE(session->closed);
}

TEST_F(NodeFixture, ValidBlockAcceptedAndCreditsGoodScore) {
  AttackSession* session = ReadySession();
  const auto valid = crafter.ValidBlock(node.Chain().TipHash());
  attacker.Send(*session, valid);
  Settle();
  EXPECT_TRUE(node.Chain().HaveBlock(valid.block.Hash()));
  Peer* peer = NodePeer(session);
  ASSERT_NE(peer, nullptr);
  EXPECT_EQ(node.Tracker().GoodScore(peer->id), 1);
  EXPECT_EQ(ScoreOf(session), 0);
}

// ---------------------------------------------------------------------------
// The checksum gate (BM-DoS "forgoing ban score")

TEST_F(NodeFixture, BogusBlockFrameNeverPunished) {
  AttackSession* session = ReadySession();
  const auto frame = crafter.BogusBlockFrame(node.Config().chain.magic, 60'000);
  for (int i = 0; i < 50; ++i) attacker.SendRawFrame(*session, frame);
  Settle();
  EXPECT_EQ(ScoreOf(session), 0);
  EXPECT_FALSE(session->closed);
  EXPECT_EQ(node.FramesDroppedBadChecksum(), 50u);
  EXPECT_FALSE(node.Bans().IsBanned(session->local, sched.Now()));
}

TEST_F(NodeFixture, UnknownCommandNeverPunished) {
  AttackSession* session = ReadySession();
  const auto frame = crafter.UnknownCommandFrame(node.Config().chain.magic, 100);
  for (int i = 0; i < 50; ++i) attacker.SendRawFrame(*session, frame);
  Settle();
  EXPECT_EQ(ScoreOf(session), 0);
  EXPECT_EQ(node.FramesIgnoredUnknownCommand(), 50u);
}

TEST_F(NodeFixture, InvalidPowBlockWithValidChecksumBans) {
  // Vector 3's premise: a parseable invalid block IS punished; only the
  // bad-checksum variant evades the tracker.
  AttackSession* session = ReadySession();
  attacker.Send(*session, crafter.InvalidPowBlock(node.Chain().TipHash()));
  Settle();
  EXPECT_TRUE(session->closed);
}

// ---------------------------------------------------------------------------
// Banning filter semantics

TEST_F(NodeFixture, BannedIdentifierCannotReconnect) {
  AttackSession* session = ReadySession();
  const Endpoint banned_id = session->local;
  attacker.Send(*session, crafter.SegwitInvalidTx());
  Settle();
  ASSERT_TRUE(session->closed);

  // Reconnecting from the same [IP:Port] is refused.
  AttackSession* retry = attacker.OpenSession({kTargetIp, 8333},
                                              /*auto_handshake=*/true,
                                              banned_id.port);
  Settle();
  EXPECT_TRUE(retry->closed);
  EXPECT_FALSE(retry->SessionReady());
}

TEST_F(NodeFixture, FreshSybilIdentifierConnectsAfterBan) {
  AttackSession* session = ReadySession();
  attacker.Send(*session, crafter.SegwitInvalidTx());
  Settle();
  ASSERT_TRUE(session->closed);

  // Same IP, next port: the Sybil loophole.
  AttackSession* sybil = ReadySession();
  EXPECT_TRUE(sybil->SessionReady());
  EXPECT_FALSE(sybil->closed);
}

TEST_F(NodeFixture, BanExpiresAfterConfiguredDuration) {
  AttackSession* session = ReadySession();
  const Endpoint banned_id = session->local;
  attacker.Send(*session, crafter.SegwitInvalidTx());
  Settle();
  ASSERT_TRUE(node.Bans().IsBanned(banned_id, sched.Now()));
  EXPECT_FALSE(node.Bans().IsBanned(banned_id, sched.Now() + 25 * bsim::kHour));
}

// ---------------------------------------------------------------------------
// Outbound maintenance

TEST(NodeOutbound, FillsOutboundSlotsFromAddrMan) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.target_outbound = 3;
  Node target(sched, net, kTargetIp, config);

  std::vector<std::unique_ptr<Node>> peers;
  for (int i = 0; i < 5; ++i) {
    NodeConfig pc;
    pc.target_outbound = 0;
    auto peer = std::make_unique<Node>(sched, net, 0x0a000010 + i, pc);
    peer->Start();
    target.AddKnownAddress({peer->Ip(), 8333});
    peers.push_back(std::move(peer));
  }
  target.Start();
  sched.RunUntil(10 * bsim::kSecond);
  EXPECT_EQ(target.OutboundCount(), 3u);
  EXPECT_EQ(target.OutboundReconnects(), 0u);  // initial fill is not churn
}

TEST(NodeOutbound, ReplacesDroppedOutboundPeerAndCountsReconnect) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.target_outbound = 2;
  Node target(sched, net, kTargetIp, config);

  std::vector<std::unique_ptr<Node>> peers;
  for (int i = 0; i < 4; ++i) {
    NodeConfig pc;
    pc.target_outbound = 0;
    auto peer = std::make_unique<Node>(sched, net, 0x0a000020 + i, pc);
    peer->Start();
    target.AddKnownAddress({peer->Ip(), 8333});
    peers.push_back(std::move(peer));
  }
  target.Start();
  sched.RunUntil(10 * bsim::kSecond);
  ASSERT_EQ(target.OutboundCount(), 2u);

  // A remote peer drops the target's session.
  bool dropped = false;
  for (auto& peer : peers) {
    for (const Peer* p : peer->Peers()) {
      if (p->remote.ip == kTargetIp) {
        peer->DisconnectPeer(p->id);
        dropped = true;
        break;
      }
    }
    if (dropped) break;
  }
  ASSERT_TRUE(dropped);
  sched.RunUntil(30 * bsim::kSecond);
  EXPECT_EQ(target.OutboundCount(), 2u);  // replaced
  EXPECT_GE(target.OutboundReconnects(), 1u);
}

TEST(NodeOutbound, InboundCapacityEnforced) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.max_inbound = 2;
  Node target(sched, net, kTargetIp, config);
  target.Start();
  AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);
  std::vector<AttackSession*> sessions;
  for (int i = 0; i < 4; ++i) {
    sessions.push_back(attacker.OpenSession({kTargetIp, 8333}));
  }
  sched.RunUntil(5 * bsim::kSecond);
  int ready = 0;
  for (auto* s : sessions) ready += (!s->closed && s->SessionReady()) ? 1 : 0;
  EXPECT_EQ(ready, 2);
  EXPECT_EQ(target.InboundCount(), 2u);
}

// ---------------------------------------------------------------------------
// Relay

TEST(NodeRelay, BlockPropagatesViaInvGetDataBlock) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.target_outbound = 1;
  Node a(sched, net, 0x0a000001, config);
  NodeConfig bc;
  bc.target_outbound = 0;
  Node b(sched, net, 0x0a000002, bc);
  b.Start();
  a.AddKnownAddress({b.Ip(), 8333});
  a.Start();
  sched.RunUntil(5 * bsim::kSecond);
  ASSERT_EQ(a.OutboundCount(), 1u);

  const auto block = a.MineAndRelay();
  ASSERT_TRUE(block.has_value());
  sched.RunUntil(10 * bsim::kSecond);
  EXPECT_TRUE(b.Chain().HaveBlock(block->Hash()));
  EXPECT_EQ(b.Chain().TipHash(), block->Hash());
}

}  // namespace

// NOTE: appended reply-coverage tests: the node's responses observed from
// the client side of the session.
namespace {

struct ReplyFixture : NodeFixture {
  /// Collect every message the node sends back on `session`.
  std::vector<bsproto::Message> Collect(AttackSession* session) {
    std::vector<bsproto::Message> out;
    session->on_message = [&out](AttackSession&, const bsproto::Message& msg) {
      out.push_back(msg);
    };
    return out;
  }
};

TEST_F(ReplyFixture, GetHeadersAnswersWithActiveChain) {
  for (int i = 0; i < 3; ++i) node.MineAndRelay();
  AttackSession* session = ReadySession();
  std::vector<bsproto::HeadersMsg> replies;
  session->on_message = [&](AttackSession&, const bsproto::Message& msg) {
    if (const auto* h = std::get_if<bsproto::HeadersMsg>(&msg)) replies.push_back(*h);
  };
  bsproto::GetHeadersMsg request;  // empty locator -> everything above genesis
  attacker.Send(*session, request);
  Settle();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].headers.size(), 3u);
  EXPECT_EQ(replies[0].headers.back().Hash(), node.Chain().TipHash());
}

TEST_F(ReplyFixture, GetAddrAnswersWithKnownAddresses) {
  for (int i = 0; i < 5; ++i) {
    node.AddKnownAddress({0x0a000100 + static_cast<std::uint32_t>(i), 8333});
  }
  AttackSession* session = ReadySession();
  std::vector<bsproto::AddrMsg> replies;
  session->on_message = [&](AttackSession&, const bsproto::Message& msg) {
    if (const auto* a = std::get_if<bsproto::AddrMsg>(&msg)) replies.push_back(*a);
  };
  attacker.Send(*session, bsproto::GetAddrMsg{});
  Settle();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_GE(replies[0].addresses.size(), 1u);
  EXPECT_LE(replies[0].addresses.size(), bsproto::kMaxAddrToSend);
}

TEST_F(ReplyFixture, MempoolAnswersWithTxInventory) {
  const auto tx1 = crafter.ValidTx();
  const auto tx2 = crafter.ValidTx();
  ASSERT_EQ(node.Pool().AcceptTransaction(tx1.tx), bschain::TxResult::kOk);
  ASSERT_EQ(node.Pool().AcceptTransaction(tx2.tx), bschain::TxResult::kOk);
  AttackSession* session = ReadySession();
  std::vector<bsproto::InvMsg> replies;
  session->on_message = [&](AttackSession&, const bsproto::Message& msg) {
    if (const auto* inv = std::get_if<bsproto::InvMsg>(&msg)) replies.push_back(*inv);
  };
  attacker.Send(*session, bsproto::MempoolMsg{});
  Settle();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].inventory.size(), 2u);
  for (const auto& item : replies[0].inventory) {
    EXPECT_EQ(item.type, bsproto::InvType::kTx);
  }
}

TEST_F(ReplyFixture, GetDataForUnknownItemsAnswersNotFound) {
  AttackSession* session = ReadySession();
  std::vector<bsproto::NotFoundMsg> replies;
  session->on_message = [&](AttackSession&, const bsproto::Message& msg) {
    if (const auto* nf = std::get_if<bsproto::NotFoundMsg>(&msg)) replies.push_back(*nf);
  };
  bsproto::GetDataMsg request;
  bscrypto::Hash256 unknown;
  unknown.Data()[0] = 0x99;
  request.inventory.push_back({bsproto::InvType::kTx, unknown});
  request.inventory.push_back({bsproto::InvType::kBlock, unknown});
  attacker.Send(*session, request);
  Settle();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].inventory.size(), 2u);
}

TEST_F(ReplyFixture, GetBlocksAnswersWithBlockInventory) {
  for (int i = 0; i < 4; ++i) node.MineAndRelay();
  AttackSession* session = ReadySession();
  std::vector<bsproto::InvMsg> replies;
  session->on_message = [&](AttackSession&, const bsproto::Message& msg) {
    if (const auto* inv = std::get_if<bsproto::InvMsg>(&msg)) replies.push_back(*inv);
  };
  bsproto::GetBlocksMsg request;
  attacker.Send(*session, request);
  Settle();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].inventory.size(), 4u);
  EXPECT_EQ(replies[0].inventory[0].type, bsproto::InvType::kBlock);
}

TEST_F(ReplyFixture, InvForUnknownTxTriggersGetData) {
  AttackSession* session = ReadySession();
  std::vector<bsproto::GetDataMsg> replies;
  session->on_message = [&](AttackSession&, const bsproto::Message& msg) {
    if (const auto* gd = std::get_if<bsproto::GetDataMsg>(&msg)) replies.push_back(*gd);
  };
  const auto tx = crafter.ValidTx();
  bsproto::InvMsg announce;
  announce.inventory.push_back({bsproto::InvType::kTx, tx.tx.Txid()});
  attacker.Send(*session, announce);
  Settle();
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_EQ(replies[0].inventory.size(), 1u);
  EXPECT_EQ(replies[0].inventory[0].hash, tx.tx.Txid());

  // Announcing it again after delivery produces no further request.
  attacker.Send(*session, tx);
  Settle();
  attacker.Send(*session, announce);
  Settle();
  EXPECT_EQ(replies.size(), 1u);
}

TEST_F(ReplyFixture, DropAndRebuildDisconnectsEveryPeer) {
  AttackSession* a = ReadySession();
  AttackSession* b = ReadySession();
  ASSERT_EQ(node.InboundCount(), 2u);
  node.DropAndRebuildConnections();
  Settle();
  EXPECT_TRUE(a->closed);
  EXPECT_TRUE(b->closed);
  EXPECT_EQ(node.InboundCount(), 0u);
  // Not a punishment: nobody is banned and both can reconnect.
  EXPECT_EQ(node.Bans().Size(), 0u);
  AttackSession* again = ReadySession();
  EXPECT_TRUE(again->SessionReady());
}

TEST_F(ReplyFixture, SendToRemoteIpFailsWithoutSession) {
  EXPECT_FALSE(node.SendToRemoteIp(0x0afffff0, bsproto::PingMsg{1}));
  AttackSession* session = ReadySession();
  ASSERT_TRUE(session->SessionReady());
  EXPECT_TRUE(node.SendToRemoteIp(kAttackerIp, bsproto::PingMsg{1}));
}

// ---------------------------------------------------------------------------
// Stale-tip emergency-slot accounting (regression). The extra outbound slot
// opened during a stale-tip episode must be released once the tip advances,
// even when EVERY outbound peer has delivered a block. The original eviction
// only considered never-delivered peers, so in that state each episode leaked
// one outbound slot permanently.

TEST(StaleTipSlots, EmergencySlotReleasedAcrossRepeatedEpisodes) {
  bsim::Scheduler sched;
  bsim::Network net(sched);

  NodeConfig victim_cfg;
  victim_cfg.target_outbound = 2;
  victim_cfg.enable_stale_tip_recovery = true;
  victim_cfg.stale_tip_timeout = 4 * bsim::kSecond;

  NodeConfig peer_cfg;
  peer_cfg.target_outbound = 0;

  Node victim(sched, net, 0x0a000001, victim_cfg);
  // Distinct /16 groups so netgroup-diversity logic can never interfere.
  const std::uint32_t peer_ips[] = {0x0b000001, 0x0c000001, 0x0d000001};
  std::vector<std::unique_ptr<Node>> peer_nodes;
  for (const std::uint32_t ip : peer_ips) {
    peer_nodes.push_back(std::make_unique<Node>(sched, net, ip, peer_cfg));
    victim.AddKnownAddress({ip, 8333});
  }
  victim.Start();
  for (auto& p : peer_nodes) p->Start();

  auto run = [&](bsim::SimTime d) { sched.RunUntil(sched.Now() + d); };
  auto node_for_ip = [&](std::uint32_t ip) -> Node* {
    for (auto& p : peer_nodes) {
      if (p->Ip() == ip) return p.get();
    }
    return nullptr;
  };
  auto outbound_peers = [&]() {
    std::vector<const Peer*> out;
    for (const Peer* peer : victim.Peers()) {
      if (peer->inbound || peer->feeler || !peer->HandshakeComplete()) continue;
      out.push_back(peer);
    }
    return out;
  };

  run(3 * bsim::kSecond);
  ASSERT_EQ(victim.OutboundCount(), 2u);

  // Both connected peers earn delivery credit: each mines a block in turn.
  // The victim relays accepted blocks onward, so the peers stay on one chain.
  // Snapshot IPs before mining: advancing sim time inside the loop can run
  // the victim's maintenance, which may evict and free the Peer objects the
  // outbound_peers() snapshot points at.
  std::vector<std::uint32_t> connected_ips;
  for (const Peer* peer : outbound_peers()) {
    connected_ips.push_back(peer->remote.ip);
  }
  for (const std::uint32_t ip : connected_ips) {
    ASSERT_NE(node_for_ip(ip), nullptr);
    node_for_ip(ip)->MineAndRelay();
    run(2 * bsim::kSecond);
  }
  ASSERT_EQ(victim.Chain().TipHeight(), 2);
  for (const Peer* peer : outbound_peers()) {
    ASSERT_NE(peer->last_block_time, 0) << "setup: every peer must deliver";
  }

  for (int episode = 1; episode <= 2; ++episode) {
    // Stall past the timeout: the emergency slot opens and the victim dials
    // the one known address it is not already connected to.
    run(victim_cfg.stale_tip_timeout + 6 * bsim::kSecond);
    ASSERT_EQ(victim.StaleTipEvents(), static_cast<std::uint64_t>(episode));
    ASSERT_EQ(victim.OutboundCount(), 3u) << "episode " << episode;

    // The newcomer delivers too (a side block off its own shorter chain is
    // enough for credit), so no outbound peer is left without credit. Same
    // snapshot-the-IPs dance: run() inside the loop invalidates Peer*.
    std::vector<std::uint32_t> uncredited_ips;
    for (const Peer* peer : outbound_peers()) {
      if (peer->last_block_time == 0) uncredited_ips.push_back(peer->remote.ip);
    }
    for (const std::uint32_t ip : uncredited_ips) {
      ASSERT_NE(node_for_ip(ip), nullptr);
      node_for_ip(ip)->MineAndRelay();
      run(2 * bsim::kSecond);
    }
    for (const Peer* peer : outbound_peers()) {
      ASSERT_NE(peer->last_block_time, 0) << "episode " << episode;
    }

    // A peer sitting on the victim's exact tip mines the recovery block.
    Node* tip_peer = nullptr;
    for (const Peer* peer : outbound_peers()) {
      Node* p = node_for_ip(peer->remote.ip);
      if (p != nullptr && p->Chain().TipHash() == victim.Chain().TipHash()) {
        tip_peer = p;
      }
    }
    ASSERT_NE(tip_peer, nullptr) << "episode " << episode;
    const int before = victim.Chain().TipHeight();
    tip_peer->MineAndRelay();
    run(3 * bsim::kSecond);
    ASSERT_GT(victim.Chain().TipHeight(), before);

    // Regression: with every peer credited, the old eviction found no
    // never-delivered candidate and the slot leaked (count stuck at 3, then
    // 4, ...). The fallback retires the least-recently-useful peer instead.
    EXPECT_EQ(victim.OutboundCount(), 2u) << "episode " << episode;
  }
}

}  // namespace
