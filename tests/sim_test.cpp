// Tests for bsim: scheduler determinism, CPU contention model calibration,
// TCP handshake/data/injection semantics, sniffing, spoofing, bandwidth.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "sim/cpu.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "sim/tcp.hpp"

namespace {

using namespace bsim;  // NOLINT

// ---------------------------------------------------------------------------
// Scheduler

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.At(30, [&]() { order.push_back(3); });
  sched.At(10, [&]() { order.push_back(1); });
  sched.At(20, [&]() { order.push_back(2); });
  sched.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), 30);
}

TEST(Scheduler, TiesBreakInSchedulingOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.At(5, [&]() { order.push_back(1); });
  sched.At(5, [&]() { order.push_back(2); });
  sched.At(5, [&]() { order.push_back(3); });
  sched.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, PastEventsClampToNow) {
  Scheduler sched;
  sched.At(100, []() {});
  sched.RunAll();
  bool ran = false;
  sched.At(50, [&]() { ran = true; });  // in the past
  sched.RunAll();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sched.Now(), 100);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int count = 0;
  sched.At(10, [&]() { ++count; });
  sched.At(20, [&]() { ++count; });
  sched.At(30, [&]() { ++count; });
  sched.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sched.Now(), 20);
  EXPECT_EQ(sched.PendingEvents(), 1u);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) sched.After(10, recurse);
  };
  sched.After(0, recurse);
  sched.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sched.Now(), 40);
}

// ---------------------------------------------------------------------------
// CPU model — calibration against the paper's operating points

TEST(CpuModel, BaselineWithTenConnectionsMinesNearPaperRate) {
  CpuModel cpu;
  cpu.SetActiveConnections(10);  // the paper's node held ~10 Mainnet peers
  cpu.BeginWindow(0);
  const MiningSample sample = cpu.EndWindow(kSecond);
  // Paper Fig. 6 baseline: 9.5e5 h/s.
  EXPECT_NEAR(sample.mining_rate_hps, 9.5e5, 0.05e5);
}

TEST(CpuModel, PingFloodOperatingPoint) {
  CpuModel cpu;
  cpu.SetActiveConnections(11);  // 10 normal + 1 attacker socket
  cpu.BeginWindow(0);
  for (int i = 0; i < 1000; ++i) cpu.ConsumeMessage(95.6);  // 1e3 PING/s
  const MiningSample sample = cpu.EndWindow(kSecond);
  // Paper Fig. 6: ~5.5e5 h/s under single-connection PING BM-DoS.
  EXPECT_NEAR(sample.mining_rate_hps, 5.5e5, 0.5e5);
}

TEST(CpuModel, NetThreadSaturationClampsBusy) {
  CpuModel cpu;
  cpu.BeginWindow(0);
  for (int i = 0; i < 100'000; ++i) cpu.ConsumeMessage(1e6);
  const MiningSample sample = cpu.EndWindow(kSecond);
  // The miner keeps at least (1 - net_capacity_fraction) of the CPU.
  const auto& config = cpu.Config();
  const double floor_rate =
      config.capacity_cps * (1.0 - config.net_capacity_fraction) / config.cycles_per_hash;
  EXPECT_GE(sample.mining_rate_hps, floor_rate * 0.99);
  EXPECT_LE(sample.busy_fraction, config.net_capacity_fraction + 1e-9);
}

TEST(CpuModel, MoreConnectionsMeanSlowerMining) {
  auto rate_with_conns = [](int conns) {
    CpuModel cpu;
    cpu.SetActiveConnections(conns);
    cpu.BeginWindow(0);
    for (int i = 0; i < 1000; ++i) cpu.ConsumeMessage(95.6);
    return cpu.EndWindow(kSecond).mining_rate_hps;
  };
  const double r1 = rate_with_conns(11);
  const double r10 = rate_with_conns(20);
  const double r20 = rate_with_conns(30);
  EXPECT_GT(r1, r10);
  EXPECT_GT(r10, r20);
}

TEST(CpuModel, IcmpCurveMatchesTableThree) {
  auto mining_at_rate = [](double rate) {
    CpuModel cpu;
    cpu.SetActiveConnections(10);
    cpu.BeginWindow(0);
    cpu.ConsumeIcmpPackets(static_cast<std::uint64_t>(rate));
    return cpu.EndWindow(kSecond).mining_rate_hps;
  };
  // Paper Table III ICMP column: 1e2→9.2e5, 1e4→6.4e5, 1e6→3.6e5 (±15%).
  EXPECT_NEAR(mining_at_rate(1e2), 9.2e5, 1.4e5);
  EXPECT_NEAR(mining_at_rate(1e4), 6.4e5, 1.0e5);
  EXPECT_NEAR(mining_at_rate(1e6), 3.6e5, 0.6e5);
  // Monotone decreasing in rate.
  EXPECT_GT(mining_at_rate(1e3), mining_at_rate(1e5));
}

TEST(CpuModel, WindowsAreIndependent) {
  CpuModel cpu;
  cpu.BeginWindow(0);
  for (int i = 0; i < 1000; ++i) cpu.ConsumeMessage(1e6);
  const MiningSample loaded = cpu.EndWindow(kSecond);
  cpu.BeginWindow(kSecond);
  const MiningSample idle = cpu.EndWindow(2 * kSecond);
  EXPECT_GT(idle.mining_rate_hps, loaded.mining_rate_hps);
}

TEST(CpuModel, ZeroLengthWindowIsSafe) {
  CpuModel cpu;
  cpu.BeginWindow(5);
  const MiningSample sample = cpu.EndWindow(5);
  EXPECT_EQ(sample.mining_rate_hps, 0.0);
}

// ---------------------------------------------------------------------------
// TCP

struct TcpFixture : ::testing::Test {
  Scheduler sched;
  Network net{sched};
  Host alice{sched, net, 0x0a000001};
  Host bob{sched, net, 0x0a000002};
};

TEST_F(TcpFixture, HandshakeEstablishesBothSides) {
  bool accepted = false;
  bool connected = false;
  TcpConnection* server_conn = nullptr;
  bob.Listen(8333, [&](TcpConnection& conn) {
    accepted = true;
    server_conn = &conn;
  });
  TcpConnection* client = alice.Connect({0x0a000002, 8333},
                                        [&](bool ok) { connected = ok; });
  ASSERT_NE(client, nullptr);
  sched.RunUntil(kSecond);
  EXPECT_TRUE(accepted);
  EXPECT_TRUE(connected);
  EXPECT_TRUE(client->IsEstablished());
  ASSERT_NE(server_conn, nullptr);
  EXPECT_TRUE(server_conn->IsEstablished());
  EXPECT_EQ(server_conn->Remote(), client->Local());
}

TEST_F(TcpFixture, DataFlowsInOrder) {
  bsutil::ByteVec received;
  bob.Listen(8333, [&](TcpConnection& conn) {
    conn.on_data = [&](bsutil::ByteSpan data) {
      received.insert(received.end(), data.begin(), data.end());
    };
  });
  TcpConnection* client = alice.Connect({0x0a000002, 8333}, nullptr);
  sched.RunUntil(kSecond);
  const bsutil::ByteVec big(5000, 0x5a);  // spans multiple MSS segments
  client->Send(big);
  sched.RunUntil(2 * kSecond);
  EXPECT_EQ(received, big);
}

TEST_F(TcpFixture, BadChecksumSegmentsDroppedSilently) {
  TcpConnection* server_conn = nullptr;
  bsutil::ByteVec received;
  bob.Listen(8333, [&](TcpConnection& conn) {
    server_conn = &conn;
    conn.on_data = [&](bsutil::ByteSpan data) {
      received.insert(received.end(), data.begin(), data.end());
    };
  });
  TcpConnection* client = alice.Connect({0x0a000002, 8333}, nullptr);
  sched.RunUntil(kSecond);

  // Inject a corrupted segment carrying the expected next seq.
  TcpSegment bad;
  bad.src = client->Local();
  bad.dst = client->Remote();
  bad.seq = client->SndNext();
  bad.flags = kFlagPsh | kFlagAck;
  bad.checksum_ok = false;
  bad.payload = {1, 2, 3};
  net.SendSegment(alice, bad);
  sched.RunUntil(2 * kSecond);
  EXPECT_TRUE(received.empty());
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(server_conn->SegmentsDroppedChecksum(), 1u);
  EXPECT_TRUE(server_conn->IsEstablished());  // connection unharmed
}

TEST_F(TcpFixture, OutOfOrderSegmentsDropped) {
  TcpConnection* server_conn = nullptr;
  bsutil::ByteVec received;
  bob.Listen(8333, [&](TcpConnection& conn) {
    server_conn = &conn;
    conn.on_data = [&](bsutil::ByteSpan data) {
      received.insert(received.end(), data.begin(), data.end());
    };
  });
  TcpConnection* client = alice.Connect({0x0a000002, 8333}, nullptr);
  sched.RunUntil(kSecond);

  TcpSegment stray;
  stray.src = client->Local();
  stray.dst = client->Remote();
  stray.seq = client->SndNext() + 9999;  // not the expected sequence
  stray.flags = kFlagPsh | kFlagAck;
  stray.payload = {9};
  net.SendSegment(alice, stray);
  sched.RunUntil(2 * kSecond);
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(server_conn->SegmentsDroppedOutOfOrder(), 1u);
}

TEST_F(TcpFixture, SpoofedInWindowInjectionIsAcceptedAndDesynchronizesRealPeer) {
  // The Defamation primitive: a third host forges an in-window segment.
  Host mallory(sched, net, 0x0a000003);
  TcpConnection* server_conn = nullptr;
  bsutil::ByteVec received;
  bob.Listen(8333, [&](TcpConnection& conn) {
    server_conn = &conn;
    conn.on_data = [&](bsutil::ByteSpan data) {
      received.insert(received.end(), data.begin(), data.end());
    };
  });
  TcpConnection* client = alice.Connect({0x0a000002, 8333}, nullptr);
  sched.RunUntil(kSecond);

  TcpSegment forged;
  forged.src = client->Local();  // spoofed: Alice's identifier
  forged.dst = client->Remote();
  forged.seq = client->SndNext();  // sniffed in-window sequence
  forged.flags = kFlagPsh | kFlagAck;
  forged.payload = {0xee, 0xee};
  net.SendSegment(mallory, forged);
  sched.RunUntil(2 * kSecond);
  EXPECT_EQ(received, (bsutil::ByteVec{0xee, 0xee}));

  // Alice's genuine next segment now lands out-of-window.
  client->Send(bsutil::ByteVec{0x11});
  sched.RunUntil(3 * kSecond);
  EXPECT_EQ(received, (bsutil::ByteVec{0xee, 0xee}));
  EXPECT_EQ(server_conn->SegmentsDroppedOutOfOrder(), 1u);
}

TEST_F(TcpFixture, SpoofedEgressBlockedWhenConfigured) {
  Scheduler sched2;
  NetworkConfig config;
  config.block_spoofed_egress = true;
  Network filtered(sched2, config);
  Host attacker(sched2, filtered, 0x0a000003);
  Host victim(sched2, filtered, 0x0a000002);
  bool got = false;
  victim.raw_segment_filter = [&](const TcpSegment&) {
    got = true;
    return true;
  };
  TcpSegment spoofed;
  spoofed.src = {0x0a000099, 1234};  // not the attacker's IP
  spoofed.dst = {0x0a000002, 8333};
  filtered.SendSegment(attacker, spoofed);
  sched2.RunAll();
  EXPECT_FALSE(got);
  EXPECT_EQ(filtered.SegmentsDroppedSpoofed(), 1u);
}

TEST_F(TcpFixture, SnifferSeesAllSegments) {
  int sniffed = 0;
  net.AddSniffer([&](const TcpSegment&, SimTime) { ++sniffed; });
  bob.Listen(8333, [](TcpConnection&) {});
  alice.Connect({0x0a000002, 8333}, nullptr);
  sched.RunUntil(kSecond);
  EXPECT_EQ(sniffed, 3);  // SYN, SYN-ACK, ACK
}

TEST_F(TcpFixture, RstClosesConnection) {
  TcpConnection* server_conn = nullptr;
  bool client_closed = false;
  bob.Listen(8333, [&](TcpConnection& conn) { server_conn = &conn; });
  TcpConnection* client = alice.Connect({0x0a000002, 8333}, nullptr);
  TcpConnection::State state_at_close = TcpConnection::State::kSynSent;
  client->on_closed = [&]() {
    client_closed = true;
    state_at_close = client->GetState();  // still valid inside the callback
  };
  sched.RunUntil(kSecond);
  ASSERT_NE(server_conn, nullptr);
  server_conn->Reset();
  sched.RunUntil(2 * kSecond);
  EXPECT_TRUE(client_closed);
  EXPECT_EQ(state_at_close, TcpConnection::State::kClosed);
}

TEST_F(TcpFixture, SynToDeadHostTimesOut) {
  bool result = true;
  bool fired = false;
  alice.Connect({0x0a0000ee, 8333}, [&](bool ok) {
    result = ok;
    fired = true;
  });
  sched.RunUntil(kSynTimeout + kSecond);
  EXPECT_TRUE(fired);
  EXPECT_FALSE(result);
}

TEST_F(TcpFixture, UnsolicitedSegmentRstWhenFirewallOff) {
  bob.drop_unsolicited = false;
  int rsts = 0;
  net.AddSniffer([&](const TcpSegment& seg, SimTime) {
    if (seg.Has(kFlagRst)) ++rsts;
  });
  TcpSegment stray;
  stray.src = {0x0a000001, 5555};
  stray.dst = {0x0a000002, 7777};  // nobody listening
  stray.flags = kFlagPsh | kFlagAck;
  stray.payload = {1};
  net.SendSegment(alice, stray);
  sched.RunAll();
  EXPECT_EQ(rsts, 1);
}

TEST_F(TcpFixture, UnsolicitedSegmentDroppedWhenFirewallOn) {
  // drop_unsolicited defaults to true (the paper's deployment assumption).
  int rsts = 0;
  net.AddSniffer([&](const TcpSegment& seg, SimTime) {
    if (seg.Has(kFlagRst)) ++rsts;
  });
  TcpSegment stray;
  stray.src = {0x0a000001, 5555};
  stray.dst = {0x0a000002, 7777};
  stray.flags = kFlagPsh | kFlagAck;
  stray.payload = {1};
  net.SendSegment(alice, stray);
  sched.RunAll();
  EXPECT_EQ(rsts, 0);
}

TEST_F(TcpFixture, EphemeralPortsStayInDynamicRange) {
  for (int i = 0; i < 20'000; ++i) {
    const std::uint16_t port = alice.AllocEphemeralPort();
    ASSERT_GE(port, 49152);
  }
}

TEST_F(TcpFixture, BandwidthAccountingTracksDeliveredBytes) {
  bob.Listen(8333, [](TcpConnection&) {});
  TcpConnection* client = alice.Connect({0x0a000002, 8333}, nullptr);
  sched.RunUntil(kSecond);
  net.ResetByteCounters();
  client->Send(bsutil::ByteVec(1000, 1));
  sched.RunUntil(2 * kSecond);
  // 1000 payload bytes + one frame overhead.
  EXPECT_EQ(net.BytesDeliveredTo(0x0a000002), 1000 + kTcpFrameOverhead);
}

TEST_F(TcpFixture, EgressBandwidthDelaysLargeTransfers) {
  // At 125 MB/s, 12.5 MB takes ~100 ms of serialization delay.
  bsutil::ByteVec received_marker;
  bob.Listen(8333, [&](TcpConnection& conn) {
    conn.on_data = [&](bsutil::ByteSpan data) {
      received_marker.insert(received_marker.end(), data.begin(), data.end());
    };
  });
  TcpConnection* client = alice.Connect({0x0a000002, 8333}, nullptr);
  sched.RunUntil(kSecond);
  const SimTime start = sched.Now();
  client->Send(bsutil::ByteVec(12'500'000, 2));
  // Drain everything and check the last byte arrived >= ~100 ms after start.
  sched.RunAll();
  EXPECT_EQ(received_marker.size(), 12'500'000u);
  EXPECT_GE(sched.Now() - start, 95 * kMillisecond);
}

// ---------------------------------------------------------------------------
// Fault injection and reliable-mode TCP

struct FaultFixture : ::testing::Test {
  Scheduler sched;
  Network net{sched};
  FaultPlan plan{sched, /*seed=*/1234};
  Host alice{sched, net, 0x0a000001};
  Host bob{sched, net, 0x0a000002};

  void SetUp() override { net.SetFaultPlan(&plan); }

  /// Establish alice→bob and pump `payload` through; returns what bob's
  /// application saw.
  bsutil::ByteVec PumpData(const bsutil::ByteVec& payload) {
    bsutil::ByteVec received;
    bob.Listen(8333, [&](TcpConnection& conn) {
      conn.SetDataSink([&](bsutil::ByteSpan data) {
        received.insert(received.end(), data.begin(), data.end());
      });
    });
    TcpConnection* client = alice.Connect({0x0a000002, 8333}, nullptr);
    sched.RunUntil(kSecond);
    if (client == nullptr || !client->IsEstablished()) return received;
    client->Send(payload);
    sched.RunAll();
    return received;
  }

  /// Like PumpData, but the fault spec kicks in only once the handshake is
  /// up — SYN/SYN-ACK are not retransmitted, so a handshake under heavy loss
  /// can legitimately abort, which is not what these tests probe.
  bsutil::ByteVec PumpDataAfterHandshake(const FaultSpec& spec,
                                         const bsutil::ByteVec& payload) {
    bsutil::ByteVec received;
    bob.Listen(8333, [&](TcpConnection& conn) {
      conn.SetDataSink([&](bsutil::ByteSpan data) {
        received.insert(received.end(), data.begin(), data.end());
      });
    });
    TcpConnection* client = alice.Connect({0x0a000002, 8333}, nullptr);
    sched.RunUntil(kSecond);
    if (client == nullptr || !client->IsEstablished()) return received;
    plan.SetDefaultFaults(spec);
    client->Send(payload);
    sched.RunAll();
    return received;
  }
};

TEST_F(FaultFixture, QuietPlanLeavesTrafficUntouched) {
  const bsutil::ByteVec payload(10'000, 0x42);
  EXPECT_EQ(PumpData(payload), payload);
  EXPECT_EQ(plan.SegmentsDroppedLoss(), 0u);
  EXPECT_EQ(plan.SegmentsCorrupted(), 0u);
  EXPECT_EQ(plan.SegmentsDuplicated(), 0u);
  EXPECT_EQ(plan.SegmentsDelayed(), 0u);
}

TEST_F(FaultFixture, ReliableModeDeliversEverythingUnderHeavyLoss) {
  FaultSpec lossy;
  lossy.loss = 0.25;
  const bsutil::ByteVec payload(50'000, 0x5a);  // ~35 segments
  EXPECT_EQ(PumpDataAfterHandshake(lossy, payload), payload);
  EXPECT_GT(plan.SegmentsDroppedLoss(), 0u);
  EXPECT_GT(net.SegmentsRetransmitted(), 0u);
}

TEST_F(FaultFixture, CorruptionIsDroppedByChecksumAndRecovered) {
  FaultSpec dirty;
  dirty.corrupt = 0.2;
  const bsutil::ByteVec payload(50'000, 0x7e);
  EXPECT_EQ(PumpDataAfterHandshake(dirty, payload), payload);
  EXPECT_GT(plan.SegmentsCorrupted(), 0u);
  EXPECT_GT(net.SegmentsDroppedChecksum(), 0u);
}

TEST_F(FaultFixture, DuplicatesAreDeliveredExactlyOnce) {
  FaultSpec dup;
  dup.duplicate = 1.0;
  plan.SetDefaultFaults(dup);
  const bsutil::ByteVec payload(20'000, 0x33);
  EXPECT_EQ(PumpData(payload), payload);
  EXPECT_GT(plan.SegmentsDuplicated(), 0u);
}

TEST_F(FaultFixture, ReorderingJitterIsAbsorbed) {
  FaultSpec jitter;
  jitter.reorder = 0.3;
  jitter.reorder_jitter_max = 2 * kMillisecond;
  plan.SetDefaultFaults(jitter);
  const bsutil::ByteVec payload(50'000, 0x11);
  EXPECT_EQ(PumpData(payload), payload);
  EXPECT_GT(plan.SegmentsDelayed(), 0u);
}

TEST_F(FaultFixture, EverythingAtOnceStillConverges) {
  FaultSpec storm;
  storm.loss = 0.1;
  storm.duplicate = 0.1;
  storm.reorder = 0.1;
  storm.corrupt = 0.1;
  const bsutil::ByteVec payload(30'000, 0xab);
  EXPECT_EQ(PumpDataAfterHandshake(storm, payload), payload);
}

TEST_F(FaultFixture, LinkSpecBeatsHostSpecBeatsDefault) {
  FaultSpec quiet;  // all-zero
  FaultSpec total;
  total.loss = 1.0;
  plan.SetDefaultFaults(total);           // everyone loses everything...
  plan.SetHostFaults(alice.Ip(), total);  // ...alice too...
  plan.SetLinkFaults(alice.Ip(), bob.Ip(), quiet);  // ...except this link
  const bsutil::ByteVec payload(5'000, 0x21);
  EXPECT_EQ(PumpData(payload), payload);
  EXPECT_EQ(plan.SegmentsDroppedLoss(), 0u);
}

TEST_F(FaultFixture, CutLinkBlackholesUntilHealed) {
  plan.CutLink(alice.Ip(), bob.Ip());
  bool connected = false;
  bool fired = false;
  bob.Listen(8333, [](TcpConnection&) {});
  alice.Connect({0x0a000002, 8333}, [&](bool ok) {
    connected = ok;
    fired = true;
  });
  sched.RunUntil(kSynTimeout + kSecond);
  EXPECT_TRUE(fired);
  EXPECT_FALSE(connected);
  EXPECT_GT(plan.SegmentsDroppedPartition(), 0u);

  plan.HealLink(alice.Ip(), bob.Ip());
  bool connected2 = false;
  alice.Connect({0x0a000002, 8333}, [&](bool ok) { connected2 = ok; });
  sched.RunUntil(sched.Now() + kSecond);
  EXPECT_TRUE(connected2);
}

TEST_F(FaultFixture, ScheduledLinkFlapCutsAndHeals) {
  plan.ScheduleLinkFlap(alice.Ip(), bob.Ip(), 10 * kSecond, 5 * kSecond);
  sched.RunUntil(9 * kSecond);
  EXPECT_FALSE(plan.IsCut(alice.Ip(), bob.Ip()));
  sched.RunUntil(12 * kSecond);
  EXPECT_TRUE(plan.IsCut(alice.Ip(), bob.Ip()));
  sched.RunUntil(16 * kSecond);
  EXPECT_FALSE(plan.IsCut(alice.Ip(), bob.Ip()));
  EXPECT_EQ(plan.LinkFlaps(), 1u);
}

// ---------------------------------------------------------------------------
// Routing detours: asymmetric /16 delay-partitions (the Hijacking-Bitcoin
// adversary). Hosts live in distinct /16s so the group rules actually bind.

struct DetourFixture : ::testing::Test {
  Scheduler sched;
  Network net{sched};
  FaultPlan plan{sched, /*seed=*/77};
  Host west{sched, net, 0x0a100001};  // /16 group 0x0a10
  Host east{sched, net, 0x0a200001};  // /16 group 0x0a20

  void SetUp() override { net.SetFaultPlan(&plan); }

  /// Time from Send() to the last byte arriving at the receiver.
  SimTime TransferTime(Host& from, Host& to, std::size_t bytes) {
    std::size_t received = 0;
    SimTime last_arrival = 0;
    to.Listen(9000, [&](TcpConnection& conn) {
      conn.SetDataSink([&](bsutil::ByteSpan data) {
        received += data.size();
        last_arrival = sched.Now();
      });
    });
    TcpConnection* client = from.Connect({to.Ip(), 9000}, nullptr);
    sched.RunUntil(sched.Now() + 5 * kSecond);
    EXPECT_NE(client, nullptr);
    if (client == nullptr || !client->IsEstablished()) return 0;
    const SimTime start = sched.Now();
    client->Send(bsutil::ByteVec(bytes, 0x61));
    sched.RunAll();
    EXPECT_EQ(received, bytes);
    return last_arrival - start;
  }
};

TEST_F(DetourFixture, GroupDelayIsAsymmetric) {
  // Hijack only the west→east direction: data crawls one way while the
  // reverse path stays at baseline speed.
  plan.SetGroupDelay(FaultPlan::GroupOf(west.Ip()), FaultPlan::GroupOf(east.Ip()),
                     250 * kMillisecond);
  const SimTime west_to_east = TransferTime(west, east, 1000);
  EXPECT_GE(west_to_east, 250 * kMillisecond);
  EXPECT_GT(plan.SegmentsDelayedRouting(), 0u);
  const std::uint64_t delayed_before = plan.SegmentsDelayedRouting();
  const SimTime east_to_west = TransferTime(east, west, 1000);
  EXPECT_LT(east_to_west, 250 * kMillisecond);
  // Only east→west ACKs traverse the hijacked direction, not the data.
  EXPECT_LT(east_to_west, west_to_east);
  EXPECT_GE(plan.SegmentsDelayedRouting(), delayed_before);
}

TEST_F(DetourFixture, LinkDelayBeatsGroupDelay) {
  plan.SetGroupDelay(FaultPlan::GroupOf(west.Ip()), FaultPlan::GroupOf(east.Ip()),
                     400 * kMillisecond);
  plan.SetLinkDelay(west.Ip(), east.Ip(), 50 * kMillisecond);
  const SimTime t = TransferTime(west, east, 500);
  EXPECT_GE(t, 50 * kMillisecond);
  EXPECT_LT(t, 400 * kMillisecond);
}

TEST_F(DetourFixture, DelayPartitionAppliesAndPartialHealClears) {
  const std::uint32_t gw = FaultPlan::GroupOf(west.Ip());
  const std::uint32_t ge = FaultPlan::GroupOf(east.Ip());
  plan.ScheduleDelayPartition({gw}, {ge}, 300 * kMillisecond,
                              100 * kMillisecond, 1 * kSecond);
  sched.RunUntil(500 * kMillisecond);
  EXPECT_EQ(plan.RoutingPartitions(), 0u);
  sched.RunUntil(2 * kSecond);
  EXPECT_EQ(plan.RoutingPartitions(), 1u);
  const SimTime slow = TransferTime(west, east, 500);
  EXPECT_GE(slow, 300 * kMillisecond);

  plan.SchedulePartialHeal({gw}, {ge}, sched.Now() + kSecond);
  sched.RunUntil(sched.Now() + 2 * kSecond);
  const std::uint64_t delayed_before = plan.SegmentsDelayedRouting();
  std::size_t received = 0;
  west.Listen(9100, [&](TcpConnection& conn) {
    conn.SetDataSink([&](bsutil::ByteSpan data) { received += data.size(); });
  });
  TcpConnection* client = east.Connect({west.Ip(), 9100}, nullptr);
  sched.RunUntil(sched.Now() + kSecond);
  ASSERT_NE(client, nullptr);
  client->Send(bsutil::ByteVec(500, 0x62));
  sched.RunAll();
  EXPECT_EQ(received, 500u);
  EXPECT_EQ(plan.SegmentsDelayedRouting(), delayed_before);
}

TEST_F(FaultFixture, ScheduledCrashFiresHooks) {
  std::vector<std::pair<std::string, std::uint32_t>> events;
  plan.on_host_crash = [&](std::uint32_t ip) { events.emplace_back("crash", ip); };
  plan.on_host_restart = [&](std::uint32_t ip) { events.emplace_back("restart", ip); };
  plan.ScheduleCrash(bob.Ip(), 5 * kSecond, 3 * kSecond);
  sched.RunAll();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<std::string, std::uint32_t>{"crash", bob.Ip()}));
  EXPECT_EQ(events[1], (std::pair<std::string, std::uint32_t>{"restart", bob.Ip()}));
  EXPECT_EQ(plan.HostCrashes(), 1u);
}

TEST_F(FaultFixture, ReceiveBufferCapShedsOldestBytes) {
  // Payload arriving with no data sink attached is buffered up to the cap.
  TcpConnection* server_conn = nullptr;
  bob.Listen(8333, [&](TcpConnection& conn) { server_conn = &conn; });
  TcpConnection* client = alice.Connect({0x0a000002, 8333}, nullptr);
  sched.RunUntil(kSecond);
  ASSERT_NE(server_conn, nullptr);
  server_conn->SetReceiveBufferCap(4096);
  client->Send(bsutil::ByteVec(10'000, 0x99));
  sched.RunAll();
  EXPECT_LE(server_conn->RxPendingBytes(), 4096u);
  EXPECT_GT(server_conn->RxPendingShedBytes(), 0u);
  EXPECT_EQ(net.RxPendingShedBytes(), server_conn->RxPendingShedBytes());
  // A late sink drains only what survived the cap.
  bsutil::ByteVec late;
  server_conn->SetDataSink([&](bsutil::ByteSpan data) {
    late.insert(late.end(), data.begin(), data.end());
  });
  EXPECT_EQ(late.size(), 10'000u - server_conn->RxPendingShedBytes());
  EXPECT_EQ(server_conn->RxPendingBytes(), 0u);
}

TEST(FaultDeterminism, SameSeedSameFateSequence) {
  auto run = [](std::uint64_t seed) {
    Scheduler sched;
    Network net(sched);
    FaultPlan plan(sched, seed);
    net.SetFaultPlan(&plan);
    Host a(sched, net, 1);
    Host b(sched, net, 2);
    bsutil::ByteVec received;
    b.Listen(8333, [&](TcpConnection& conn) {
      conn.SetDataSink([&](bsutil::ByteSpan data) {
        received.insert(received.end(), data.begin(), data.end());
      });
    });
    TcpConnection* client = a.Connect({2, 8333}, nullptr);
    sched.RunUntil(kSecond);
    // Faults start after the (unprotected) handshake so `client` stays live.
    FaultSpec storm;
    storm.loss = 0.15;
    storm.duplicate = 0.1;
    storm.reorder = 0.2;
    storm.corrupt = 0.1;
    plan.SetDefaultFaults(storm);
    client->Send(bsutil::ByteVec(40'000, 0x44));
    sched.RunAll();
    return std::tuple{received.size(), plan.SegmentsDroppedLoss(),
                      plan.SegmentsDuplicated(),  plan.SegmentsDelayed(),
                      plan.SegmentsCorrupted(),   net.SegmentsSent(),
                      sched.Now()};
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // and the seed actually matters
}

TEST_F(TcpFixture, IcmpDelivery) {
  struct Sink : Host {
    using Host::Host;
    int packets = 0;
    std::uint64_t batch_packets = 0;
    void OnIcmp(const IcmpPacket&) override { ++packets; }
  };
  Sink sink(sched, net, 0x0a000042);
  IcmpPacket pkt;
  pkt.src_ip = alice.Ip();
  pkt.dst_ip = sink.Ip();
  net.SendIcmp(alice, pkt);
  net.SendIcmpBatch(alice, pkt, 100);
  sched.RunAll();
  EXPECT_EQ(sink.packets, 101);  // batch fans out to OnIcmp by default
  EXPECT_GT(net.BytesDeliveredTo(sink.Ip()), 100 * 64ull);
}

// ---------------------------------------------------------------------------
// Scheduler observability: dispatch counter, queue-depth gauges, profiler

TEST(SchedulerMetrics, DispatchCounterAndQueueGauges) {
  bsobs::MetricsRegistry registry;
  bsim::Scheduler sched;
  sched.AttachMetrics(registry);
  for (int i = 0; i < 5; ++i) {
    sched.After((i + 1) * bsim::kMillisecond, []() {});
  }
  // Depth-peak tracks the un-dispatched backlog.
  EXPECT_EQ(sched.PeakPendingEvents(), 5u);
  sched.RunAll();
  sched.SyncMetrics();
  EXPECT_EQ(registry.GetCounter("bs_sim_events_dispatched_total")->Value(), 5u);
  EXPECT_EQ(registry.GetGauge("bs_sim_queue_depth")->Value(), 0);
  EXPECT_EQ(registry.GetGauge("bs_sim_queue_depth_peak")->Value(), 5);
}

TEST(SchedulerMetrics, ProfilerTimesDispatchStage) {
  bsim::Scheduler sched;
  bsobs::HotpathProfiler prof;
  sched.SetProfiler(&prof);
  int fired = 0;
  for (int i = 0; i < 7; ++i) {
    sched.After(bsim::kMillisecond, [&fired]() { ++fired; });
  }
  sched.RunAll();
  EXPECT_EQ(fired, 7);
  EXPECT_EQ(prof.Stats(bsobs::HotStage::kDispatch).count, 7u);
  // Detaching stops sampling without touching collected data.
  sched.SetProfiler(nullptr);
  sched.After(bsim::kMillisecond, []() {});
  sched.RunAll();
  EXPECT_EQ(prof.Stats(bsobs::HotStage::kDispatch).count, 7u);
}

}  // namespace
