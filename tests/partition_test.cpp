// PartitionMonitor unit tests (pure state machine) plus live-node coverage
// of the tip-probe exchange, the recovery ladder, and partition-aware
// misbehavior damping.
#include <gtest/gtest.h>

#include "attack/attacker.hpp"
#include "attack/crafter.hpp"
#include "chain/miner.hpp"
#include "core/node.hpp"
#include "core/partition.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace bsnet;  // NOLINT
using bsattack::AttackerNode;
using bsattack::AttackSession;
using bsattack::Crafter;

PartitionParams TestParams() {
  PartitionParams p;
  p.expected_block_interval = 3 * bsim::kSecond;
  p.divergence_blocks = 2;
  p.suspicion_high = 0.5;
  p.suspicion_low = 0.2;
  p.ladder_step = 5 * bsim::kSecond;
  return p;
}

// ---------------------------------------------------------------------------
// Monitor: individual signals

TEST(PartitionMonitorTest, StaleSignalRampsWithoutTipAdvance) {
  PartitionMonitor mon(TestParams());
  // Regular cadence: one block every 3 s.
  for (int h = 1; h <= 5; ++h) {
    mon.OnTipAdvance(h * 3 * bsim::kSecond, h);
  }
  bsim::SimTime last = 5 * 3 * bsim::kSecond;
  mon.Update(last + bsim::kSecond, 5);
  EXPECT_DOUBLE_EQ(mon.StaleSignal(), 0.0);  // within one interval: normal
  mon.Update(last + 6 * bsim::kSecond, 5);
  EXPECT_GT(mon.StaleSignal(), 0.0);
  EXPECT_LT(mon.StaleSignal(), 1.0);
  mon.Update(last + 60 * bsim::kSecond, 5);
  EXPECT_DOUBLE_EQ(mon.StaleSignal(), 1.0);  // saturated
}

TEST(PartitionMonitorTest, TipAdvanceResetsStaleness) {
  PartitionMonitor mon(TestParams());
  mon.Update(bsim::kSecond, 0);  // arm
  mon.Update(60 * bsim::kSecond, 0);
  EXPECT_DOUBLE_EQ(mon.StaleSignal(), 1.0);
  // Update() notices the externally advanced tip even without OnTipAdvance.
  mon.Update(61 * bsim::kSecond, 3);
  EXPECT_DOUBLE_EQ(mon.StaleSignal(), 0.0);
}

TEST(PartitionMonitorTest, DivergenceSignalTracksProbeGap) {
  PartitionMonitor mon(TestParams());
  const bsim::SimTime now = 10 * bsim::kSecond;
  mon.OnProbeObservation(now, /*peer=*/7, /*height=*/10);
  mon.Update(now, /*our_height=*/10);
  EXPECT_DOUBLE_EQ(mon.DivergenceSignal(), 0.0);  // level: no divergence
  mon.OnProbeObservation(now, 8, 12);  // gap == divergence_blocks
  mon.Update(now, 10);
  EXPECT_DOUBLE_EQ(mon.DivergenceSignal(), 0.5);
  mon.OnProbeObservation(now, 9, 14);  // gap == 2 × divergence_blocks
  mon.Update(now, 10);
  EXPECT_DOUBLE_EQ(mon.DivergenceSignal(), 1.0);
}

TEST(PartitionMonitorTest, StaleObservationsExpire) {
  PartitionMonitor mon(TestParams());
  mon.OnProbeObservation(bsim::kSecond, 7, 100);
  mon.Update(2 * bsim::kSecond, 0);
  EXPECT_DOUBLE_EQ(mon.DivergenceSignal(), 1.0);
  // Past probe_freshness the observation is pruned and the signal collapses.
  mon.Update(2 * bsim::kSecond + mon.Params().probe_freshness + bsim::kSecond, 0);
  EXPECT_DOUBLE_EQ(mon.DivergenceSignal(), 0.0);
}

TEST(PartitionMonitorTest, ForgettingAPeerDropsItsObservation) {
  PartitionMonitor mon(TestParams());
  mon.OnProbeObservation(bsim::kSecond, 7, 100);
  mon.ForgetPeer(7);
  mon.Update(2 * bsim::kSecond, 0);
  EXPECT_DOUBLE_EQ(mon.DivergenceSignal(), 0.0);
}

TEST(PartitionMonitorTest, DiversityDrawdownAgainstWatermark) {
  PartitionMonitor mon(TestParams());
  mon.NoteNetgroupDiversity(5);
  mon.Update(bsim::kSecond, 0);
  EXPECT_DOUBLE_EQ(mon.DiversitySignal(), 0.0);
  mon.NoteNetgroupDiversity(2);  // three /16 groups sheared off
  mon.Update(2 * bsim::kSecond, 0);
  EXPECT_DOUBLE_EQ(mon.DiversitySignal(), 0.6);
  mon.NoteNetgroupDiversity(5);  // healed: watermark unchanged, signal clears
  mon.Update(3 * bsim::kSecond, 0);
  EXPECT_DOUBLE_EQ(mon.DiversitySignal(), 0.0);
}

TEST(PartitionMonitorTest, MostDivergentPeerIsTheFurthestBehind) {
  PartitionMonitor mon(TestParams());
  const bsim::SimTime now = bsim::kSecond;
  mon.OnProbeObservation(now, 1, 8);
  mon.OnProbeObservation(now, 2, 3);
  mon.OnProbeObservation(now, 3, 15);  // ahead of us: never a rotation victim
  EXPECT_EQ(mon.MostDivergentPeer(10), std::optional<std::uint64_t>(2));
  EXPECT_EQ(mon.MostDivergentPeer(2), std::nullopt);  // nobody trails us
  EXPECT_EQ(mon.BestRemoteHeight(), std::optional<std::int32_t>(15));
}

// ---------------------------------------------------------------------------
// Monitor: hysteresis and the recovery ladder

TEST(PartitionMonitorTest, HysteresisArmsAtHighDisarmsAtLow) {
  PartitionMonitor mon(TestParams());
  const bsim::SimTime t0 = 10 * bsim::kSecond;
  mon.OnProbeObservation(t0, 7, 100);  // divergence 1.0 → suspicion 0.55
  mon.Update(t0, 0);
  EXPECT_TRUE(mon.SuspicionHigh());
  EXPECT_EQ(mon.CurrentStage(), PartitionMonitor::Stage::kFeelerBurst);

  // Mid-band suspicion holds the armed state (no flapping).
  mon.ForgetPeer(7);
  mon.OnProbeObservation(t0, 7, 2);  // gap 2 → divergence 0.5 → ~0.275
  bool recovered = false;
  mon.Update(t0 + bsim::kSecond, 0, &recovered);
  EXPECT_TRUE(mon.SuspicionHigh());
  EXPECT_FALSE(recovered);

  // Tip catches up past every observation: suspicion collapses below low.
  mon.Update(t0 + 2 * bsim::kSecond, 100, &recovered);
  EXPECT_FALSE(mon.SuspicionHigh());
  EXPECT_TRUE(recovered);
  EXPECT_EQ(mon.CurrentStage(), PartitionMonitor::Stage::kNone);
  // The recovery flag fires exactly once.
  mon.Update(t0 + 3 * bsim::kSecond, 100, &recovered);
  EXPECT_FALSE(recovered);
}

TEST(PartitionMonitorTest, LadderEscalatesOneStagePerStep) {
  const PartitionParams params = TestParams();
  PartitionMonitor mon(params);
  const bsim::SimTime t0 = 10 * bsim::kSecond;
  mon.OnProbeObservation(t0, 7, 100);
  auto refresh = [&](bsim::SimTime t) {
    mon.OnProbeObservation(t, 7, 100);  // keep the observation fresh
    mon.Update(t, 0);
  };
  refresh(t0);
  EXPECT_EQ(mon.CurrentStage(), PartitionMonitor::Stage::kFeelerBurst);
  refresh(t0 + params.ladder_step);
  EXPECT_EQ(mon.CurrentStage(), PartitionMonitor::Stage::kAnchorRedial);
  refresh(t0 + 2 * params.ladder_step);
  EXPECT_EQ(mon.CurrentStage(), PartitionMonitor::Stage::kEmergencySlot);
  refresh(t0 + 3 * params.ladder_step);
  EXPECT_EQ(mon.CurrentStage(), PartitionMonitor::Stage::kRotate);
  // Terminal stage: escalation stops at rotation.
  refresh(t0 + 30 * params.ladder_step);
  EXPECT_EQ(mon.CurrentStage(), PartitionMonitor::Stage::kRotate);
}

TEST(PartitionMonitorTest, ResetDropsAllTransientState) {
  PartitionMonitor mon(TestParams());
  mon.NoteNetgroupDiversity(8);
  mon.OnProbeObservation(bsim::kSecond, 7, 100);
  mon.Update(bsim::kSecond, 0);
  EXPECT_TRUE(mon.SuspicionHigh());
  mon.Reset();
  EXPECT_FALSE(mon.SuspicionHigh());
  EXPECT_DOUBLE_EQ(mon.Suspicion(), 0.0);
  EXPECT_EQ(mon.BestRemoteHeight(), std::nullopt);
  mon.NoteNetgroupDiversity(2);  // watermark was cleared: 2 is the new 100%
  mon.Update(2 * bsim::kSecond, 0);
  EXPECT_DOUBLE_EQ(mon.DiversitySignal(), 0.0);
}

// ---------------------------------------------------------------------------
// Live node: probe exchange, suspicion, damping

struct PartitionNodeFixture : ::testing::Test {
  static NodeConfig HardenedConfig() {
    NodeConfig config;
    config.enable_partition_resilience = true;
    config.partition_probe_interval = 2 * bsim::kSecond;
    config.partition_expected_block_interval = 3 * bsim::kSecond;
    config.partition_ladder_step = 5 * bsim::kSecond;
    return config;
  }

  PartitionNodeFixture()
      : net(sched),
        node(sched, net, 0x0a000001, HardenedConfig()),
        attacker(sched, net, 0x0a000002, NodeConfig{}.chain.magic),
        crafter(NodeConfig{}.chain) {
    node.Start();
  }

  AttackSession* ReadySession() {
    AttackSession* session = attacker.OpenSession({0x0a000001, 8333});
    sched.RunUntil(sched.Now() + bsim::kSecond);
    EXPECT_TRUE(session->SessionReady());
    return session;
  }

  void Settle(bsim::SimTime how_long = bsim::kSecond) {
    sched.RunUntil(sched.Now() + how_long);
  }

  int ScoreOf(AttackSession* session) {
    Peer* peer = node.FindPeerByRemote(session->local);
    return peer == nullptr ? -1 : node.Tracker().Score(peer->id);
  }

  bsim::Scheduler sched;
  bsim::Network net;
  Node node;
  AttackerNode attacker;
  Crafter crafter;
};

TEST_F(PartitionNodeFixture, NodeAnswersTipProbeRequests) {
  auto* session = ReadySession();
  std::vector<bsproto::TipProbeMsg> replies;
  session->on_message = [&](bsattack::AttackSession&, const bsproto::Message& m) {
    if (bsproto::MsgTypeOf(m) == bsproto::MsgType::kTipProbe) {
      replies.push_back(std::get<bsproto::TipProbeMsg>(m));
    }
  };
  bsproto::TipProbeMsg probe;
  probe.nonce = 0xabc;
  probe.tips.push_back({node.Chain().TipHeight(), node.Chain().TipHash()});
  attacker.Send(*session, probe);
  Settle();
  // The node answers with its own tip vector, echoing the nonce.
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies.front().nonce, 0xabcu);
  ASSERT_FALSE(replies.front().tips.empty());
  EXPECT_EQ(replies.front().tips.front().height, node.Chain().TipHeight());
}

TEST_F(PartitionNodeFixture, DivergentProbeRaisesSuspicionAndRunsLadder) {
  auto* session = ReadySession();
  EXPECT_DOUBLE_EQ(node.PartitionSuspicion(), 0.0);
  bsproto::TipProbeMsg probe;
  probe.nonce = 0x111;
  probe.tips.push_back({100, crafter.PrevMissingBlock().block.Hash()});
  attacker.Send(*session, probe);
  Settle(3 * bsim::kSecond);  // a maintenance tick fuses the observation
  EXPECT_TRUE(node.Partition().SuspicionHigh());
  EXPECT_GE(node.PartitionSuspicion(), 0.5);
  EXPECT_EQ(node.PartitionSuspectWindows(), 1u);
  EXPECT_GE(node.PartitionRecoveryActions(), 1u);  // feeler burst attempted
  EXPECT_EQ(node.PartitionRecoveries(), 0u);
}

TEST_F(PartitionNodeFixture, ProbesAreSentAndRepliesRecorded) {
  ReadySession();
  Settle(6 * bsim::kSecond);  // a few probe intervals
  EXPECT_GE(node.TipProbesSent(), 2u);
  // The attack harness does not answer probes, so no replies accrue — but
  // sending must not leak suspicion either: the attacker reports nothing.
  EXPECT_EQ(node.TipProbeReplies(), 0u);
  EXPECT_FALSE(node.Partition().SuspicionHigh());
}

TEST_F(PartitionNodeFixture, DampingDefersStaleBlockPenaltyForGoodPeers) {
  auto* session = ReadySession();

  // The peer proves itself with a valid block (good-score credit, tip moves).
  attacker.Send(*session, crafter.ValidBlock(node.Chain().TipHash()));
  Settle();
  ASSERT_EQ(node.Chain().TipHeight(), 1);
  ASSERT_EQ(ScoreOf(session), 0);

  // Calm network: a prev-missing block scores the usual +10.
  attacker.Send(*session, crafter.PrevMissingBlock());
  Settle();
  EXPECT_EQ(ScoreOf(session), 10);
  EXPECT_EQ(node.DeferredPenalties(), 0u);

  // Partition suspected (a far-ahead tip observation lands): the same
  // symptom from the same good-score peer is deferred, not scored.
  bsproto::TipProbeMsg probe;
  probe.nonce = 0x222;
  probe.tips.push_back({200, crafter.PrevMissingBlock().block.Hash()});
  attacker.Send(*session, probe);
  Settle(3 * bsim::kSecond);
  ASSERT_TRUE(node.Partition().SuspicionHigh());
  attacker.Send(*session, crafter.PrevMissingBlock());
  Settle();
  EXPECT_EQ(ScoreOf(session), 10);  // unchanged
  EXPECT_EQ(node.DeferredPenalties(), 1u);
}

TEST_F(PartitionNodeFixture, DampingNeverShieldsZeroCreditPeers) {
  auto* session = ReadySession();
  // Suspicion high, but this peer never delivered a valid block: the
  // damping must not shield it (a defamation-style attacker could otherwise
  // fake a partition to misbehave for free).
  bsproto::TipProbeMsg probe;
  probe.nonce = 0x333;
  probe.tips.push_back({200, crafter.PrevMissingBlock().block.Hash()});
  attacker.Send(*session, probe);
  Settle(3 * bsim::kSecond);
  ASSERT_TRUE(node.Partition().SuspicionHigh());
  attacker.Send(*session, crafter.PrevMissingBlock());
  Settle();
  EXPECT_EQ(ScoreOf(session), 10);
  EXPECT_EQ(node.DeferredPenalties(), 0u);
}

TEST_F(PartitionNodeFixture, DampingRequestsHeadersFromDivergentSender) {
  auto* session = ReadySession();
  int getheaders_seen = 0;
  session->on_message = [&](bsattack::AttackSession&, const bsproto::Message& m) {
    if (bsproto::MsgTypeOf(m) == bsproto::MsgType::kGetHeaders) ++getheaders_seen;
  };

  // Calm network: a prev-missing block scores but triggers no header pull.
  attacker.Send(*session, crafter.PrevMissingBlock());
  Settle();
  EXPECT_EQ(getheaders_seen, 0);

  bsproto::TipProbeMsg probe;
  probe.nonce = 0x444;
  probe.tips.push_back({200, crafter.PrevMissingBlock().block.Hash()});
  attacker.Send(*session, probe);
  Settle(3 * bsim::kSecond);
  ASSERT_TRUE(node.Partition().SuspicionHigh());

  // Suspicion high: the same symptom now also elicits a divergence sync —
  // the node asks the (possibly reconverged) sender for its headers. The
  // penalty still lands because this peer holds no good-score credit.
  attacker.Send(*session, crafter.PrevMissingBlock());
  Settle();
  EXPECT_EQ(getheaders_seen, 1);
  EXPECT_EQ(ScoreOf(session), 20);

  // A second offense inside the per-peer rate-limit window pulls nothing.
  attacker.Send(*session, crafter.PrevMissingBlock());
  Settle();
  EXPECT_EQ(getheaders_seen, 1);
}

TEST_F(PartitionNodeFixture, StockNodeIgnoresPartitionMachinery) {
  // A default-config node must neither probe nor track suspicion.
  NodeConfig stock;
  Node other(sched, net, 0x0a000003, stock);
  other.Start();
  sched.RunUntil(sched.Now() + 10 * bsim::kSecond);
  EXPECT_EQ(other.TipProbesSent(), 0u);
  EXPECT_DOUBLE_EQ(other.PartitionSuspicion(), 0.0);
  other.Stop();
}

}  // namespace
