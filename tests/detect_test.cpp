// Tests for the detection engine: monitor bucketing, feature extraction,
// threshold training, and end-to-end detection of both attacks on the
// simulator (the §VII experiment at reduced scale).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "attack/bmdos.hpp"
#include "attack/crafter.hpp"
#include "attack/defamation.hpp"
#include "attack/traffic.hpp"
#include "core/node.hpp"
#include "detect/engine.hpp"
#include "detect/monitor.hpp"

namespace {

using namespace bsdetect;  // NOLINT
using bsattack::AttackerNode;
using bsattack::MainnetTrafficGenerator;
using bsattack::TrafficConfig;
using bsnet::Node;
using bsnet::NodeConfig;

constexpr std::uint32_t kTargetIp = 0x0a000001;

FeatureWindow MakeWindow(double n, double c, std::map<std::string, double> counts) {
  FeatureWindow w;
  w.window_minutes = 10;
  w.n = n;
  w.c = c;
  w.counts = std::move(counts);
  return w;
}

std::map<std::string, double> NormalMix(double scale = 1.0) {
  return {{"tx", 145 * scale},   {"inv", 78 * scale},  {"getdata", 25 * scale},
          {"addr", 15 * scale},  {"headers", 12 * scale}, {"getheaders", 10 * scale},
          {"ping", 8 * scale},   {"pong", 8 * scale},  {"version", 0.12 * scale},
          {"verack", 0.12 * scale}};
}

std::vector<FeatureWindow> TrainingWindows() {
  std::vector<FeatureWindow> windows;
  bsutil::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const double jitter = 0.9 + 0.2 * rng.NextDouble();
    windows.push_back(MakeWindow(300 * jitter, rng.NextDouble() * 1.5,
                                 NormalMix(jitter)));
  }
  return windows;
}

// ---------------------------------------------------------------------------
// Engine on synthetic windows

TEST(Engine, RequiresAtLeastTwoWindows) {
  StatEngine engine;
  EXPECT_FALSE(engine.Train({MakeWindow(300, 1, NormalMix())}));
  EXPECT_FALSE(engine.Trained());
}

TEST(Engine, TrainsThresholdEnvelope) {
  StatEngine engine;
  ASSERT_TRUE(engine.Train(TrainingWindows()));
  const Profile& p = engine.GetProfile();
  EXPECT_GT(p.tau_n_high, 300.0);
  EXPECT_LT(p.tau_n_low, 300.0);
  EXPECT_GT(p.tau_c_high, 0.0);
  EXPECT_EQ(p.tau_c_low, 0.0);
  EXPECT_GT(p.tau_lambda, 0.9);
  EXPECT_LT(p.tau_lambda, 1.0);
}

TEST(Engine, NormalWindowPassesAfterTraining) {
  StatEngine engine;
  ASSERT_TRUE(engine.Train(TrainingWindows()));
  const auto result = engine.Detect(MakeWindow(310, 1.0, NormalMix(1.05)));
  EXPECT_FALSE(result.anomalous);
  EXPECT_GT(result.rho, engine.GetProfile().tau_lambda);
}

TEST(Engine, PingFloodWindowDetectedAsBmDos) {
  StatEngine engine;
  ASSERT_TRUE(engine.Train(TrainingWindows()));
  auto counts = NormalMix();
  counts["ping"] += 15'000 * 10;  // the paper's ~15000/min flood
  const auto result = engine.Detect(MakeWindow(15'300, 1.0, std::move(counts)));
  EXPECT_TRUE(result.anomalous);
  EXPECT_TRUE(result.bmdos_suspected);
  EXPECT_FALSE(result.defamation_suspected);
  // The distribution collapses onto PING: correlation ≈ 0 (paper: 0.05).
  EXPECT_LT(result.rho, 0.2);
}

TEST(Engine, DefamationWindowDetectedViaReconnectRate) {
  StatEngine engine;
  ASSERT_TRUE(engine.Train(TrainingWindows()));
  auto counts = NormalMix();
  counts["version"] += 5.3 * 10;  // elevated handshake traffic
  counts["verack"] += 5.3 * 10;
  const auto result = engine.Detect(MakeWindow(310, /*c=*/5.3, std::move(counts)));
  EXPECT_TRUE(result.anomalous);
  EXPECT_TRUE(result.defamation_suspected);
  // Distribution stays far closer to normal than under BM-DoS (paper: 0.88
  // vs 0.05).
  EXPECT_GT(result.rho, 0.5);
}

TEST(Engine, RateDropBelowEnvelopeAlsoFlags) {
  StatEngine engine;
  ASSERT_TRUE(engine.Train(TrainingWindows()));
  const auto result = engine.Detect(MakeWindow(5, 0.0, NormalMix(0.02)));
  EXPECT_TRUE(result.anomalous);
}

TEST(Engine, AlertCallbackFires) {
  StatEngine engine;
  ASSERT_TRUE(engine.Train(TrainingWindows()));
  int alerts = 0;
  engine.on_alert = [&](const DetectionResult&) { ++alerts; };
  auto counts = NormalMix();
  counts["ping"] += 100'000;
  engine.DetectAndAlert(MakeWindow(12'000, 0.5, counts));
  engine.DetectAndAlert(MakeWindow(305, 0.5, NormalMix()));
  EXPECT_EQ(alerts, 1);
}

TEST(Engine, UntrainedDetectIsInert) {
  StatEngine engine;
  const auto result = engine.Detect(MakeWindow(1e6, 100, NormalMix()));
  EXPECT_FALSE(result.anomalous);
}

// ---------------------------------------------------------------------------
// Monitor on a live node

struct MonitorFixture : ::testing::Test {
  MonitorFixture() : net(sched), node(sched, net, kTargetIp, NodeConfig{}) {
    node.Start();
  }
  bsim::Scheduler sched;
  bsim::Network net;
  Node node;
};

TEST_F(MonitorFixture, CountsMessagesPerMinute) {
  Monitor monitor(node);
  AttackerNode attacker(sched, net, 0x0a000002, node.Config().chain.magic);
  auto* session = attacker.OpenSession({kTargetIp, 8333});
  sched.RunUntil(bsim::kSecond);
  ASSERT_TRUE(session->SessionReady());
  for (int i = 0; i < 30; ++i) attacker.Send(*session, bsproto::PingMsg{static_cast<std::uint64_t>(i)});
  sched.RunUntil(2 * bsim::kMinute);

  // Handshake (version+verack) plus 30 pings.
  EXPECT_EQ(monitor.TotalMessages(), 32u);
  const FeatureWindow window = monitor.Window(sched.Now(), 2);
  EXPECT_NEAR(window.n, 16.0, 1.0);
  EXPECT_EQ(window.counts.at("ping"), 30.0);
}

TEST_F(MonitorFixture, ChainsPreexistingHooks) {
  int external_count = 0;
  node.on_message = [&](const bsnet::Peer&, bsproto::MsgType, std::size_t) {
    ++external_count;
  };
  Monitor monitor(node);
  AttackerNode attacker(sched, net, 0x0a000002, node.Config().chain.magic);
  auto* session = attacker.OpenSession({kTargetIp, 8333});
  sched.RunUntil(bsim::kSecond);
  attacker.Send(*session, bsproto::PingMsg{1});
  sched.RunUntil(2 * bsim::kSecond);
  EXPECT_GE(external_count, 3);  // version + verack + ping
  EXPECT_EQ(monitor.TotalMessages(), static_cast<std::uint64_t>(external_count));
}

TEST_F(MonitorFixture, AllWindowsSplitsRecording) {
  Monitor monitor(node);
  AttackerNode attacker(sched, net, 0x0a000002, node.Config().chain.magic);
  auto* session = attacker.OpenSession({kTargetIp, 8333});
  sched.RunUntil(bsim::kSecond);
  // One ping per minute for 9 minutes.
  for (int minute = 0; minute < 9; ++minute) {
    attacker.Send(*session, bsproto::PingMsg{static_cast<std::uint64_t>(minute)});
    sched.RunUntil(sched.Now() + bsim::kMinute);
  }
  const auto windows = monitor.AllWindows(3);
  EXPECT_EQ(windows.size(), 3u);
  for (const auto& w : windows) EXPECT_GT(w.n, 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end: train on simulated Mainnet, detect live attacks (§VII scaled
// down — minutes instead of 35 hours)

struct EndToEndDetection : ::testing::Test {
  void SetUp() override {
    net = std::make_unique<bsim::Network>(sched);
    NodeConfig config;
    config.target_outbound = 8;
    target = std::make_unique<Node>(sched, *net, kTargetIp, config);
    for (int i = 0; i < 30; ++i) {
      NodeConfig pc;
      pc.target_outbound = 0;
      auto peer = std::make_unique<Node>(sched, *net, 0x0a000100 + i, pc);
      peer->Start();
      target->AddKnownAddress({peer->Ip(), 8333});
      peers.push_back(peer.get());
      peer_storage.push_back(std::move(peer));
    }
    target->Start();
    sched.RunUntil(10 * bsim::kSecond);
    ASSERT_EQ(target->OutboundCount(), 8u);

    monitor = std::make_unique<Monitor>(*target);
    traffic = std::make_unique<MainnetTrafficGenerator>(sched, peers, *target,
                                                        TrafficConfig{});
    traffic->Start();
    // Train on 40 minutes of normal traffic, 4-minute windows.
    sched.RunUntil(sched.Now() + 40 * bsim::kMinute);
    ASSERT_TRUE(engine.Train(monitor->AllWindows(4)));
  }

  bsim::Scheduler sched;
  std::unique_ptr<bsim::Network> net;
  std::unique_ptr<Node> target;
  std::vector<std::unique_ptr<Node>> peer_storage;
  std::vector<Node*> peers;
  std::unique_ptr<Monitor> monitor;
  std::unique_ptr<MainnetTrafficGenerator> traffic;
  StatEngine engine;
};

TEST_F(EndToEndDetection, NormalTrafficStaysQuiet) {
  sched.RunUntil(sched.Now() + 8 * bsim::kMinute);
  const auto result = engine.Detect(monitor->Window(sched.Now(), 4));
  EXPECT_FALSE(result.anomalous);
}

TEST_F(EndToEndDetection, LivePingFloodDetected) {
  AttackerNode attacker(sched, *net, 0x0a000002, target->Config().chain.magic);
  bsattack::Crafter crafter(target->Config().chain);
  bsattack::BmDosConfig config;
  config.payload = bsattack::BmDosConfig::Payload::kPing;
  config.rate_msgs_per_sec = 250;  // the paper's ~15000 msgs/min flood
  bsattack::BmDosAttack attack(attacker, {kTargetIp, 8333}, crafter, config);
  attack.Start();
  sched.RunUntil(sched.Now() + 6 * bsim::kMinute);
  attack.Stop();

  const auto result = engine.Detect(monitor->Window(sched.Now(), 4));
  EXPECT_TRUE(result.anomalous);
  EXPECT_TRUE(result.bmdos_suspected);
  EXPECT_GT(result.n, engine.GetProfile().tau_n_high);
  EXPECT_LT(result.rho, engine.GetProfile().tau_lambda);
}

TEST_F(EndToEndDetection, LiveDefamationDetectedViaReconnectRate) {
  // Repeatedly defame the target's outbound peers: ban each current outbound
  // identifier so the target keeps reconnecting. We drive the bans directly
  // through the misbehavior path (injected segwit-invalid TX per Algorithm 1
  // is exercised in attack_test; here the focus is the detection signal).
  bsattack::AttackerNode attacker(sched, *net, 0x0a000050,
                                  target->Config().chain.magic);
  bsattack::Crafter crafter(target->Config().chain);
  std::vector<std::unique_ptr<bsattack::PostConnectionDefamation>> defamations;
  for (int round = 0; round < 40; ++round) {
    const bsnet::Peer* outbound = nullptr;
    for (const bsnet::Peer* p : target->Peers()) {
      if (!p->inbound && p->HandshakeComplete() &&
          !target->Bans().IsBanned(p->remote, sched.Now())) {
        outbound = p;
        break;
      }
    }
    if (outbound != nullptr) {
      auto defamation = std::make_unique<bsattack::PostConnectionDefamation>(
          attacker, outbound->conn->Local(), outbound->remote);
      defamation->Arm({bsproto::EncodeMessage(target->Config().chain.magic,
                                              crafter.SegwitInvalidTx())});
      defamations.push_back(std::move(defamation));
    }
    sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
  }

  const auto result = engine.Detect(monitor->Window(sched.Now(), 4));
  EXPECT_TRUE(result.anomalous);
  EXPECT_TRUE(result.defamation_suspected);
  EXPECT_GT(result.c, engine.GetProfile().tau_c_high);
}

}  // namespace

// NOTE: appended tests for the byte-rate extension feature (b): the paper's
// n feature counts only decoded messages, so a bogus-BLOCK flood (dropped at
// the checksum gate) is invisible to it; b sees every wire frame.
namespace {

TEST_F(EndToEndDetection, BogusBlockFloodInvisibleToNButCaughtByB) {
  AttackerNode attacker(sched, *net, 0x0a000002, target->Config().chain.magic);
  bsattack::Crafter crafter(target->Config().chain);
  bsattack::BmDosConfig config;
  config.payload = bsattack::BmDosConfig::Payload::kBogusBlock;
  config.rate_msgs_per_sec = 250;
  bsattack::BmDosAttack attack(attacker, {kTargetIp, 8333}, crafter, config);
  attack.Start();
  sched.RunUntil(sched.Now() + 6 * bsim::kMinute);
  attack.Stop();

  const auto window = monitor->Window(sched.Now(), 4);
  const auto result = engine.Detect(window);

  // The flood frames never became messages...
  EXPECT_GT(target->FramesDroppedBadChecksum(), 10'000u);
  EXPECT_LE(result.n, engine.GetProfile().tau_n_high * 1.1)
      << "bogus frames unexpectedly counted as messages";
  // ...but the byte rate exploded (60 kB * 250/s vs a few kB/s of normal
  // traffic), so the extension feature raises the alarm.
  EXPECT_GT(result.b, engine.GetProfile().tau_b_high * 10);
  EXPECT_TRUE(result.anomalous);
  EXPECT_TRUE(result.bmdos_suspected);
}

TEST_F(EndToEndDetection, ByteEnvelopeTrainedFromNormalTraffic) {
  const auto& profile = engine.GetProfile();
  EXPECT_GT(profile.tau_b_high, profile.tau_b_low);
  EXPECT_GT(profile.tau_b_low, 0.0);
  // Normal traffic stays inside the byte envelope.
  sched.RunUntil(sched.Now() + 6 * bsim::kMinute);
  const auto result = engine.Detect(monitor->Window(sched.Now(), 4));
  EXPECT_FALSE(result.anomalous);
  EXPECT_GE(result.b, profile.tau_b_low);
  EXPECT_LE(result.b, profile.tau_b_high);
}

}  // namespace

// NOTE: appended test for the Fig. 9 Dataset export.
namespace {

TEST_F(MonitorFixture, ExportsCsvDataset) {
  Monitor monitor(node);
  AttackerNode attacker(sched, net, 0x0a000002, node.Config().chain.magic);
  auto* session = attacker.OpenSession({kTargetIp, 8333});
  sched.RunUntil(bsim::kSecond);
  for (int i = 0; i < 5; ++i) {
    attacker.Send(*session, bsproto::PingMsg{static_cast<std::uint64_t>(i)});
  }
  sched.RunUntil(2 * bsim::kMinute);

  const std::string path = ::testing::TempDir() + "/monitor_dataset.csv";
  ASSERT_TRUE(monitor.ExportCsv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[256] = {};
  ASSERT_NE(std::fgets(header, sizeof(header), f), nullptr);
  std::fclose(f);
  const std::string head(header);
  EXPECT_NE(head.find("minute,total,frame_bytes,reconnects"), std::string::npos);
  EXPECT_NE(head.find("ping"), std::string::npos);
  EXPECT_NE(head.find("version"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
