// Tests for bschain: transaction/block validation (each failure mode),
// chainstate contextual acceptance (prev-missing / prev-invalid /
// cached-invalid), mempool admission, PoW, and mining.
#include <gtest/gtest.h>

#include "chain/chainstate.hpp"
#include "chain/mempool.hpp"
#include "chain/miner.hpp"
#include "chain/pow.hpp"
#include "chain/validation.hpp"
#include "util/rng.hpp"

namespace {

using namespace bschain;  // NOLINT
using bscrypto::Hash256;

ChainParams Params() { return ChainParams{}; }

Transaction SimpleTx(int salt = 0) {
  Transaction tx;
  TxIn in;
  in.prevout.txid.Data()[0] = static_cast<std::uint8_t>(1 + salt);
  in.prevout.index = 0;
  in.script_sig = bsutil::ToBytes("sig");
  tx.inputs.push_back(in);
  tx.outputs.push_back({1000 + salt, bsutil::ToBytes("out")});
  return tx;
}

Block MineChild(const Hash256& prev, const ChainParams& params, std::uint64_t nonce) {
  auto block = MineBlock(BuildBlockTemplate(prev, 1'600'000'500, {}, params, nonce),
                         params);
  EXPECT_TRUE(block.has_value());
  return *block;
}

// ---------------------------------------------------------------------------
// Transaction validation

TEST(TxValidation, ValidTransactionPasses) {
  EXPECT_EQ(CheckTransaction(SimpleTx()), TxResult::kOk);
}

TEST(TxValidation, NoInputsRejected) {
  Transaction tx = SimpleTx();
  tx.inputs.clear();
  EXPECT_EQ(CheckTransaction(tx), TxResult::kNoInputs);
}

TEST(TxValidation, NoOutputsRejected) {
  Transaction tx = SimpleTx();
  tx.outputs.clear();
  EXPECT_EQ(CheckTransaction(tx), TxResult::kNoOutputs);
}

TEST(TxValidation, NegativeValueRejected) {
  Transaction tx = SimpleTx();
  tx.outputs[0].value = -1;
  EXPECT_EQ(CheckTransaction(tx), TxResult::kValueOutOfRange);
}

TEST(TxValidation, ValueAboveMaxMoneyRejected) {
  Transaction tx = SimpleTx();
  tx.outputs[0].value = kMaxMoney + 1;
  EXPECT_EQ(CheckTransaction(tx), TxResult::kValueOutOfRange);
}

TEST(TxValidation, SummedOverflowRejected) {
  Transaction tx = SimpleTx();
  tx.outputs[0].value = kMaxMoney;
  tx.outputs.push_back({kMaxMoney, bsutil::ToBytes("x")});
  EXPECT_EQ(CheckTransaction(tx), TxResult::kValueOutOfRange);
}

TEST(TxValidation, DuplicateInputsRejected) {
  Transaction tx = SimpleTx();
  tx.inputs.push_back(tx.inputs[0]);
  EXPECT_EQ(CheckTransaction(tx), TxResult::kDuplicateInputs);
}

TEST(TxValidation, NullPrevoutOutsideCoinbaseRejected) {
  Transaction tx = SimpleTx();
  tx.inputs[0].prevout = OutPoint{};
  // A lone-null-input tx is a coinbase shape, rejected when not allowed.
  EXPECT_EQ(CheckTransaction(tx, /*allow_coinbase=*/false), TxResult::kNullPrevout);
}

TEST(TxValidation, CoinbaseAllowedWhenPermitted) {
  Transaction tx = SimpleTx();
  tx.inputs[0].prevout = OutPoint{};
  tx.inputs[0].script_sig = bsutil::ToBytes("coinbase!");
  EXPECT_EQ(CheckTransaction(tx, /*allow_coinbase=*/true), TxResult::kOk);
}

TEST(TxValidation, CoinbaseScriptTooShortRejected) {
  Transaction tx = SimpleTx();
  tx.inputs[0].prevout = OutPoint{};
  tx.inputs[0].script_sig = {0x01};
  EXPECT_EQ(CheckTransaction(tx, true), TxResult::kBadCoinbaseScript);
}

TEST(TxValidation, SegwitFailingWitnessMarkerRejected) {
  Transaction tx = SimpleTx();
  tx.witness.push_back({0x00});
  EXPECT_EQ(CheckTransaction(tx), TxResult::kSegwitInvalid);
}

TEST(TxValidation, SegwitEmptyWitnessItemRejected) {
  Transaction tx = SimpleTx();
  tx.witness.push_back({0x01});
  tx.inputs.push_back(SimpleTx(5).inputs[0]);
  tx.witness.push_back({});  // second input's witness empty
  EXPECT_EQ(CheckTransaction(tx), TxResult::kSegwitInvalid);
}

TEST(TxValidation, SegwitOversizeItemRejected) {
  Transaction tx = SimpleTx();
  tx.witness.push_back(bsutil::ByteVec(kMaxWitnessItemSize + 1, 0x01));
  EXPECT_EQ(CheckTransaction(tx), TxResult::kSegwitInvalid);
}

TEST(TxValidation, SegwitCountMismatchRejected) {
  Transaction tx = SimpleTx();
  tx.witness.push_back({0x01});
  tx.witness.push_back({0x02});  // two witnesses, one input
  EXPECT_EQ(CheckTransaction(tx), TxResult::kSegwitInvalid);
}

TEST(TxValidation, ValidWitnessPasses) {
  Transaction tx = SimpleTx();
  tx.witness.push_back({0x01, 0x02, 0x03});
  EXPECT_EQ(CheckTransaction(tx), TxResult::kOk);
}

TEST(Transaction, TxidIgnoresWitness) {
  Transaction base = SimpleTx();
  Transaction with_witness = base;
  with_witness.witness.push_back({0x01});
  EXPECT_EQ(base.Txid(), with_witness.Txid());
  EXPECT_NE(with_witness.Txid(), with_witness.Wtxid());
}

TEST(Transaction, WitnessSerializationRoundTrip) {
  Transaction tx = SimpleTx();
  tx.witness.push_back({0xaa, 0xbb});
  bsutil::Writer w;
  tx.Serialize(w);
  bsutil::Reader r(w.Data());
  const Transaction parsed = Transaction::Deserialize(r);
  EXPECT_EQ(parsed, tx);
  EXPECT_TRUE(parsed.HasWitness());
}

// ---------------------------------------------------------------------------
// PoW

TEST(Pow, GenesisSatisfiesOwnTarget) {
  const ChainParams params = Params();
  const Block genesis = params.GenesisBlock();
  EXPECT_TRUE(CheckProofOfWork(genesis.Hash(), genesis.header.bits, params));
}

TEST(Pow, ImpossibleTargetFails) {
  const ChainParams params = Params();
  const Block genesis = params.GenesisBlock();
  EXPECT_FALSE(CheckProofOfWork(genesis.Hash(), 0x03000001, params));
}

TEST(Pow, TargetAboveLimitRejected) {
  ChainParams params = Params();
  params.pow_limit_bits = 0x1d00ffff;  // mainnet-strength limit
  // 0x207fffff is far easier than the limit: must be rejected as too easy.
  EXPECT_FALSE(CheckProofOfWork(Hash256{}, 0x207fffff, params));
}

TEST(Pow, ZeroBitsRejected) {
  const ChainParams params = Params();
  EXPECT_FALSE(CheckProofOfWork(Hash256{}, 0, params));
}

TEST(Pow, GenesisIsDeterministic) {
  const ChainParams params = Params();
  EXPECT_EQ(params.GenesisBlock().Hash(), params.GenesisBlock().Hash());
}

// ---------------------------------------------------------------------------
// Block validation

TEST(BlockValidation, MinedBlockPasses) {
  const ChainParams params = Params();
  const Block block = MineChild(params.GenesisBlock().Hash(), params, 1);
  EXPECT_EQ(CheckBlock(block, params), BlockResult::kOk);
}

TEST(BlockValidation, EmptyBlockRejected) {
  const ChainParams params = Params();
  Block block;
  EXPECT_EQ(CheckBlock(block, params), BlockResult::kBadCoinbase);
}

TEST(BlockValidation, MerkleMismatchIsMutated) {
  const ChainParams params = Params();
  Block block = MineChild(params.GenesisBlock().Hash(), params, 2);
  block.txs.push_back(SimpleTx());  // header merkle root now stale
  while (!CheckProofOfWork(block.Hash(), block.header.bits, params)) {
    ++block.header.nonce;
  }
  EXPECT_EQ(CheckBlock(block, params), BlockResult::kMutated);
}

TEST(BlockValidation, DuplicateTxPairIsMutated) {
  const ChainParams params = Params();
  Block block = MineChild(params.GenesisBlock().Hash(), params, 3);
  // Four transactions so the identical pair lands on a pair boundary
  // (positions 2 and 3) — the CVE-2012-2459 duplicate pattern.
  block.txs.push_back(SimpleTx(7));
  block.txs.push_back(SimpleTx(1));
  block.txs.push_back(SimpleTx(1));  // identical consecutive txids
  block.header.merkle_root = block.ComputeMerkleRoot();
  while (!CheckProofOfWork(block.Hash(), block.header.bits, params)) {
    ++block.header.nonce;
  }
  EXPECT_EQ(CheckBlock(block, params), BlockResult::kMutated);
}

TEST(BlockValidation, MissingCoinbaseRejected) {
  const ChainParams params = Params();
  Block block = MineChild(params.GenesisBlock().Hash(), params, 4);
  block.txs[0] = SimpleTx();  // not a coinbase
  block.header.merkle_root = block.ComputeMerkleRoot();
  while (!CheckProofOfWork(block.Hash(), block.header.bits, params)) {
    ++block.header.nonce;
  }
  EXPECT_EQ(CheckBlock(block, params), BlockResult::kBadCoinbase);
}

TEST(BlockValidation, SecondCoinbaseRejected) {
  const ChainParams params = Params();
  Block block = MineChild(params.GenesisBlock().Hash(), params, 5);
  Transaction cb2;
  TxIn in;
  in.prevout = OutPoint{};
  in.script_sig = bsutil::ToBytes("cb2");
  cb2.inputs.push_back(in);
  cb2.outputs.push_back({1, bsutil::ToBytes("x")});
  block.txs.push_back(cb2);
  block.header.merkle_root = block.ComputeMerkleRoot();
  while (!CheckProofOfWork(block.Hash(), block.header.bits, params)) {
    ++block.header.nonce;
  }
  EXPECT_EQ(CheckBlock(block, params), BlockResult::kBadCoinbase);
}

TEST(BlockValidation, ConsensusInvalidTxRejected) {
  const ChainParams params = Params();
  Block block = MineChild(params.GenesisBlock().Hash(), params, 6);
  Transaction bad = SimpleTx();
  bad.witness.push_back({0x00});
  block.txs.push_back(bad);
  block.header.merkle_root = block.ComputeMerkleRoot();
  while (!CheckProofOfWork(block.Hash(), block.header.bits, params)) {
    ++block.header.nonce;
  }
  EXPECT_EQ(CheckBlock(block, params), BlockResult::kConsensusInvalid);
}

TEST(BlockValidation, InvalidPowRejected) {
  const ChainParams params = Params();
  Block block = MineChild(params.GenesisBlock().Hash(), params, 7);
  block.header.bits = 0x03000001;
  EXPECT_EQ(CheckBlock(block, params), BlockResult::kInvalidPow);
}

// ---------------------------------------------------------------------------
// ChainState

TEST(ChainStateTest, StartsAtGenesis) {
  const ChainParams params = Params();
  ChainState chain(params);
  EXPECT_EQ(chain.TipHeight(), 0);
  EXPECT_EQ(chain.TipHash(), params.GenesisBlock().Hash());
  EXPECT_TRUE(chain.HaveBlock(params.GenesisBlock().Hash()));
}

TEST(ChainStateTest, AcceptsChildAndAdvancesTip) {
  const ChainParams params = Params();
  ChainState chain(params);
  const Block child = MineChild(chain.TipHash(), params, 10);
  EXPECT_EQ(chain.AcceptBlock(child), BlockResult::kOk);
  EXPECT_EQ(chain.TipHeight(), 1);
  EXPECT_EQ(chain.TipHash(), child.Hash());
}

TEST(ChainStateTest, DuplicateAcceptIsIdempotent) {
  const ChainParams params = Params();
  ChainState chain(params);
  const Block child = MineChild(chain.TipHash(), params, 11);
  EXPECT_EQ(chain.AcceptBlock(child), BlockResult::kOk);
  EXPECT_EQ(chain.AcceptBlock(child), BlockResult::kDuplicate);
  EXPECT_EQ(chain.TipHeight(), 1);
}

TEST(ChainStateTest, PrevMissingDetected) {
  const ChainParams params = Params();
  ChainState chain(params);
  Hash256 unknown;
  unknown.Data()[5] = 0x44;
  const Block orphan = MineChild(unknown, params, 12);
  EXPECT_EQ(chain.AcceptBlock(orphan), BlockResult::kPrevMissing);
  EXPECT_EQ(chain.TipHeight(), 0);
}

TEST(ChainStateTest, InvalidBlockIsCachedInvalidOnRepeat) {
  const ChainParams params = Params();
  ChainState chain(params);
  Block bad = MineChild(chain.TipHash(), params, 13);
  bad.txs.push_back(SimpleTx());  // mutate
  while (!CheckProofOfWork(bad.Hash(), bad.header.bits, params)) ++bad.header.nonce;
  EXPECT_EQ(chain.AcceptBlock(bad), BlockResult::kMutated);
  // The rejection is cached by hash — the repeat offer hits the cache.
  EXPECT_EQ(chain.AcceptBlock(bad), BlockResult::kCachedInvalid);
  EXPECT_TRUE(chain.IsKnownInvalid(bad.Hash()));
}

TEST(ChainStateTest, ChildOfInvalidBlockIsPrevInvalid) {
  const ChainParams params = Params();
  ChainState chain(params);
  Block bad = MineChild(chain.TipHash(), params, 14);
  bad.txs.push_back(SimpleTx());
  while (!CheckProofOfWork(bad.Hash(), bad.header.bits, params)) ++bad.header.nonce;
  ASSERT_EQ(chain.AcceptBlock(bad), BlockResult::kMutated);

  const Block child = MineChild(bad.Hash(), params, 15);
  EXPECT_EQ(chain.AcceptBlock(child), BlockResult::kPrevInvalid);
}

TEST(ChainStateTest, ForkDoesNotRegressTip) {
  const ChainParams params = Params();
  ChainState chain(params);
  const Block a = MineChild(chain.TipHash(), params, 16);
  const Block b = MineChild(chain.TipHash(), params, 17);  // sibling fork
  ASSERT_EQ(chain.AcceptBlock(a), BlockResult::kOk);
  const Hash256 tip = chain.TipHash();
  ASSERT_EQ(chain.AcceptBlock(b), BlockResult::kOk);
  EXPECT_EQ(chain.TipHash(), tip);  // same height does not displace the tip
  EXPECT_EQ(chain.TipHeight(), 1);
}

TEST(ChainStateTest, HeaderAcceptance) {
  const ChainParams params = Params();
  ChainState chain(params);
  const Block child = MineChild(chain.TipHash(), params, 18);
  EXPECT_EQ(chain.AcceptHeader(child.header), BlockResult::kOk);
  EXPECT_TRUE(chain.HaveHeader(child.Hash()));
  EXPECT_FALSE(chain.HaveBlock(child.Hash()));  // header-only
}

TEST(ChainStateTest, HeaderPrevMissing) {
  const ChainParams params = Params();
  ChainState chain(params);
  BlockHeader header;
  header.prev.Data()[3] = 0x99;
  header.bits = params.target_bits;
  while (!CheckProofOfWork(header.Hash(), header.bits, params)) ++header.nonce;
  EXPECT_EQ(chain.AcceptHeader(header), BlockResult::kPrevMissing);
}

TEST(ChainStateTest, HeadersAfterWalksActiveChain) {
  const ChainParams params = Params();
  ChainState chain(params);
  std::vector<Hash256> hashes = {chain.TipHash()};
  for (int i = 0; i < 5; ++i) {
    const Block child = MineChild(chain.TipHash(), params, 20 + i);
    ASSERT_EQ(chain.AcceptBlock(child), BlockResult::kOk);
    hashes.push_back(child.Hash());
  }
  // Everything above genesis:
  const auto headers = chain.HeadersAfter(hashes[0], 2000);
  ASSERT_EQ(headers.size(), 5u);
  EXPECT_EQ(headers[0].Hash(), hashes[1]);
  EXPECT_EQ(headers[4].Hash(), hashes[5]);
  // Truncation:
  EXPECT_EQ(chain.HeadersAfter(hashes[0], 2).size(), 2u);
  // From mid-chain:
  EXPECT_EQ(chain.HeadersAfter(hashes[3], 2000).size(), 2u);
}

// ---------------------------------------------------------------------------
// Mempool

TEST(MempoolTest, AcceptAndLookup) {
  Mempool pool;
  const Transaction tx = SimpleTx();
  EXPECT_EQ(pool.AcceptTransaction(tx), TxResult::kOk);
  EXPECT_TRUE(pool.Contains(tx.Txid()));
  EXPECT_EQ(pool.Size(), 1u);
  const auto got = pool.Get(tx.Txid());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, tx);
}

TEST(MempoolTest, RejectsInvalid) {
  Mempool pool;
  Transaction bad = SimpleTx();
  bad.witness.push_back({0x00});
  EXPECT_EQ(pool.AcceptTransaction(bad), TxResult::kSegwitInvalid);
  EXPECT_EQ(pool.Size(), 0u);
}

TEST(MempoolTest, DuplicateAcceptIdempotent) {
  Mempool pool;
  const Transaction tx = SimpleTx();
  EXPECT_EQ(pool.AcceptTransaction(tx), TxResult::kOk);
  EXPECT_EQ(pool.AcceptTransaction(tx), TxResult::kOk);
  EXPECT_EQ(pool.Size(), 1u);
}

TEST(MempoolTest, RemoveAndClear) {
  Mempool pool;
  const Transaction a = SimpleTx(1), b = SimpleTx(2);
  pool.AcceptTransaction(a);
  pool.AcceptTransaction(b);
  pool.Remove(a.Txid());
  EXPECT_FALSE(pool.Contains(a.Txid()));
  EXPECT_EQ(pool.Size(), 1u);
  pool.Clear();
  EXPECT_EQ(pool.Size(), 0u);
}

TEST(MempoolTest, CollectForBlockHonorsCap) {
  Mempool pool;
  for (int i = 0; i < 10; ++i) pool.AcceptTransaction(SimpleTx(i));
  EXPECT_EQ(pool.CollectForBlock(4).size(), 4u);
  EXPECT_EQ(pool.CollectForBlock(100).size(), 10u);
}

// ---------------------------------------------------------------------------
// Miner

TEST(Miner, TemplateExtendsTip) {
  const ChainParams params = Params();
  const Hash256 prev = params.GenesisBlock().Hash();
  const Block tmpl = BuildBlockTemplate(prev, 1'600'000'600, {SimpleTx()}, params, 1);
  EXPECT_EQ(tmpl.header.prev, prev);
  ASSERT_EQ(tmpl.txs.size(), 2u);
  EXPECT_TRUE(tmpl.txs[0].IsCoinbase());
  EXPECT_EQ(tmpl.header.merkle_root, tmpl.ComputeMerkleRoot());
}

TEST(Miner, DistinctExtraNoncesYieldDistinctBlocks) {
  const ChainParams params = Params();
  const Hash256 prev = params.GenesisBlock().Hash();
  const Block a = MineChild(prev, params, 100);
  const Block b = MineChild(prev, params, 101);
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(Miner, ExhaustionReturnsNullopt) {
  ChainParams params = Params();
  Block tmpl = BuildBlockTemplate(params.GenesisBlock().Hash(), 1'600'000'700, {},
                                  params, 1);
  tmpl.header.bits = 0x03000001;  // unminable target
  EXPECT_FALSE(MineBlock(tmpl, params, /*max_iterations=*/1000).has_value());
}

TEST(Miner, HashRateMeterMeasuresRealHashing) {
  HashRateMeter meter;
  const double rate = meter.Measure(20'000);
  EXPECT_GT(rate, 1'000.0);  // any real machine exceeds 1 kh/s
}

TEST(Miner, InterferenceReducesHashRate) {
  HashRateMeter meter;
  const double clean = meter.Measure(30'000);
  volatile double sink = 0.0;
  const double loaded = meter.Measure(30'000, [&sink]() {
    for (int i = 0; i < 20'000; ++i) sink = sink + i;
  }, /*interference_stride=*/256);
  EXPECT_LT(loaded, clean);
}

}  // namespace

// NOTE: appended tests for block locators (GETHEADERS semantics).
namespace {

using bschain::Block;
using bschain::ChainParams;
using bschain::ChainState;

TEST(Locator, GenesisOnlyChain) {
  const ChainParams params;
  ChainState chain(params);
  const auto locator = chain.GetLocator();
  ASSERT_EQ(locator.size(), 1u);
  EXPECT_EQ(locator[0], params.GenesisBlock().Hash());
}

TEST(Locator, DenseThenExponentialShape) {
  const ChainParams params;
  ChainState chain(params);
  for (int i = 0; i < 40; ++i) {
    const Block child = MineChild(chain.TipHash(), params, 300 + i);
    ASSERT_EQ(chain.AcceptBlock(child), bschain::BlockResult::kOk);
  }
  const auto locator = chain.GetLocator();
  // Dense prefix: the first 10 entries step back one block each.
  ASSERT_GE(locator.size(), 11u);
  EXPECT_EQ(locator[0], chain.TipHash());
  // Sparse tail and genesis last.
  EXPECT_LT(locator.size(), 41u);
  EXPECT_EQ(locator.back(), params.GenesisBlock().Hash());
  // All entries are on the active chain.
  for (const auto& hash : locator) EXPECT_TRUE(chain.IsOnActiveChain(hash));
}

TEST(Locator, HeadersAfterLocatorSkipsUnknownForkPoints) {
  const ChainParams params;
  ChainState chain(params);
  std::vector<bscrypto::Hash256> hashes = {chain.TipHash()};
  for (int i = 0; i < 6; ++i) {
    const Block child = MineChild(chain.TipHash(), params, 400 + i);
    ASSERT_EQ(chain.AcceptBlock(child), bschain::BlockResult::kOk);
    hashes.push_back(child.Hash());
  }
  // Locator: [unknown fork hash, height-3 hash]: the responder must resume
  // from the first entry it recognizes.
  bscrypto::Hash256 unknown;
  unknown.Data()[7] = 0xab;
  const auto headers = chain.HeadersAfterLocator({unknown, hashes[3]}, 2000);
  ASSERT_EQ(headers.size(), 3u);
  EXPECT_EQ(headers[0].Hash(), hashes[4]);
  EXPECT_EQ(headers[2].Hash(), hashes[6]);
}

TEST(Locator, NoCommonPointServesFromGenesis) {
  const ChainParams params;
  ChainState chain(params);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(chain.AcceptBlock(MineChild(chain.TipHash(), params, 500 + i)),
              bschain::BlockResult::kOk);
  }
  bscrypto::Hash256 unknown;
  unknown.Data()[9] = 0xcd;
  EXPECT_EQ(chain.HeadersAfterLocator({unknown}, 2000).size(), 3u);
  EXPECT_EQ(chain.HeadersAfterLocator({}, 2000).size(), 3u);
}

TEST(Locator, IsOnActiveChainRejectsForkBlocks) {
  const ChainParams params;
  ChainState chain(params);
  const Block main1 = MineChild(chain.TipHash(), params, 600);
  const Block fork1 = MineChild(chain.TipHash(), params, 601);
  ASSERT_EQ(chain.AcceptBlock(main1), bschain::BlockResult::kOk);
  ASSERT_EQ(chain.AcceptBlock(fork1), bschain::BlockResult::kOk);
  const Block main2 = MineChild(main1.Hash(), params, 602);
  ASSERT_EQ(chain.AcceptBlock(main2), bschain::BlockResult::kOk);
  EXPECT_TRUE(chain.IsOnActiveChain(main1.Hash()));
  EXPECT_TRUE(chain.IsOnActiveChain(main2.Hash()));
  EXPECT_FALSE(chain.IsOnActiveChain(fork1.Hash()));  // stale sibling
}

}  // namespace
