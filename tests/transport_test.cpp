// Transport seam tests: the SimTransport extraction, the epoll EventLoop,
// the FaultSocketApi syscall shim, and RealTransport driving two full Nodes
// over real loopback sockets — handshake, block relay, polite teardown,
// write-queue shedding, async connect failure, and the bounded
// reconnect-backoff map under dial churn.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <vector>

#include "core/event_loop.hpp"
#include "core/node.hpp"
#include "core/real_transport.hpp"
#include "core/sim_transport.hpp"
#include "sim/faultsock.hpp"
#include "sim/network.hpp"

namespace {

using namespace bsnet;  // NOLINT

constexpr std::uint32_t kLoopback = 0x7f000001;

/// Pumps `loop` until `done()` or ~`budget_ms` of wall time passes.
bool PumpUntil(EventLoop& loop, const std::function<bool()>& done,
               int budget_ms = 3000) {
  const bsim::SimTime deadline = loop.WallNow() + budget_ms * bsim::kMillisecond;
  while (!done()) {
    if (loop.WallNow() >= deadline) return false;
    loop.PumpOnce(10);
  }
  return true;
}

// ---------------------------------------------------------------------------
// SimTransport seam: a Node built over an explicit SimTransport behaves
// identically to the legacy (sched, net, ip) constructor.

TEST(SimTransportSeam, ExplicitTransportMatchesLegacyConstructor) {
  const auto run = [](bool explicit_transport) {
    bsim::Scheduler sched;
    bsim::Network net(sched);
    NodeConfig config;
    std::unique_ptr<SimTransport> ta, tb;
    std::unique_ptr<Node> a, b;
    if (explicit_transport) {
      ta = std::make_unique<SimTransport>(sched, net, 0x0a000001);
      tb = std::make_unique<SimTransport>(sched, net, 0x0a000002);
      a = std::make_unique<Node>(sched, *ta, config);
      b = std::make_unique<Node>(sched, *tb, config);
    } else {
      a = std::make_unique<Node>(sched, net, 0x0a000001, config);
      b = std::make_unique<Node>(sched, net, 0x0a000002, config);
    }
    a->Start();
    b->Start();
    b->ConnectTo({0x0a000001, config.listen_port});
    sched.RunUntil(5 * bsim::kSecond);
    b->MineAndRelay();
    sched.RunUntil(10 * bsim::kSecond);
    return std::tuple{a->Chain().TipHeight(), b->Chain().TipHeight(),
                      a->Peers().size(), b->Peers().size(),
                      sched.ExecutedEvents()};
  };
  const auto legacy = run(false);
  const auto seam = run(true);
  EXPECT_EQ(legacy, seam);
  EXPECT_EQ(std::get<0>(seam), 1);  // the mined block relayed
}

// ---------------------------------------------------------------------------
// EventLoop: scheduler timers on wall time, fd events via epoll.

TEST(EventLoop, SchedulerTimersFireAtWallTime) {
  bsim::Scheduler sched;
  EventLoop loop(sched);
  bool fired = false;
  const bsim::SimTime start = loop.WallNow();
  sched.After(30 * bsim::kMillisecond, [&] { fired = true; });
  ASSERT_TRUE(PumpUntil(loop, [&] { return fired; }, 2000));
  EXPECT_GE(loop.WallNow() - start, 30 * bsim::kMillisecond);
}

TEST(EventLoop, FdReadinessDispatchesHandlers) {
  bsim::Scheduler sched;
  EventLoop loop(sched);
  int fds[2];
  ASSERT_EQ(::pipe2(fds, O_NONBLOCK), 0);
  std::string got;
  ASSERT_TRUE(loop.AddFd(fds[0], EPOLLIN, [&](std::uint32_t) {
    char buf[16];
    const ssize_t n = ::read(fds[0], buf, sizeof buf);
    if (n > 0) got.append(buf, static_cast<std::size_t>(n));
  }));
  ASSERT_EQ(::write(fds[1], "ping", 4), 4);
  ASSERT_TRUE(PumpUntil(loop, [&] { return got.size() == 4; }, 2000));
  EXPECT_EQ(got, "ping");
  loop.DelFd(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// FaultSocketApi: the syscall shim injects exactly the configured failures.

class FaultSocketPair : public ::testing::Test {
 protected:
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds), 0);
    left_ = fds[0];
    right_ = fds[1];
  }
  void TearDown() override {
    ::close(left_);
    ::close(right_);
  }
  int left_ = -1;
  int right_ = -1;
};

TEST_F(FaultSocketPair, PoisonResetFailsEveryLaterOp) {
  bsim::FaultSocketApi api(bsim::RealSocketApi::Instance());
  api.PoisonFd(left_, bsim::FaultSocketApi::Poison::kReset);
  char byte = 'x';
  EXPECT_EQ(api.Send(left_, &byte, 1), -ECONNRESET);
  EXPECT_EQ(api.Recv(left_, &byte, 1), -ECONNRESET);
  EXPECT_EQ(api.SockError(left_), -ECONNRESET);
  // The unpoisoned side still works against the kernel.
  EXPECT_EQ(api.Send(right_, &byte, 1), 1);
}

TEST_F(FaultSocketPair, BlackholeSwallowsWritesAndSilencesReads) {
  bsim::FaultSocketApi api(bsim::RealSocketApi::Instance());
  api.PoisonFd(left_, bsim::FaultSocketApi::Poison::kBlackhole);
  char buf[8] = "hello";
  EXPECT_EQ(api.Send(left_, buf, 5), 5);  // claims success
  EXPECT_EQ(api.Recv(left_, buf, sizeof buf), -EAGAIN);
  // The peer really never sees the bytes: the write was swallowed.
  EXPECT_EQ(api.Recv(right_, buf, sizeof buf), -EAGAIN);
}

TEST_F(FaultSocketPair, RateOneShortIoHalvesEverySend) {
  bsim::FaultSocketApi api(bsim::RealSocketApi::Instance());
  bsim::FaultSocketFaults faults;
  faults.short_io_rate = 1.0;
  api.SetFaults(faults);
  char buf[100] = {};
  EXPECT_EQ(api.Send(left_, buf, 100), 50);
  EXPECT_EQ(api.InjectedShortIo(), 1u);
}

TEST_F(FaultSocketPair, RateOneEagainNeverTouchesTheKernel) {
  bsim::FaultSocketApi api(bsim::RealSocketApi::Instance());
  bsim::FaultSocketFaults faults;
  faults.eagain_rate = 1.0;
  api.SetFaults(faults);
  char byte = 'x';
  EXPECT_EQ(api.Send(left_, &byte, 1), -EAGAIN);
  EXPECT_EQ(api.Recv(right_, &byte, 1), -EAGAIN);
  EXPECT_EQ(api.InjectedEagain(), 2u);
}

TEST(FaultSocket, AcceptFailureDrainsThePendingConnection) {
  bsim::RealSocketApi& real = bsim::RealSocketApi::Instance();
  bsim::FaultSocketApi api(real);
  bsim::FaultSocketFaults faults;
  faults.accept_fail_rate = 1.0;
  api.SetFaults(faults);

  const int listen_fd = real.OpenStream();
  ASSERT_GE(listen_fd, 0);
  ASSERT_EQ(real.Bind(listen_fd, {kLoopback, 0}), 0);
  ASSERT_EQ(real.Listen(listen_fd, 4), 0);
  bsim::SockAddr bound{};
  ASSERT_EQ(real.LocalEndpoint(listen_fd, bound), 0);

  const int client = real.OpenStream();
  ASSERT_GE(client, 0);
  const int rc = real.Connect(client, {kLoopback, bound.port});
  ASSERT_TRUE(rc == 0 || rc == -EINPROGRESS);
  ::usleep(50 * 1000);  // let the kernel finish the loopback handshake

  bsim::SockAddr peer{};
  EXPECT_EQ(api.Accept(listen_fd, peer), -ECONNABORTED);
  EXPECT_EQ(api.InjectedAcceptFails(), 1u);
  // The pending connection was really consumed, not left queued.
  EXPECT_EQ(real.Accept(listen_fd, peer), -EAGAIN);

  real.CloseFd(client);
  real.CloseFd(listen_fd);
}

// ---------------------------------------------------------------------------
// RealTransport: two full Nodes over real loopback sockets.

TEST(RealTransportLoopback, TwoNodesHandshakeRelayABlockAndTearDownPolitely) {
  bsim::Scheduler sched;
  EventLoop loop(sched);
  bsim::RealSocketApi& api = bsim::RealSocketApi::Instance();

  RealTransportConfig rta;  // bind_port in the config is only the identity;
  rta.bind_port = 0;        // Listen(0) lets the kernel pick a free port.
  RealTransportConfig rtb;
  rtb.bind_port = 0;
  RealTransport ta(loop, api, rta);
  RealTransport tb(loop, api, rtb);

  NodeConfig config;
  config.listen_port = 0;
  Node a(sched, ta, config);
  Node b(sched, tb, config);
  a.Start();
  b.Start();
  ASSERT_EQ(ta.LastListenError(), 0);
  ASSERT_EQ(tb.LastListenError(), 0);
  const std::uint16_t port_a = ta.BoundPort(0);
  ASSERT_NE(port_a, 0);

  ASSERT_TRUE(b.ConnectTo({kLoopback, port_a}));
  ASSERT_TRUE(PumpUntil(loop, [&] {
    const auto peers_a = a.Peers();
    const auto peers_b = b.Peers();
    return peers_a.size() == 1 && peers_b.size() == 1 &&
           peers_a[0]->got_verack && peers_b[0]->got_verack;
  })) << "handshake never completed";

  // Real traffic across the socket: a mined block must relay and connect.
  ASSERT_TRUE(b.MineAndRelay().has_value());
  ASSERT_TRUE(PumpUntil(loop, [&] { return a.Chain().TipHeight() == 1; }))
      << "block never relayed";

  // Polite teardown: B closes, A observes EOF and drops the peer.
  b.DisconnectPeer(b.Peers()[0]->id);
  ASSERT_TRUE(PumpUntil(loop, [&] { return a.Peers().empty(); }))
      << "peer teardown never propagated";
  EXPECT_GE(ta.Accepts(), 1u);
  EXPECT_GE(ta.BytesIn(), 1u);

  a.Shutdown();
  b.Shutdown();
}

TEST(RealTransportConnect, RefusalReportsAsynchronouslyAndCountsFailure) {
  bsim::Scheduler sched;
  EventLoop loop(sched);
  bsim::RealSocketApi& api = bsim::RealSocketApi::Instance();

  // A port that was just listening and is now closed: refused, not blackholed.
  const int probe = api.OpenStream();
  ASSERT_GE(probe, 0);
  ASSERT_EQ(api.Bind(probe, {kLoopback, 0}), 0);
  ASSERT_EQ(api.Listen(probe, 1), 0);
  bsim::SockAddr freed{};
  ASSERT_EQ(api.LocalEndpoint(probe, freed), 0);
  api.CloseFd(probe);

  RealTransportConfig rt;
  rt.bind_port = 0;
  rt.connect_timeout = 500 * bsim::kMillisecond;
  RealTransport transport(loop, api, rt);

  TransportConn* conn = transport.Connect({kLoopback, freed.port});
  ASSERT_NE(conn, nullptr);
  bool reported = false;
  bool reported_ok = true;
  conn->on_connected = [&](bool connected) {
    reported = true;
    reported_ok = connected;
  };
  EXPECT_FALSE(reported);  // never synchronous, even for instant refusal
  ASSERT_TRUE(PumpUntil(loop, [&] { return reported; }));
  EXPECT_FALSE(reported_ok);
  EXPECT_GE(transport.ConnectFailures() + transport.ConnectTimeouts(), 1u);
  ASSERT_TRUE(PumpUntil(loop, [&] { return transport.PendingConnects() == 0; }));
}

TEST(RealTransportBackpressure, ShedsOldestWholeFramesAndDrainsIntactOnes) {
  bsim::Scheduler sched;
  EventLoop loop(sched);
  bsim::RealSocketApi& real = bsim::RealSocketApi::Instance();
  bsim::FaultSocketApi fault(real);

  // A raw listener the transport dials; reads happen only at the end.
  const int listen_fd = real.OpenStream();
  ASSERT_GE(listen_fd, 0);
  ASSERT_EQ(real.Bind(listen_fd, {kLoopback, 0}), 0);
  ASSERT_EQ(real.Listen(listen_fd, 4), 0);
  bsim::SockAddr bound{};
  ASSERT_EQ(real.LocalEndpoint(listen_fd, bound), 0);

  RealTransportConfig rt;
  rt.bind_port = 0;
  rt.max_write_queue_bytes = 1000;
  RealTransport transport(loop, fault, rt);
  TransportConn* conn = transport.Connect({kLoopback, bound.port});
  ASSERT_NE(conn, nullptr);
  bool connected = false;
  conn->on_connected = [&](bool ok) { connected = ok; };
  ASSERT_TRUE(PumpUntil(loop, [&] { return connected; }));

  // Wedge the socket: every send EAGAINs, so the queue can only grow.
  bsim::FaultSocketFaults faults;
  faults.eagain_rate = 1.0;
  fault.SetFaults(faults);
  const std::size_t kFrame = 200;
  std::vector<std::uint8_t> frame(kFrame, 0xab);
  for (int i = 0; i < 20; ++i) {
    frame.assign(kFrame, static_cast<std::uint8_t>(i));
    conn->Send(frame);
    loop.PumpOnce(0);
  }
  auto* rc = static_cast<RealConn*>(conn);
  EXPECT_LE(rc->QueuedBytes(), rt.max_write_queue_bytes);
  EXPECT_GE(rc->FramesShed(), 10u);  // 20 frames * 200B vs a 1000B cap
  const std::uint64_t shed = rc->FramesShed();

  // Unwedge and drain: the receiver must see only whole frames, and only the
  // newest (20 - shed) of them — drop-oldest, never drop-newest.
  fault.SetFaults({});
  int peer_fd = -1;
  for (int i = 0; i < 100 && peer_fd < 0; ++i) {
    bsim::SockAddr who{};
    peer_fd = real.Accept(listen_fd, who);
    if (peer_fd == -EAGAIN) {
      peer_fd = -1;
      ::usleep(10 * 1000);
    }
  }
  ASSERT_GE(peer_fd, 0);
  std::vector<std::uint8_t> received;
  ASSERT_TRUE(PumpUntil(loop, [&] {
    char buf[4096];
    const long n = real.Recv(peer_fd, buf, sizeof buf);
    if (n > 0) {
      received.insert(received.end(), buf, buf + n);
    }
    return received.size() >= (20 - shed) * kFrame;
  })) << "received only " << received.size() << " bytes";
  ASSERT_EQ(received.size(), (20 - shed) * kFrame);
  // Frames arrive intact and in order, each filled with its sequence byte.
  for (std::size_t i = 0; i < received.size(); ++i) {
    const auto expect =
        static_cast<std::uint8_t>(20 - (20 - shed) + i / kFrame);
    ASSERT_EQ(received[i], expect) << "byte " << i;
  }

  real.CloseFd(peer_fd);
  real.CloseFd(listen_fd);
}

// ---------------------------------------------------------------------------
// Reconnect-backoff bound: dial churn over dead addresses must not grow the
// per-endpoint backoff map without limit (the same LRU treatment as
// MisbehaviorTracker::SetMaxEntries).

TEST(DialBackoffBound, ChurnOverDeadAddressesKeepsTheMapBounded) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.reconnect_backoff = true;
  config.dial_backoff_max_entries = 16;
  config.target_outbound = 8;
  Node node(sched, net, 0x0a000001, config);
  node.Start();

  // 200 addresses that will never answer: every dial SYN-times-out and lands
  // in the backoff map. Unbounded, this map would end at ~200 entries.
  for (int i = 1; i <= 200; ++i) {
    node.AddKnownAddress({0x0b000000u + static_cast<std::uint32_t>(i), 8333});
  }
  sched.RunUntil(300 * bsim::kSecond);

  EXPECT_LE(node.DialBackoffEntries(), 16u);
  EXPECT_GT(node.DialBackoffPruned(), 50u);
  node.Stop();
}

TEST(DialBackoffBound, ZeroMeansUnboundedForTheLegacyConfiguration) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.reconnect_backoff = true;
  config.dial_backoff_max_entries = 0;
  config.target_outbound = 8;
  Node node(sched, net, 0x0a000001, config);
  node.Start();
  for (int i = 1; i <= 40; ++i) {
    node.AddKnownAddress({0x0b000000u + static_cast<std::uint32_t>(i), 8333});
  }
  sched.RunUntil(120 * bsim::kSecond);
  EXPECT_GT(node.DialBackoffEntries(), 16u);
  EXPECT_EQ(node.DialBackoffPruned(), 0u);
  node.Stop();
}

}  // namespace
