// Tests for the BIP-37 substrate: MurmurHash3 vectors, bloom filter
// behaviour and wire round-trips, partial merkle trees, and the node-level
// filtered-block (MERKLEBLOCK) serving plus filtered tx relay.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "attack/attacker.hpp"
#include "attack/crafter.hpp"
#include "core/node.hpp"
#include "crypto/merkle.hpp"
#include "crypto/murmur3.hpp"
#include "crypto/partial_merkle.hpp"
#include "crypto/sha256.hpp"
#include "proto/bloom.hpp"
#include "util/hex.hpp"

namespace {

using bscrypto::Hash256;
using bscrypto::MurmurHash3;
using bscrypto::PartialMerkleTree;
using bsproto::BloomFilter;
using bsutil::ByteVec;

// ---------------------------------------------------------------------------
// MurmurHash3 (reference vectors)

TEST(Murmur3, EmptyStringVectors) {
  EXPECT_EQ(MurmurHash3(0x00000000, {}), 0x00000000u);
  EXPECT_EQ(MurmurHash3(0x00000001, {}), 0x514E28B7u);
  EXPECT_EQ(MurmurHash3(0xFFFFFFFF, {}), 0x81F16F39u);
}

TEST(Murmur3, TailLengthsAllWork) {
  // 1..7 bytes exercise every tail-switch branch; values must be stable and
  // distinct from each other with overwhelming probability.
  std::set<std::uint32_t> seen;
  for (std::size_t len = 1; len <= 7; ++len) {
    ByteVec data(len, 0x42);
    const std::uint32_t h = MurmurHash3(7, data);
    EXPECT_EQ(h, MurmurHash3(7, data));
    seen.insert(h);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Murmur3, SeedChangesHash) {
  const ByteVec data = bsutil::ToBytes("banscore");
  EXPECT_NE(MurmurHash3(1, data), MurmurHash3(2, data));
}

// ---------------------------------------------------------------------------
// Bloom filter

TEST(Bloom, InsertedElementsAlwaysMatch) {
  BloomFilter filter(100, 0.01, /*tweak=*/5);
  bsutil::Rng rng(3);
  std::vector<ByteVec> items;
  for (int i = 0; i < 100; ++i) {
    ByteVec item(20);
    for (auto& b : item) b = static_cast<std::uint8_t>(rng.Next());
    filter.Insert(item);
    items.push_back(std::move(item));
  }
  for (const auto& item : items) EXPECT_TRUE(filter.Contains(item));
}

TEST(Bloom, FalsePositiveRateIsNearTarget) {
  BloomFilter filter(200, 0.01, 7);
  bsutil::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    ByteVec item(16);
    for (auto& b : item) b = static_cast<std::uint8_t>(rng.Next());
    filter.Insert(item);
  }
  int false_positives = 0;
  const int probes = 20'000;
  for (int i = 0; i < probes; ++i) {
    ByteVec probe(16);
    for (auto& b : probe) b = static_cast<std::uint8_t>(rng.Next());
    false_positives += filter.Contains(probe) ? 1 : 0;
  }
  const double rate = static_cast<double>(false_positives) / probes;
  EXPECT_LT(rate, 0.05);  // target 1%, generous ceiling for sampling noise
}

TEST(Bloom, EmptyFilterMatchesNothing) {
  BloomFilter filter(10, 0.001, 0);
  EXPECT_TRUE(filter.IsEmpty());
  EXPECT_FALSE(filter.Contains(bsutil::ToBytes("anything")));
}

TEST(Bloom, TweakChangesBitPattern) {
  BloomFilter a(10, 0.01, 1);
  BloomFilter b(10, 0.01, 2);
  a.Insert(bsutil::ToBytes("x"));
  b.Insert(bsutil::ToBytes("x"));
  EXPECT_NE(a.ToMessage().filter, b.ToMessage().filter);
}

TEST(Bloom, WireRoundTripPreservesMatching) {
  BloomFilter original(50, 0.01, 99);
  original.Insert(bsutil::ToBytes("hello"));
  const auto msg = original.ToMessage();
  const auto restored = BloomFilter::FromMessage(msg);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->Contains(bsutil::ToBytes("hello")));
  EXPECT_FALSE(restored->Contains(bsutil::ToBytes("goodbye")));
}

TEST(Bloom, FromMessageRejectsProtocolViolations) {
  bsproto::FilterLoadMsg oversize;
  oversize.filter.assign(bsproto::kMaxBloomFilterSize + 1, 0xff);
  oversize.n_hash_funcs = 5;
  EXPECT_FALSE(BloomFilter::FromMessage(oversize).has_value());

  bsproto::FilterLoadMsg too_many_hashes;
  too_many_hashes.filter.assign(100, 0);
  too_many_hashes.n_hash_funcs = 51;
  EXPECT_FALSE(BloomFilter::FromMessage(too_many_hashes).has_value());

  bsproto::FilterLoadMsg empty;
  empty.n_hash_funcs = 5;
  EXPECT_FALSE(BloomFilter::FromMessage(empty).has_value());
}

TEST(Bloom, SizeClampedToProtocolMaximum) {
  // Absurd element count must clamp to 36000 bytes / 50 hash functions.
  BloomFilter filter(10'000'000, 0.000001, 0);
  EXPECT_LE(filter.SizeBytes(), bsproto::kMaxBloomFilterSize);
  EXPECT_LE(filter.HashFunctions(), 50u);
}

TEST(Bloom, MatchesTxByTxidOutputAndOutpoint) {
  bsattack::Crafter crafter(bschain::ChainParams{});
  const bschain::Transaction tx = crafter.ValidTx().tx;

  BloomFilter by_txid(10, 0.001, 1);
  by_txid.Insert(tx.Txid());
  EXPECT_TRUE(by_txid.MatchesTx(tx));

  BloomFilter by_output(10, 0.001, 2);
  by_output.Insert(tx.outputs[0].script_pubkey);
  EXPECT_TRUE(by_output.MatchesTx(tx));

  BloomFilter by_outpoint(10, 0.001, 3);
  bsutil::Writer w;
  tx.inputs[0].prevout.Serialize(w);
  by_outpoint.Insert(w.Data());
  EXPECT_TRUE(by_outpoint.MatchesTx(tx));

  BloomFilter unrelated(10, 0.001, 4);
  unrelated.Insert(bsutil::ToBytes("unrelated"));
  EXPECT_FALSE(unrelated.MatchesTx(tx));
}

// ---------------------------------------------------------------------------
// Partial merkle tree

Hash256 LeafFrom(int i) {
  ByteVec data = {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8)};
  return Hash256{bscrypto::Sha256::HashD(data)};
}

class PartialMerkleSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartialMerkleSweep, ProofVerifiesAndRecoversMatches) {
  const int n = GetParam();
  std::vector<Hash256> txids;
  for (int i = 0; i < n; ++i) txids.push_back(LeafFrom(i));
  const Hash256 expected_root = bscrypto::MerkleRoot(txids);

  bsutil::Rng rng(static_cast<std::uint64_t>(n));
  std::vector<bool> matches(txids.size());
  std::vector<Hash256> expected_matches;
  for (std::size_t i = 0; i < txids.size(); ++i) {
    matches[i] = rng.Chance(0.3);
    if (matches[i]) expected_matches.push_back(txids[i]);
  }

  const PartialMerkleTree built(txids, matches);
  // Wire round trip.
  const PartialMerkleTree received(built.TotalTxs(), built.Hashes(), built.FlagBytes());

  std::vector<Hash256> matched;
  std::vector<std::uint32_t> positions;
  const auto root = received.ExtractMatches(&matched, &positions);
  ASSERT_TRUE(root.has_value()) << "n=" << n;
  EXPECT_EQ(*root, expected_root);
  EXPECT_EQ(matched, expected_matches);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    EXPECT_TRUE(matches[positions[i]]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PartialMerkleSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 64, 100));

TEST(PartialMerkle, NoMatchesStillProvesRoot) {
  std::vector<Hash256> txids = {LeafFrom(1), LeafFrom(2), LeafFrom(3)};
  const PartialMerkleTree tree(txids, {false, false, false});
  std::vector<Hash256> matched;
  const auto root = tree.ExtractMatches(&matched);
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(*root, bscrypto::MerkleRoot(txids));
  EXPECT_TRUE(matched.empty());
  EXPECT_EQ(tree.Hashes().size(), 1u);  // just the root
}

TEST(PartialMerkle, TamperedHashBreaksRoot) {
  std::vector<Hash256> txids = {LeafFrom(1), LeafFrom(2), LeafFrom(3), LeafFrom(4)};
  const PartialMerkleTree built(txids, {false, true, false, false});
  auto hashes = built.Hashes();
  hashes[0].Data()[0] ^= 0xff;
  const PartialMerkleTree tampered(built.TotalTxs(), hashes, built.FlagBytes());
  std::vector<Hash256> matched;
  const auto root = tampered.ExtractMatches(&matched);
  // Either extraction fails structurally or the root no longer matches.
  if (root.has_value()) {
    EXPECT_NE(*root, bscrypto::MerkleRoot(txids));
  }
}

TEST(PartialMerkle, TruncatedEncodingRejected) {
  std::vector<Hash256> txids = {LeafFrom(1), LeafFrom(2), LeafFrom(3), LeafFrom(4)};
  const PartialMerkleTree built(txids, {true, false, true, false});
  auto hashes = built.Hashes();
  hashes.pop_back();
  const PartialMerkleTree truncated(built.TotalTxs(), hashes, built.FlagBytes());
  EXPECT_FALSE(truncated.ExtractMatches(nullptr).has_value());
}

TEST(PartialMerkle, EmptyTreeRejected) {
  const PartialMerkleTree empty(0, {}, {});
  EXPECT_FALSE(empty.ExtractMatches(nullptr).has_value());
}

// ---------------------------------------------------------------------------
// Node integration: filtered blocks and filtered relay

struct BloomNodeFixture : ::testing::Test {
  BloomNodeFixture()
      : net(sched), node(sched, net, 0x0a000001, MakeConfig()),
        client(sched, net, 0x0a000002, node.Config().chain.magic),
        crafter(node.Config().chain) {
    node.Start();
  }

  static bsnet::NodeConfig MakeConfig() {
    bsnet::NodeConfig config;
    // A pre-BIP111 peer (protocol < 70011) may use FILTERADD without the
    // version-gate rule firing; for filter tests the client speaks 70010.
    return config;
  }

  bsattack::AttackSession* ReadySession() {
    auto* session = client.OpenSession({0x0a000001, 8333});
    sched.RunUntil(sched.Now() + bsim::kSecond);
    return session;
  }

  bsim::Scheduler sched;
  bsim::Network net;
  bsnet::Node node;
  bsattack::AttackerNode client;
  bsattack::Crafter crafter;
};

TEST_F(BloomNodeFixture, FilteredBlockServedAsMerkleBlockWithMatchedTx) {
  // The node mines a block containing one interesting transaction.
  const auto tx = crafter.ValidTx();
  ASSERT_EQ(node.Pool().AcceptTransaction(tx.tx), bschain::TxResult::kOk);
  const auto block = node.MineAndRelay();
  ASSERT_TRUE(block.has_value());
  ASSERT_EQ(block->txs.size(), 2u);

  auto* session = ReadySession();
  ASSERT_TRUE(session->SessionReady());

  // Load a filter matching only the interesting tx.
  bsproto::BloomFilter filter(10, 0.000001, 42);
  filter.Insert(tx.tx.Txid());
  client.Send(*session, filter.ToMessage());

  // Collect the replies.
  std::optional<bsproto::MerkleBlockMsg> merkle_block;
  std::vector<bschain::Transaction> received_txs;
  session->on_message = [&](bsattack::AttackSession&, const bsproto::Message& msg) {
    if (const auto* mb = std::get_if<bsproto::MerkleBlockMsg>(&msg)) merkle_block = *mb;
    if (const auto* txmsg = std::get_if<bsproto::TxMsg>(&msg)) {
      received_txs.push_back(txmsg->tx);
    }
  };

  bsproto::GetDataMsg request;
  request.inventory.push_back({bsproto::InvType::kFilteredBlock, block->Hash()});
  client.Send(*session, request);
  sched.RunUntil(sched.Now() + bsim::kSecond);

  ASSERT_TRUE(merkle_block.has_value());
  EXPECT_EQ(merkle_block->header.Hash(), block->Hash());
  EXPECT_EQ(merkle_block->total_txs, 2u);

  // The proof verifies against the header's merkle root and names the tx.
  const PartialMerkleTree proof(merkle_block->total_txs, merkle_block->hashes,
                                merkle_block->flags);
  std::vector<Hash256> matched;
  const auto root = proof.ExtractMatches(&matched);
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(*root, block->header.merkle_root);
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_EQ(matched[0], tx.tx.Txid());

  // The matched transaction itself followed the MERKLEBLOCK.
  ASSERT_EQ(received_txs.size(), 1u);
  EXPECT_EQ(received_txs[0].Txid(), tx.tx.Txid());
}

TEST_F(BloomNodeFixture, FilteredBlockWithoutLoadedFilterIsNotFound) {
  const auto block = node.MineAndRelay();
  ASSERT_TRUE(block.has_value());
  auto* session = ReadySession();

  bool got_notfound = false;
  session->on_message = [&](bsattack::AttackSession&, const bsproto::Message& msg) {
    if (std::holds_alternative<bsproto::NotFoundMsg>(msg)) got_notfound = true;
  };
  bsproto::GetDataMsg request;
  request.inventory.push_back({bsproto::InvType::kFilteredBlock, block->Hash()});
  client.Send(*session, request);
  sched.RunUntil(sched.Now() + bsim::kSecond);
  EXPECT_TRUE(got_notfound);
}

TEST_F(BloomNodeFixture, TxRelaySkipsNonMatchingFilteredPeers) {
  auto* spv = ReadySession();
  ASSERT_TRUE(spv->SessionReady());
  // Load a filter that matches nothing we will relay.
  bsproto::BloomFilter filter(10, 0.000001, 7);
  filter.Insert(bsutil::ToBytes("something else entirely"));
  client.Send(*spv, filter.ToMessage());

  int inv_count = 0;
  spv->on_message = [&](bsattack::AttackSession&, const bsproto::Message& msg) {
    if (std::holds_alternative<bsproto::InvMsg>(msg)) ++inv_count;
  };

  // A second (unfiltered) session gossips a tx to the node.
  auto* gossiper = ReadySession();
  client.Send(*gossiper, crafter.ValidTx());
  sched.RunUntil(sched.Now() + bsim::kSecond);

  EXPECT_EQ(inv_count, 0) << "SPV peer heard about a tx its filter rejects";
}

TEST_F(BloomNodeFixture, TxRelayReachesMatchingFilteredPeers) {
  auto* spv = ReadySession();
  const auto tx = crafter.ValidTx();
  bsproto::BloomFilter filter(10, 0.000001, 7);
  filter.Insert(tx.tx.Txid());
  client.Send(*spv, filter.ToMessage());

  int inv_count = 0;
  spv->on_message = [&](bsattack::AttackSession&, const bsproto::Message& msg) {
    if (std::holds_alternative<bsproto::InvMsg>(msg)) ++inv_count;
  };

  auto* gossiper = ReadySession();
  client.Send(*gossiper, tx);
  sched.RunUntil(sched.Now() + bsim::kSecond);
  EXPECT_EQ(inv_count, 1);
}

TEST_F(BloomNodeFixture, FilterClearDropsTheFilter) {
  auto* session = ReadySession();
  bsproto::BloomFilter filter(10, 0.001, 3);
  client.Send(*session, filter.ToMessage());
  sched.RunUntil(sched.Now() + bsim::kSecond);
  bsnet::Peer* peer = node.FindPeerByRemote(session->local);
  ASSERT_NE(peer, nullptr);
  EXPECT_TRUE(peer->filter_loaded);
  client.Send(*session, bsproto::FilterClearMsg{});
  sched.RunUntil(sched.Now() + bsim::kSecond);
  EXPECT_FALSE(peer->filter_loaded);
}

}  // namespace
