// Tests for ban-list persistence (the banlist.dat analogue) and the node's
// opt-in keepalive / inactivity handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "attack/attacker.hpp"
#include "attack/crafter.hpp"
#include "core/banman.hpp"
#include "core/node.hpp"

namespace {

using namespace bsnet;  // NOLINT

// ---------------------------------------------------------------------------
// BanMan persistence

TEST(BanPersistence, SerializeRoundTrip) {
  BanMan bans;
  bans.Ban({0x0a000001, 8333}, 100 * bsim::kHour);
  bans.Ban({0x0a000002, 49152}, 5 * bsim::kHour);
  const auto data = bans.Serialize();

  BanMan restored;
  ASSERT_TRUE(restored.Deserialize(data, /*now=*/0));
  EXPECT_EQ(restored.Size(), 2u);
  EXPECT_TRUE(restored.IsBanned({0x0a000001, 8333}, 0));
  EXPECT_EQ(restored.BanExpiry({0x0a000002, 49152}), 5 * bsim::kHour);
}

TEST(BanPersistence, ExpiredEntriesDroppedOnLoad) {
  BanMan bans;
  bans.Ban({1, 1}, 100);
  bans.Ban({2, 2}, 10'000);
  const auto data = bans.Serialize();
  BanMan restored;
  ASSERT_TRUE(restored.Deserialize(data, /*now=*/5000));
  EXPECT_EQ(restored.Size(), 1u);
  EXPECT_TRUE(restored.IsBanned({2, 2}, 5000));
}

TEST(BanPersistence, RejectsForeignMagic) {
  BanMan bans;
  auto data = bans.Serialize();
  data[0] ^= 0xff;
  BanMan restored;
  restored.Ban({9, 9}, 1000);
  EXPECT_FALSE(restored.Deserialize(data, 0));
  EXPECT_EQ(restored.Size(), 1u);  // contents untouched on failure
}

TEST(BanPersistence, RejectsTruncatedData) {
  BanMan bans;
  bans.Ban({1, 1}, 100);
  auto data = bans.Serialize();
  data.pop_back();
  BanMan restored;
  EXPECT_FALSE(restored.Deserialize(data, 0));
}

TEST(BanPersistence, RejectsTrailingGarbage) {
  BanMan bans;
  bans.Ban({1, 1}, 100);
  auto data = bans.Serialize();
  data.push_back(0x00);
  BanMan restored;
  EXPECT_FALSE(restored.Deserialize(data, 0));
}

TEST(BanPersistence, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/banlist_test.dat";
  BanMan bans;
  for (std::uint16_t port = 49152; port < 49252; ++port) {
    bans.Ban({0x0a000042, port}, 24 * bsim::kHour);
  }
  ASSERT_TRUE(bans.SaveToFile(path));
  BanMan restored;
  ASSERT_TRUE(restored.LoadFromFile(path, 0));
  EXPECT_EQ(restored.Size(), 100u);
  EXPECT_EQ(restored.BannedPortsOf(0x0a000042, 0), 100u);
  std::remove(path.c_str());
}

TEST(BanPersistence, LoadFromMissingFileFails) {
  BanMan bans;
  EXPECT_FALSE(bans.LoadFromFile("/nonexistent/banlist.dat", 0));
}

namespace {
void WriteFile(const std::string& path, const bsutil::ByteVec& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  // fwrite with a null pointer is UB even for zero bytes (empty ByteVec).
  if (!data.empty()) {
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
  }
  std::fclose(f);
}
}  // namespace

TEST(BanPersistence, CorruptFileLoadsAsEmptyState) {
  // A node restarting over a corrupt banlist must come up clean (empty ban
  // list), not with stale pre-load state and not crashed.
  const std::string path = ::testing::TempDir() + "/banlist_corrupt.dat";
  BanMan victim;
  victim.Ban({1, 1}, 100);
  auto data = victim.Serialize();
  data[0] ^= 0xff;  // break the format magic
  WriteFile(path, data);

  BanMan restored;
  restored.Ban({7, 7}, 5000);  // pre-load state must not survive a bad load
  EXPECT_FALSE(restored.LoadFromFile(path, 0));
  EXPECT_EQ(restored.Size(), 0u);
  std::remove(path.c_str());
}

TEST(BanPersistence, TruncatedFileLoadsAsEmptyState) {
  const std::string path = ::testing::TempDir() + "/banlist_truncated.dat";
  BanMan bans;
  for (std::uint16_t port = 1000; port < 1010; ++port) bans.Ban({0x0a000001, port}, 9999);
  auto data = bans.Serialize();
  data.resize(data.size() / 2);  // torn write mid-record
  WriteFile(path, data);

  BanMan restored;
  restored.Ban({7, 7}, 5000);
  EXPECT_FALSE(restored.LoadFromFile(path, 0));
  EXPECT_EQ(restored.Size(), 0u);
  std::remove(path.c_str());
}

TEST(BanPersistence, EmptyFileLoadsAsEmptyState) {
  const std::string path = ::testing::TempDir() + "/banlist_empty.dat";
  WriteFile(path, {});
  BanMan restored;
  restored.Ban({7, 7}, 5000);
  EXPECT_FALSE(restored.LoadFromFile(path, 0));
  EXPECT_EQ(restored.Size(), 0u);
  std::remove(path.c_str());
}

TEST(BanPersistence, GarbageBytesLoadAsEmptyState) {
  const std::string path = ::testing::TempDir() + "/banlist_garbage.dat";
  bsutil::ByteVec garbage(733);
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  WriteFile(path, garbage);
  BanMan restored;
  EXPECT_FALSE(restored.LoadFromFile(path, 0));
  EXPECT_EQ(restored.Size(), 0u);
  std::remove(path.c_str());
}

TEST(BanPersistence, SurvivesNodeRestartScenario) {
  // Ban an identifier on node A, persist, load into a fresh node's BanMan:
  // the identifier stays refused after the "restart".
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  const std::string path = ::testing::TempDir() + "/banlist_restart.dat";
  {
    Node node(sched, net, 0x0a000001, config);
    node.Start();
    bsattack::AttackerNode attacker(sched, net, 0x0a000002, config.chain.magic);
    bsattack::Crafter crafter(config.chain);
    auto* session = attacker.OpenSession({0x0a000001, 8333});
    sched.RunUntil(bsim::kSecond);
    attacker.Send(*session, crafter.SegwitInvalidTx());
    sched.RunUntil(sched.Now() + bsim::kSecond);
    ASSERT_EQ(node.Bans().Size(), 1u);
    ASSERT_TRUE(node.Bans().SaveToFile(path));
  }
  {
    Node reborn(sched, net, 0x0a000003, config);
    ASSERT_TRUE(reborn.Bans().LoadFromFile(path, sched.Now()));
    EXPECT_EQ(reborn.Bans().Size(), 1u);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Score-table persistence (the durable-store kScoreSnapshot payload)

TEST(ScorePersistence, SerializeRoundTripKeepsBothScoreKinds) {
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kGoodScore, 100);
  tracker.RestoreScore(1, 40, 0);
  tracker.RestoreScore(2, 0, 7);
  tracker.RestoreScore(3, 99, 3);
  const auto data = tracker.Serialize();

  MisbehaviorTracker restored(CoreVersion::kV0_20, BanPolicy::kGoodScore, 100);
  ASSERT_TRUE(restored.Deserialize(data));
  EXPECT_EQ(restored.Score(1), 40);
  EXPECT_EQ(restored.GoodScore(2), 7);
  EXPECT_EQ(restored.Score(3), 99);
  EXPECT_EQ(restored.GoodScore(3), 3);
  EXPECT_EQ(restored.Score(4), 0);  // absent peers stay absent
}

TEST(ScorePersistence, RejectsForeignMagicAndTruncation) {
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kBanScore, 100);
  tracker.RestoreScore(1, 10, 0);
  auto data = tracker.Serialize();
  auto bad = data;
  bad[0] ^= 0xff;
  MisbehaviorTracker restored(CoreVersion::kV0_20, BanPolicy::kBanScore, 100);
  restored.RestoreScore(9, 5, 0);
  EXPECT_FALSE(restored.Deserialize(bad));
  EXPECT_EQ(restored.Score(9), 5);  // contents untouched on failure
  data.pop_back();
  EXPECT_FALSE(restored.Deserialize(data));
  EXPECT_EQ(restored.Score(9), 5);
}

// ---------------------------------------------------------------------------
// Address-table persistence (the peers.dat analogue)

TEST(AddrPersistence, SerializeRoundTripPreservesInsertionOrder) {
  AddrMan addrs;
  addrs.Add({0x0a000001, 8333});
  addrs.Add({0x0a000002, 18333});
  addrs.Add({0x0a000003, 8333});
  const auto data = addrs.Serialize();

  AddrMan restored;
  ASSERT_TRUE(restored.Deserialize(data));
  EXPECT_EQ(restored.Size(), 3u);
  EXPECT_TRUE(restored.Contains({0x0a000002, 18333}));
  // Select/Sample determinism depends on the stored order, so a second
  // serialization must be byte-identical.
  EXPECT_EQ(restored.Serialize(), data);
}

TEST(AddrPersistence, RejectsForeignMagicAndTruncation) {
  AddrMan addrs;
  addrs.Add({1, 1});
  auto data = addrs.Serialize();
  auto bad = data;
  bad[0] ^= 0xff;
  AddrMan restored;
  restored.Add({9, 9});
  EXPECT_FALSE(restored.Deserialize(bad));
  EXPECT_TRUE(restored.Contains({9, 9}));  // contents untouched on failure
  data.pop_back();
  EXPECT_FALSE(restored.Deserialize(data));
  EXPECT_TRUE(restored.Contains({9, 9}));
}

// ---------------------------------------------------------------------------
// Keepalive / inactivity

TEST(Keepalive, NodesExchangePingsAndMeasureRtt) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.target_outbound = 1;
  config.ping_interval = 5 * bsim::kSecond;
  Node a(sched, net, 0x0a000001, config);
  NodeConfig bc;
  bc.target_outbound = 0;
  Node b(sched, net, 0x0a000002, bc);
  b.Start();
  a.AddKnownAddress({b.Ip(), 8333});
  a.Start();
  sched.RunUntil(30 * bsim::kSecond);

  ASSERT_EQ(a.OutboundCount(), 1u);
  const Peer* peer = a.Peers()[0];
  EXPECT_GE(peer->last_ping_sent, 0);
  EXPECT_GE(peer->last_pong_rtt, 0) << "no PONG round trip measured";
  // RTT on the LAN model: two propagation delays plus queueing.
  EXPECT_LT(peer->last_pong_rtt, 10 * bsim::kMillisecond);
  EXPECT_GE(b.MessageCounts().at(bsproto::MsgType::kPing), 2u);
}

TEST(Keepalive, SilentPeerDisconnectedAfterTimeout) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.inactivity_timeout = 20 * bsim::kSecond;
  Node node(sched, net, 0x0a000001, config);
  node.Start();

  bsattack::AttackerNode attacker(sched, net, 0x0a000002, config.chain.magic);
  auto* session = attacker.OpenSession({0x0a000001, 8333});
  sched.RunUntil(bsim::kSecond);
  ASSERT_TRUE(session->SessionReady());
  ASSERT_EQ(node.InboundCount(), 1u);

  // Say nothing for longer than the timeout.
  sched.RunUntil(sched.Now() + 30 * bsim::kSecond);
  EXPECT_EQ(node.InboundCount(), 0u);
  EXPECT_TRUE(session->closed);
  // Inactivity is not misbehavior: no ban.
  EXPECT_EQ(node.Bans().Size(), 0u);
}

TEST(Keepalive, ActivePeerStaysConnected) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.inactivity_timeout = 20 * bsim::kSecond;
  Node node(sched, net, 0x0a000001, config);
  node.Start();

  bsattack::AttackerNode attacker(sched, net, 0x0a000002, config.chain.magic);
  auto* session = attacker.OpenSession({0x0a000001, 8333});
  sched.RunUntil(bsim::kSecond);
  for (int i = 0; i < 10; ++i) {
    attacker.Send(*session, bsproto::PingMsg{static_cast<std::uint64_t>(i)});
    sched.RunUntil(sched.Now() + 10 * bsim::kSecond);
  }
  EXPECT_FALSE(session->closed);
  EXPECT_EQ(node.InboundCount(), 1u);
}

TEST(Keepalive, DisabledByDefault) {
  NodeConfig config;
  EXPECT_EQ(config.ping_interval, 0);
  EXPECT_EQ(config.inactivity_timeout, 0);
}

}  // namespace
