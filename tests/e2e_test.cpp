// End-to-end integration scenarios across the whole stack: multi-node block
// propagation, compact-block relay with GETBLOCKTXN/BLOCKTXN recovery,
// transaction gossip, header sync, and the full-IP defamation estimate.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "attack/attacker.hpp"
#include "attack/crafter.hpp"
#include "attack/sybil.hpp"
#include "core/node.hpp"

namespace {

using namespace bsnet;  // NOLINT
using bsattack::AttackerNode;
using bsattack::Crafter;

struct ClusterFixture : ::testing::Test {
  void SetUp() override {
    net = std::make_unique<bsim::Network>(sched);
    // A small line topology: n0 -> n1 -> n2 (outbound directions).
    for (int i = 0; i < 3; ++i) {
      NodeConfig config;
      config.target_outbound = (i < 2) ? 1 : 0;
      nodes.push_back(std::make_unique<Node>(sched, *net, 0x0a000001 + i, config));
    }
    nodes[0]->AddKnownAddress({nodes[1]->Ip(), 8333});
    nodes[1]->AddKnownAddress({nodes[2]->Ip(), 8333});
    for (auto& node : nodes) node->Start();
    sched.RunUntil(10 * bsim::kSecond);
    ASSERT_EQ(nodes[0]->OutboundCount(), 1u);
    ASSERT_EQ(nodes[1]->OutboundCount(), 1u);
  }

  bsim::Scheduler sched;
  std::unique_ptr<bsim::Network> net;
  std::vector<std::unique_ptr<Node>> nodes;
};

TEST_F(ClusterFixture, MinedBlockPropagatesAcrossTwoHops) {
  const auto block = nodes[0]->MineAndRelay();
  ASSERT_TRUE(block.has_value());
  sched.RunUntil(sched.Now() + 10 * bsim::kSecond);
  for (const auto& node : nodes) {
    EXPECT_TRUE(node->Chain().HaveBlock(block->Hash()));
    EXPECT_EQ(node->Chain().TipHeight(), 1);
  }
}

TEST_F(ClusterFixture, ChainOfBlocksKeepsNodesInSync) {
  for (int i = 0; i < 5; ++i) {
    // Alternate miners.
    nodes[i % 2]->MineAndRelay();
    sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
  }
  EXPECT_EQ(nodes[0]->Chain().TipHeight(), 5);
  EXPECT_EQ(nodes[1]->Chain().TipHeight(), 5);
  EXPECT_EQ(nodes[2]->Chain().TipHeight(), 5);
  EXPECT_EQ(nodes[0]->Chain().TipHash(), nodes[2]->Chain().TipHash());
}

TEST_F(ClusterFixture, TransactionGossipReachesAllMempools) {
  Crafter crafter(nodes[0]->Config().chain);
  const auto tx = crafter.ValidTx();
  AttackerNode client(sched, *net, 0x0a000099, nodes[0]->Config().chain.magic);
  auto* session = client.OpenSession({nodes[0]->Ip(), 8333});
  sched.RunUntil(sched.Now() + bsim::kSecond);
  ASSERT_TRUE(session->SessionReady());
  client.Send(*session, tx);
  sched.RunUntil(sched.Now() + 10 * bsim::kSecond);
  for (const auto& node : nodes) {
    EXPECT_TRUE(node->Pool().Contains(tx.tx.Txid()))
        << "node " << node->Ip() << " missing gossiped tx";
  }
}

TEST_F(ClusterFixture, CompactBlockRoundTripWithBlockTxnRecovery) {
  // Node 1 has the mempool tx; serving node 0's compact block needs no
  // recovery. Then a second block whose tx n1 does NOT have exercises the
  // GETBLOCKTXN/BLOCKTXN path.
  Crafter crafter(nodes[0]->Config().chain);
  const auto tx = crafter.ValidTx();
  ASSERT_EQ(nodes[0]->Pool().AcceptTransaction(tx.tx), bschain::TxResult::kOk);

  // Mine a block on n0 containing the tx; relay happens via inv/getdata —
  // request it as a compact block explicitly through a client session.
  const auto block = nodes[0]->MineAndRelay();
  ASSERT_TRUE(block.has_value());
  ASSERT_EQ(block->txs.size(), 2u);
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);

  AttackerNode client(sched, *net, 0x0a000098, nodes[0]->Config().chain.magic);
  auto* session = client.OpenSession({nodes[0]->Ip(), 8333});
  sched.RunUntil(sched.Now() + bsim::kSecond);
  ASSERT_TRUE(session->SessionReady());

  bool got_compact = false;
  bsproto::CmpctBlockMsg received;
  session->on_message = [&](bsattack::AttackSession&, const bsproto::Message& msg) {
    if (bsproto::MsgTypeOf(msg) == bsproto::MsgType::kCmpctBlock) {
      got_compact = true;
      received = std::get<bsproto::CmpctBlockMsg>(msg);
    }
  };
  bsproto::GetDataMsg request;
  request.inventory.push_back({bsproto::InvType::kCmpctBlock, block->Hash()});
  client.Send(*session, request);
  sched.RunUntil(sched.Now() + 2 * bsim::kSecond);

  ASSERT_TRUE(got_compact);
  EXPECT_EQ(received.header.Hash(), block->Hash());
  EXPECT_EQ(received.prefilled.size(), 1u);       // coinbase prefilled
  EXPECT_EQ(received.short_ids.size(), 1u);       // the mempool tx as short id
  // The client holds the tx, so reconstruction succeeds without BLOCKTXN.
  const auto rebuilt = bsproto::ReconstructBlock(received, {tx.tx}, nullptr);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(rebuilt->Hash(), block->Hash());
}

// ---------------------------------------------------------------------------
// §VI-D full-IP defamation estimate

TEST(FullIpDefamation, EstimateMatchesPaperFormula) {
  // 16384 ephemeral ports × (0.1 s ban + 0.2 s socket setup) ≈ 81.92 min.
  const double per_identifier_sec = 0.1 + 0.2;
  const double total_min = 16384.0 * per_identifier_sec / 60.0;
  EXPECT_NEAR(total_min, 81.92, 0.01);
}

TEST(FullIpDefamation, MeasuredPerIdentifierCostSupportsEstimate) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  Node target(sched, net, 0x0a000001, config);
  target.Start();
  AttackerNode attacker(sched, net, 0x0a000002, config.chain.magic);

  bsattack::SerialSybilConfig sc;
  sc.max_identifiers = 20;
  bsattack::SerialSybilAttack attack(attacker, {0x0a000001, 8333}, sc);
  attack.Start();
  sched.RunUntil(sched.Now() + 60 * bsim::kSecond);
  ASSERT_TRUE(attack.Finished());
  // Per-identifier cost = measured time-to-ban plus the 0.2 s socket-setup
  // latency; projected to the full 16384-port ephemeral range this lands
  // near the paper's 81.92 minutes.
  const double per_identifier_sec = attack.MeanTimeToBan() + 0.2;
  const double projected_min = per_identifier_sec * 16384.0 / 60.0;
  EXPECT_NEAR(projected_min, 81.92, 17.0);
  EXPECT_EQ(target.Bans().BannedPortsOf(0x0a000002, sched.Now()), 20u);
}

// ---------------------------------------------------------------------------
// Version-sweep property: the node behaves per its configured rule set

class VersionSweep : public ::testing::TestWithParam<CoreVersion> {};

TEST_P(VersionSweep, DuplicateVersionPunishedOnlyWhereRuleExists) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.core_version = GetParam();
  Node node(sched, net, 0x0a000001, config);
  node.Start();
  AttackerNode attacker(sched, net, 0x0a000002, config.chain.magic);
  auto* session = attacker.OpenSession({0x0a000001, 8333});
  sched.RunUntil(bsim::kSecond);
  for (int i = 0; i < 3; ++i) attacker.Send(*session, bsproto::VersionMsg{});
  sched.RunUntil(sched.Now() + bsim::kSecond);

  Peer* peer = node.FindPeerByRemote(session->local);
  ASSERT_NE(peer, nullptr);
  const int expected =
      GetRule(GetParam(), Misbehavior::kVersionDuplicate).has_value() ? 3 : 0;
  EXPECT_EQ(node.Tracker().Score(peer->id), expected);
}

TEST_P(VersionSweep, SegwitInvalidTxBansInEveryVersion) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.core_version = GetParam();
  Node node(sched, net, 0x0a000001, config);
  node.Start();
  AttackerNode attacker(sched, net, 0x0a000002, config.chain.magic);
  Crafter crafter(config.chain);
  auto* session = attacker.OpenSession({0x0a000001, 8333});
  sched.RunUntil(bsim::kSecond);
  attacker.Send(*session, crafter.SegwitInvalidTx());
  sched.RunUntil(sched.Now() + bsim::kSecond);
  EXPECT_TRUE(session->closed);
  EXPECT_EQ(node.PeersBanned(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Versions, VersionSweep,
                         ::testing::Values(CoreVersion::kV0_20, CoreVersion::kV0_21,
                                           CoreVersion::kV0_22),
                         [](const ::testing::TestParamInfo<CoreVersion>& info) {
                           switch (info.param) {
                             case CoreVersion::kV0_20: return "v0_20";
                             case CoreVersion::kV0_21: return "v0_21";
                             case CoreVersion::kV0_22: return "v0_22";
                           }
                           return "unknown";
                         });

}  // namespace
