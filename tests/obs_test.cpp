// Tests for bsobs: metric cell semantics, histogram bucket boundaries,
// registry handle rules, exporter golden strings, trace-ring wraparound and
// a concurrent-increment smoke test. Also covers the Monitor::ExportCsv
// unwritable-path branch (it reports failure via the structured logger).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/node.hpp"
#include "detect/monitor.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace {

using bsobs::Counter;
using bsobs::EventTrace;
using bsobs::EventType;
using bsobs::Gauge;
using bsobs::Histogram;
using bsobs::MetricsRegistry;
using bsobs::ScopedTimer;
using bsobs::TraceEvent;

// ---------------------------------------------------------------------------
// Cells

TEST(ObsCounter, IncrementSemantics) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc();
  EXPECT_EQ(c.Value(), 2u);
  c.Inc(40);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(ObsGauge, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(7.5);
  EXPECT_EQ(g.Value(), 7.5);
  g.Add(-2.5);
  EXPECT_EQ(g.Value(), 5.0);
  g.Set(-1.0);  // gauges may go negative, unlike counters
  EXPECT_EQ(g.Value(), -1.0);
}

TEST(ObsHistogram, BucketBoundariesAreInclusive) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1      -> bucket 0
  h.Observe(1.0);    // le is inclusive: exactly on the bound -> bucket 0
  h.Observe(1.0001); //            -> bucket 1
  h.Observe(10.0);   //            -> bucket 1
  h.Observe(99.9);   //            -> bucket 2
  h.Observe(1000.0); // above all  -> +Inf bucket
  ASSERT_EQ(h.NumBuckets(), 4u);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // +Inf
  EXPECT_EQ(h.Count(), 6u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 1000.0);
}

TEST(ObsHistogram, BoundsAreSortedAndDeduplicated) {
  Histogram h({10.0, 1.0, 10.0});
  ASSERT_EQ(h.UpperBounds().size(), 2u);
  EXPECT_EQ(h.UpperBounds()[0], 1.0);
  EXPECT_EQ(h.UpperBounds()[1], 10.0);
}

TEST(ObsScopedTimer, ObservesOnceAndToleratesNull) {
  Histogram h({1.0});
  {
    ScopedTimer t(&h);
    const double sec = t.Stop();
    EXPECT_GE(sec, 0.0);
    t.Stop();  // second Stop (and destruction) must not double-count
  }
  EXPECT_EQ(h.Count(), 1u);
  { ScopedTimer noop(nullptr); }  // must not crash
}

// ---------------------------------------------------------------------------
// Registry

TEST(ObsRegistry, ReRegistrationReturnsSameHandle) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("bs_test_events_total", "help");
  Counter* b = reg.GetCounter("bs_test_events_total");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.Size(), 1u);
}

TEST(ObsRegistry, KindMismatchReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.GetCounter("bs_test_x"), nullptr);
  EXPECT_EQ(reg.GetGauge("bs_test_x"), nullptr);
  EXPECT_EQ(reg.GetHistogram("bs_test_x", {1.0}), nullptr);
  EXPECT_EQ(reg.FindCounter("bs_test_x") == nullptr, false);
  EXPECT_EQ(reg.FindGauge("bs_test_x"), nullptr);
  EXPECT_EQ(reg.FindCounter("bs_test_absent"), nullptr);
}

// ---------------------------------------------------------------------------
// Exporters (golden strings)

TEST(ObsExport, PrometheusGolden) {
  MetricsRegistry reg;
  reg.GetCounter("bs_test_frames_total", "Frames seen")->Inc(3);
  reg.GetGauge("bs_test_peers")->Set(2.5);
  Histogram* h = reg.GetHistogram("bs_test_latency_seconds", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(5.0);
  const std::string expected =
      "# HELP bs_test_frames_total Frames seen\n"
      "# TYPE bs_test_frames_total counter\n"
      "bs_test_frames_total 3\n"
      "# TYPE bs_test_peers gauge\n"
      "bs_test_peers 2.5\n"
      "# TYPE bs_test_latency_seconds histogram\n"
      "bs_test_latency_seconds_bucket{le=\"0.1\"} 1\n"
      "bs_test_latency_seconds_bucket{le=\"1\"} 2\n"
      "bs_test_latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "bs_test_latency_seconds_sum 5.55\n"
      "bs_test_latency_seconds_count 3\n";
  EXPECT_EQ(reg.RenderPrometheus(), expected);
}

TEST(ObsExport, JsonGolden) {
  MetricsRegistry reg;
  reg.GetCounter("c1")->Inc(7);
  reg.GetGauge("g1")->Set(1.5);
  Histogram* h = reg.GetHistogram("h1", {2.0});
  h->Observe(1.0);
  h->Observe(3.0);
  const std::string expected =
      "{\"counters\":{\"c1\":7},"
      "\"gauges\":{\"g1\":1.5},"
      "\"histograms\":{\"h1\":{\"buckets\":["
      "{\"le\":2,\"count\":1},{\"le\":\"+Inf\",\"count\":2}],"
      "\"sum\":4,\"count\":2}}}";
  EXPECT_EQ(reg.RenderJson(), expected);
}

// ---------------------------------------------------------------------------
// Event trace ring

TEST(ObsTrace, RecordsInOrderBelowCapacity) {
  EventTrace trace(8);
  trace.Record(100, EventType::kPeerConnected, 1, 1);
  trace.Record(200, EventType::kFrameDecoded, 1, 64);
  trace.Record(300, EventType::kPeerDisconnected, 1);
  EXPECT_EQ(trace.Size(), 3u);
  EXPECT_EQ(trace.Recorded(), 3u);
  EXPECT_EQ(trace.Dropped(), 0u);
  const std::vector<TraceEvent> events = trace.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].time, 100);
  EXPECT_EQ(events[0].type, EventType::kPeerConnected);
  EXPECT_EQ(events[2].time, 300);
}

TEST(ObsTrace, WraparoundCountsDropsAndKeepsNewest) {
  EventTrace trace(4);
  for (int i = 0; i < 10; ++i) {
    trace.Record(i, EventType::kFrameDropped, /*peer_id=*/7, /*a=*/i);
  }
  EXPECT_EQ(trace.Capacity(), 4u);
  EXPECT_EQ(trace.Size(), 4u);
  EXPECT_EQ(trace.Recorded(), 10u);
  EXPECT_EQ(trace.Dropped(), 6u);
  const std::vector<TraceEvent> events = trace.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, holding the newest four records (times 6..9).
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].time, 6 + i);
    EXPECT_EQ(events[i].a, 6 + i);
    EXPECT_EQ(events[i].peer_id, 7u);
  }
}

TEST(ObsTrace, ClearResetsRetainedButNotTotals) {
  EventTrace trace(4);
  trace.Record(1, EventType::kPeerBanned, 1, 100);
  trace.Clear();
  EXPECT_EQ(trace.Size(), 0u);
  EXPECT_TRUE(trace.Snapshot().empty());
}

TEST(ObsTrace, RenderMentionsEventTypes) {
  EventTrace trace(8);
  trace.Record(bsim::kSecond, EventType::kPeerBanned, 3, 100);
  const std::string text = trace.Render();
  EXPECT_NE(text.find(bsobs::ToString(EventType::kPeerBanned)), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency smoke test

TEST(ObsConcurrency, ParallelIncrementsAreExact) {
  MetricsRegistry reg;
  Counter* counter = reg.GetCounter("bs_test_parallel_total");
  Histogram* hist = reg.GetHistogram("bs_test_parallel_seconds", {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Inc();
        hist->Observe(t % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter->Value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist->Count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist->BucketCount(0) + hist->BucketCount(1), hist->Count());
}

// ---------------------------------------------------------------------------
// Monitor::ExportCsv error path (reported via the structured logger)

TEST(ObsMonitorExport, UnwritablePathReturnsFalse) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  bsnet::Node node(sched, net, 0x0a000001, bsnet::NodeConfig{});
  bsdetect::Monitor monitor(node);
  EXPECT_FALSE(monitor.ExportCsv("/nonexistent-dir-bsobs/export.csv"));
  const std::string ok_path = ::testing::TempDir() + "/bsobs_export.csv";
  EXPECT_TRUE(monitor.ExportCsv(ok_path));
  std::remove(ok_path.c_str());
}

// ---------------------------------------------------------------------------
// HotpathProfiler: per-stage stats, log2 histogram quantiles, disabled mode

TEST(ProfilerStats, CountsTotalsAndExtremes) {
  bsobs::HotpathProfiler prof;
  prof.Record(bsobs::HotStage::kCodecDecode, 100);
  prof.Record(bsobs::HotStage::kCodecDecode, 300);
  prof.Record(bsobs::HotStage::kCodecDecode, 200);
  const auto s = prof.Stats(bsobs::HotStage::kCodecDecode);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.total_ns, 600u);
  EXPECT_EQ(s.min_ns, 100u);
  EXPECT_EQ(s.max_ns, 300u);
  EXPECT_DOUBLE_EQ(s.ns_per_op, 200.0);
  // Other stages stay untouched.
  EXPECT_EQ(prof.Stats(bsobs::HotStage::kDispatch).count, 0u);
}

TEST(ProfilerStats, QuantilesLandInTheRecordedRange) {
  bsobs::HotpathProfiler prof;
  // 100 samples spread over [1000, 2000) ns — every quantile must stay
  // inside the covering log2 buckets' bounds.
  for (int i = 0; i < 100; ++i) {
    prof.Record(bsobs::HotStage::kTrackerUpdate,
                1000 + static_cast<std::uint64_t>(i) * 10);
  }
  const auto s = prof.Stats(bsobs::HotStage::kTrackerUpdate);
  EXPECT_GE(s.p50_ns, 512.0);
  EXPECT_LE(s.p50_ns, 2048.0);
  EXPECT_GE(s.p90_ns, s.p50_ns);
  EXPECT_GE(s.p99_ns, s.p90_ns);
  EXPECT_LE(s.p99_ns, 2048.0);
}

TEST(ProfilerStats, ResetClearsEverything) {
  bsobs::HotpathProfiler prof;
  prof.Record(bsobs::HotStage::kDetectTick, 50);
  prof.Reset();
  const auto s = prof.Stats(bsobs::HotStage::kDetectTick);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.total_ns, 0u);
}

TEST(ProfilerScopedProbe, NullProfilerIsANoop) {
  // The disabled configuration: probe against a null profiler must not
  // crash, not allocate, and report zero elapsed work recorded anywhere.
  for (int i = 0; i < 1000; ++i) {
    bsobs::ScopedProbe probe(nullptr, bsobs::HotStage::kDispatch);
    probe.Stop();
  }
  SUCCEED();
}

TEST(ProfilerScopedProbe, RecordsOnDestructionAndStopIsIdempotent) {
  bsobs::HotpathProfiler prof;
  {
    bsobs::ScopedProbe probe(&prof, bsobs::HotStage::kAddrmanSelect);
    probe.Stop();
    probe.Stop();  // second stop must not double-record
  }
  {
    bsobs::ScopedProbe probe(&prof, bsobs::HotStage::kAddrmanSelect);
  }  // records via the destructor
  EXPECT_EQ(prof.Stats(bsobs::HotStage::kAddrmanSelect).count, 2u);
}

TEST(ProfilerRender, JsonCoversRecordedStagesOnly) {
  bsobs::HotpathProfiler prof;
  prof.Record(bsobs::HotStage::kCodecDecode, 123);
  const std::string json = prof.RenderJson();
  EXPECT_NE(json.find("\"codec_decode\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  // Stages with no samples are omitted from the report.
  EXPECT_EQ(json.find("\"dispatch\""), std::string::npos);
}

// Named "Profiler" so the check.sh TSan stage includes it.
TEST(ProfilerConcurrency, ParallelRecordsAreExact) {
  bsobs::HotpathProfiler prof;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&prof]() {
      for (int i = 0; i < kPerThread; ++i) {
        prof.Record(bsobs::HotStage::kDispatch,
                    static_cast<std::uint64_t>(i % 4096) + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = prof.Stats(bsobs::HotStage::kDispatch);
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.min_ns, 1u);
  EXPECT_EQ(s.max_ns, 4096u);
}

}  // namespace
