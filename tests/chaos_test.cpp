// Deterministic chaos harness: the ban-score pipeline, the hardened node,
// and the detection engine under randomized fault plans (packet loss,
// duplication, reordering, corruption, link flaps, peer crash/restart), many
// seeds. Every run is reproducible from its seed, and each run checks the
// safety invariants the paper's mechanisms rely on:
//
//   * the process never crashes (a completing test IS the assertion; the
//     TSan stage in scripts/check.sh re-runs a seed slice for UB/data races);
//   * a peer's score never reaches the ban threshold without the policy
//     banning it (score/ban coupling);
//   * bans expire exactly once — every banned identifier is banned at most
//     once per run and the ban table is empty after the expiry horizon;
//   * honest peers are never misbehavior-scored, no matter how much loss,
//     reordering, or corruption their links suffer (faults are not crimes);
//   * the Fig. 10 detector still separates attack windows from normal
//     windows at 5% packet loss.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "attack/attacker.hpp"
#include "attack/bmdos.hpp"
#include "attack/crafter.hpp"
#include "attack/eclipse.hpp"
#include "attack/traffic.hpp"
#include "core/node.hpp"
#include "detect/engine.hpp"
#include "detect/monitor.hpp"
#include "sim/faults.hpp"
#include "sim/simfs.hpp"
#include "store/fsck.hpp"

namespace {

using namespace bsnet;  // NOLINT
using bsattack::AttackerNode;
using bsattack::AttackSession;
using bsattack::Crafter;
using bsim::FaultPlan;
using bsim::FaultSpec;

constexpr std::uint32_t kVictimIp = 0x0a000001;
constexpr std::uint32_t kAttackerIp = 0x0a000066;
constexpr std::uint32_t kHonestBase = 0x0a000100;
constexpr int kHonestPeers = 4;

NodeConfig ChaosVictimConfig() {
  NodeConfig config;
  config.target_outbound = kHonestPeers;
  // Short ban so expiry happens inside the run.
  config.ban_duration = 30 * bsim::kSecond;
  // All the hardening on, so chaos exercises it: keepalive + dead-peer
  // detection, handshake watchdog, bounded receive buffers, dial backoff.
  config.ping_interval = 2 * bsim::kSecond;
  config.ping_timeout = 10 * bsim::kSecond;
  config.handshake_timeout = 8 * bsim::kSecond;
  config.reconnect_backoff = true;
  config.reconnect_backoff_cap = 8 * bsim::kSecond;  // recovers within the run
  config.trace_capacity = 4096;
  return config;
}

// One self-contained chaos world: a hardened victim, a few honest peers, an
// attacker, and a seeded FaultPlan. All drivers (honest traffic, attack
// loop, flaps, crash/restart) run off the one scheduler, so the whole run is
// a pure function of the seed.
class ChaosWorld {
 public:
  ChaosWorld(std::uint64_t seed, const std::string& tag,
             NodeConfig victim_config = ChaosVictimConfig())
      : net(sched),
        plan(sched, seed),
        chaos_rng(seed * 7919 + 1),
        victim_config_(victim_config) {
    banlist_path_ =
        ::testing::TempDir() + "/chaos_" + tag + "_" + std::to_string(seed) + ".dat";
    net.SetFaultPlan(&plan);  // before any connection: reliable TCP from t=0
    for (int i = 0; i < kHonestPeers; ++i) {
      NodeConfig pc;
      pc.target_outbound = 0;
      pc.rng_seed = 1000 + i;
      honest.push_back(std::make_unique<Node>(sched, net, kHonestBase + i, pc));
      honest.back()->Start();
    }
    attacker = std::make_unique<AttackerNode>(sched, net, kAttackerIp,
                                              victim_config_.chain.magic);
    crafter = std::make_unique<Crafter>(victim_config_.chain);
    SpawnVictim(/*load_banlist=*/false);
  }

  ~ChaosWorld() { std::remove(banlist_path_.c_str()); }

  // ---- World surgery ----

  void SpawnVictim(bool load_banlist) {
    victim = std::make_unique<Node>(sched, net, kVictimIp, victim_config_);
    if (load_banlist) victim->Bans().LoadFromFile(banlist_path_, sched.Now());
    for (const auto& peer : honest) victim->AddKnownAddress({peer->Ip(), 8333});
    AttachInvariantHooks();
    victim->Start();
  }

  /// Crash the victim: persist its banlist, silence it, keep the carcass
  /// allocated until the run ends (in-flight events may still reference it).
  void CrashVictim() {
    victim->Bans().SaveToFile(banlist_path_);
    victim->Stop();
    graveyard_.push_back(std::move(victim));
  }

  void CrashHonest(std::size_t index) {
    honest[index]->Stop();
    graveyard_.push_back(std::move(honest[index]));
  }

  void RestartHonest(std::size_t index) {
    NodeConfig pc;
    pc.target_outbound = 0;
    pc.rng_seed = 1000 + static_cast<std::uint64_t>(index);
    honest[index] = std::make_unique<Node>(sched, net, kHonestBase + index, pc);
    honest[index]->Start();
  }

  // ---- Invariant bookkeeping ----

  void AttachInvariantHooks() {
    victim->on_misbehavior = [this](const Peer& peer, Misbehavior,
                                    const MisbehaviorOutcome& outcome) {
      if (!outcome.rule_applied) return;
      scored_ips.insert(peer.remote.ip);
      if (outcome.total_score >= victim->Config().ban_threshold &&
          !outcome.should_ban) {
        ++threshold_crossings_without_ban;
      }
    };
    victim->on_peer_banned = [this](const Peer& peer) {
      ++ban_events[peer.remote];
      last_banned = peer.remote;
    };
  }

  // ---- Drivers ----

  /// Honest peers ping the victim twice a second — protocol-legal traffic
  /// that must never earn a misbehavior point regardless of link faults.
  void StartHonestTraffic() {
    honest_running_ = true;
    HonestTick();
  }
  void StopHonestTraffic() { honest_running_ = false; }

  /// The attacker keeps one session to the victim and sends a
  /// segwit-invalid TX (100 points, Table I) every 2 s: each delivery is an
  /// instant threshold crossing, so the run produces a stream of
  /// ban → expiry → re-ban cycles across Sybil identifiers.
  void StartAttack() {
    attack_running_ = true;
    AttackTick();
  }
  void StopAttack() { attack_running_ = false; }

  FaultSpec RandomSpec() {
    FaultSpec spec;
    spec.loss = 0.08 * chaos_rng.NextDouble();
    spec.duplicate = 0.06 * chaos_rng.NextDouble();
    spec.reorder = 0.10 * chaos_rng.NextDouble();
    spec.corrupt = 0.05 * chaos_rng.NextDouble();
    return spec;
  }

  std::uint32_t RandomHonestIp() {
    return kHonestBase +
           static_cast<std::uint32_t>(chaos_rng.Below(kHonestPeers));
  }

  /// Counter fingerprint for determinism comparison (paired with the
  /// human-readable trace ring).
  std::string Fingerprint() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "msgs=%llu bans=%llu shed=%llu segs=%llu loss=%llu dup=%llu "
                  "reord=%llu corr=%llu part=%llu retx=%llu",
                  static_cast<unsigned long long>(victim->TotalMessagesReceived()),
                  static_cast<unsigned long long>(victim->PeersBanned()),
                  static_cast<unsigned long long>(victim->RxBytesShed()),
                  static_cast<unsigned long long>(net.SegmentsSent()),
                  static_cast<unsigned long long>(plan.SegmentsDroppedLoss()),
                  static_cast<unsigned long long>(plan.SegmentsDuplicated()),
                  static_cast<unsigned long long>(plan.SegmentsDelayed()),
                  static_cast<unsigned long long>(plan.SegmentsCorrupted()),
                  static_cast<unsigned long long>(plan.SegmentsDroppedPartition()),
                  static_cast<unsigned long long>(net.SegmentsRetransmitted()));
    return std::string(buf) + "\n" + victim->Trace().Render(128);
  }

  const std::string& BanlistPath() const { return banlist_path_; }

  bsim::Scheduler sched;
  bsim::Network net;
  FaultPlan plan;
  bsutil::Rng chaos_rng;

  std::vector<std::unique_ptr<Node>> honest;
  std::unique_ptr<Node> victim;
  std::unique_ptr<AttackerNode> attacker;
  std::unique_ptr<Crafter> crafter;

  // Invariant observations.
  std::set<std::uint32_t> scored_ips;
  int threshold_crossings_without_ban = 0;
  std::map<Endpoint, int> ban_events;
  Endpoint last_banned;
  std::uint64_t attack_deliveries = 0;

 private:
  void HonestTick() {
    if (!honest_running_) return;
    for (const auto& peer : honest) {
      if (peer != nullptr) {
        peer->SendToRemoteIp(kVictimIp, bsproto::PingMsg{++honest_nonce_});
      }
    }
    sched.After(500 * bsim::kMillisecond, [this]() { HonestTick(); });
  }

  void AttackTick() {
    if (!attack_running_) return;
    AttackSession* ready = nullptr;
    bool any_live = false;
    for (AttackSession* session : attacker->LiveSessions()) {
      any_live = true;
      if (session->SessionReady()) {
        ready = session;
        break;
      }
    }
    if (ready != nullptr) {
      attacker->Send(*ready, crafter->SegwitInvalidTx());
      ++attack_deliveries;
    } else if (!any_live) {
      // Previous identifier banned (or handshake lost to faults): come back
      // as a fresh Sybil identifier. Stuck half-open sessions clear
      // themselves via the SYN timeout.
      attacker->OpenSession({kVictimIp, 8333});
    }
    sched.After(2 * bsim::kSecond, [this]() { AttackTick(); });
  }

  NodeConfig victim_config_;
  std::string banlist_path_;
  std::vector<std::unique_ptr<Node>> graveyard_;
  bool honest_running_ = false;
  bool attack_running_ = false;
  std::uint64_t honest_nonce_ = 0;
};

/// The full randomized scenario one seed runs through. Returns after the
/// post-chaos heal + ban-expiry horizon.
void RunChaosScenario(ChaosWorld& world) {
  // Clean boot: all outbound slots fill before the weather turns.
  world.sched.RunUntil(5 * bsim::kSecond);
  ASSERT_EQ(world.victim->OutboundCount(), static_cast<std::size_t>(kHonestPeers));

  // Randomized weather for 60 s: per-segment faults everywhere, two link
  // flaps against the victim, one honest peer crash with restart.
  world.plan.SetDefaultFaults(world.RandomSpec());
  for (int flap = 0; flap < 2; ++flap) {
    const bsim::SimTime at =
        5 * bsim::kSecond +
        static_cast<bsim::SimTime>(world.chaos_rng.NextDouble() * 40) * bsim::kSecond;
    const bsim::SimTime down =
        (1 + static_cast<bsim::SimTime>(world.chaos_rng.NextDouble() * 3)) *
        bsim::kSecond;
    world.plan.ScheduleLinkFlap(kVictimIp, world.RandomHonestIp(), at, down);
  }
  const std::size_t crash_index = world.chaos_rng.Below(kHonestPeers);
  world.plan.on_host_crash = [&world, crash_index](std::uint32_t) {
    world.CrashHonest(crash_index);
  };
  world.plan.on_host_restart = [&world, crash_index](std::uint32_t) {
    world.RestartHonest(crash_index);
  };
  world.plan.ScheduleCrash(kHonestBase + static_cast<std::uint32_t>(crash_index),
                           20 * bsim::kSecond, 8 * bsim::kSecond);

  world.StartHonestTraffic();
  world.StartAttack();
  world.sched.RunUntil(65 * bsim::kSecond);

  // Heal: attack off, weather off, run past the ban-expiry horizon.
  world.StopAttack();
  world.plan.SetDefaultFaults(FaultSpec{});
  world.sched.RunUntil(65 * bsim::kSecond + world.victim->Config().ban_duration +
                       15 * bsim::kSecond);
}

void AssertChaosInvariants(ChaosWorld& world) {
  // Score/ban coupling: no peer ever sat at/above the threshold unbanned.
  EXPECT_EQ(world.threshold_crossings_without_ban, 0);

  // Honest peers under loss/corruption/reordering are never scored; the only
  // identifier that ever earns points is the attacker's.
  for (const std::uint32_t ip : world.scored_ips) {
    EXPECT_EQ(ip, kAttackerIp) << "honest peer 0x" << std::hex << ip
                               << " was misbehavior-scored under faults";
  }

  // The attack actually landed: deliveries happened and produced bans.
  EXPECT_GT(world.attack_deliveries, 0u);
  EXPECT_GE(world.victim->PeersBanned(), 1u);

  // Bans expire exactly once: every banned identifier was banned a single
  // time (fresh Sybil ports each cycle), and after the expiry horizon the
  // maintenance sweep has emptied the table.
  for (const auto& [endpoint, count] : world.ban_events) {
    EXPECT_EQ(count, 1) << endpoint.ToString() << " banned more than once";
  }
  EXPECT_EQ(world.victim->Bans().Size(), 0u);

  // The fault plan really fired its scheduled events.
  EXPECT_EQ(world.plan.HostCrashes(), 1u);
  EXPECT_EQ(world.plan.LinkFlaps(), 2u);

  // After the heal the hardened node recovered its outbound slots (backoff
  // cap is 8 s, heal phase is 45 s).
  EXPECT_GE(world.victim->OutboundCount(), static_cast<std::size_t>(kHonestPeers - 1));
}

// ---------------------------------------------------------------------------
// The seed sweep: ≥50 randomized chaos runs.

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, InvariantsHoldUnderRandomizedFaults) {
  ChaosWorld world(GetParam(), "sweep");
  RunChaosScenario(world);
  AssertChaosInvariants(world);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep, ::testing::Range<std::uint64_t>(1, 51));

// ---------------------------------------------------------------------------
// Determinism: a chaos run is a pure function of its seed.

TEST(ChaosDeterminism, SameSeedSameRunDifferentSeedDifferentRun) {
  auto run = [](std::uint64_t seed) {
    ChaosWorld world(seed, "det");
    RunChaosScenario(world);
    return world.Fingerprint();
  };
  const std::string first = run(7);
  const std::string second = run(7);
  EXPECT_EQ(first, second) << "same seed must reproduce the identical event trace";
  EXPECT_NE(first, run(8));
}

// ---------------------------------------------------------------------------
// Crash/restart: the victim dies mid-attack and is rebuilt from its
// persisted banlist; the ban survives the reboot.

TEST(ChaosCrashRestart, VictimRebuildsFromPersistedBanlist) {
  NodeConfig config = ChaosVictimConfig();
  config.ban_duration = 2 * bsim::kHour;  // survives the whole test
  ChaosWorld world(21, "crash", config);

  world.sched.RunUntil(5 * bsim::kSecond);
  FaultSpec mild;
  mild.loss = 0.03;
  world.plan.SetDefaultFaults(mild);
  world.StartHonestTraffic();
  world.StartAttack();
  world.sched.RunUntil(25 * bsim::kSecond);
  ASSERT_GE(world.victim->Bans().Size(), 1u);
  const Endpoint banned = world.last_banned;

  world.plan.on_host_crash = [&world](std::uint32_t) { world.CrashVictim(); };
  world.plan.on_host_restart = [&world](std::uint32_t) {
    world.SpawnVictim(/*load_banlist=*/true);
  };
  world.plan.ScheduleCrash(kVictimIp, 26 * bsim::kSecond,
                           /*restart_after=*/5 * bsim::kSecond);
  world.StopAttack();
  world.sched.RunUntil(50 * bsim::kSecond);

  // The reborn victim loaded the banlist and still refuses the banned
  // identifier...
  EXPECT_EQ(world.plan.HostCrashes(), 1u);
  ASSERT_GE(world.victim->Bans().Size(), 1u);
  EXPECT_TRUE(world.victim->Bans().IsBanned(banned, world.sched.Now()));
  AttackSession* replay = world.attacker->OpenSession({kVictimIp, 8333},
                                                      /*auto_handshake=*/true,
                                                      banned.port);
  world.sched.RunUntil(world.sched.Now() + 5 * bsim::kSecond);
  EXPECT_FALSE(replay->SessionReady());
  EXPECT_TRUE(replay->closed);

  // ...while honest peers (and fresh identifiers) reconnect fine.
  EXPECT_GE(world.victim->OutboundCount(), static_cast<std::size_t>(kHonestPeers - 1));
  AttackSession* fresh = world.attacker->OpenSession({kVictimIp, 8333});
  world.sched.RunUntil(world.sched.Now() + 5 * bsim::kSecond);
  EXPECT_TRUE(fresh->SessionReady());
}

// Same crash/restart chaos, but over the durable store instead of the
// banlist file: the reborn victim replays bans, scores, and addresses from
// its WAL with no explicit save/load step, and the store verifies healthy
// after the whole run.

TEST(ChaosCrashRestart, DurableStoreVictimRebuildsWithoutBanlistFile) {
  bsim::SimFs fs(33);
  NodeConfig config = ChaosVictimConfig();
  config.ban_duration = 2 * bsim::kHour;  // survives the whole test
  config.enable_durable_store = true;
  config.store_dir = "victim-store";
  config.store_fs = &fs;
  ChaosWorld world(33, "durable", config);
  ASSERT_NE(world.victim->Durable(), nullptr);

  world.sched.RunUntil(5 * bsim::kSecond);
  FaultSpec mild;
  mild.loss = 0.03;
  world.plan.SetDefaultFaults(mild);
  world.StartHonestTraffic();
  world.StartAttack();
  world.sched.RunUntil(25 * bsim::kSecond);
  ASSERT_GE(world.victim->Bans().Size(), 1u);
  const Endpoint banned = world.last_banned;
  const std::size_t bans_before = world.victim->Bans().Size();

  // No SaveToFile / LoadFromFile: the respawned node's constructor replays
  // the durable store.
  world.plan.on_host_crash = [&world](std::uint32_t) { world.CrashVictim(); };
  world.plan.on_host_restart = [&world](std::uint32_t) {
    world.SpawnVictim(/*load_banlist=*/false);
  };
  world.plan.ScheduleCrash(kVictimIp, 26 * bsim::kSecond,
                           /*restart_after=*/5 * bsim::kSecond);
  world.StopAttack();
  world.sched.RunUntil(50 * bsim::kSecond);

  EXPECT_EQ(world.plan.HostCrashes(), 1u);
  ASSERT_NE(world.victim->Durable(), nullptr);
  EXPECT_GE(world.victim->Bans().Size(), bans_before);
  EXPECT_TRUE(world.victim->Bans().IsBanned(banned, world.sched.Now()));
  AttackSession* replay = world.attacker->OpenSession({kVictimIp, 8333},
                                                      /*auto_handshake=*/true,
                                                      banned.port);
  world.sched.RunUntil(world.sched.Now() + 5 * bsim::kSecond);
  EXPECT_FALSE(replay->SessionReady());
  EXPECT_TRUE(replay->closed);

  // Honest peers reconnect, and the on-disk store checks out clean.
  EXPECT_GE(world.victim->OutboundCount(), static_cast<std::size_t>(kHonestPeers - 1));
  const bsstore::FsckReport report =
      bsstore::RunFsck(fs, "victim-store", /*repair=*/false);
  EXPECT_TRUE(report.store_found);
  EXPECT_TRUE(report.healthy);
  EXPECT_GT(report.active_records, 0u);
}

// ---------------------------------------------------------------------------
// Fig. 10 under weather: the detector's attack/normal separation survives 5%
// packet loss on every honest link.

TEST(ChaosDetection, Fig10SeparationSurvivesFivePercentLoss) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  FaultPlan plan(sched, 4242);
  net.SetFaultPlan(&plan);

  NodeConfig config;
  config.target_outbound = 8;
  Node target(sched, net, kVictimIp, config);
  std::vector<std::unique_ptr<Node>> storage;
  std::vector<Node*> peers;
  for (int i = 0; i < 20; ++i) {
    NodeConfig pc;
    pc.target_outbound = 0;
    auto peer = std::make_unique<Node>(sched, net, kHonestBase + i, pc);
    peer->Start();
    target.AddKnownAddress({peer->Ip(), 8333});
    peers.push_back(peer.get());
    storage.push_back(std::move(peer));
  }
  target.Start();
  sched.RunUntil(10 * bsim::kSecond);
  ASSERT_EQ(target.OutboundCount(), 8u);

  // 5% loss on every link; the attacker's own host is exempt so the flood
  // sessions establish (handshake SYNs are not retransmitted — an attacker
  // would simply retry from a clean vantage anyway).
  FaultSpec lossy;
  lossy.loss = 0.05;
  plan.SetDefaultFaults(lossy);
  plan.SetHostFaults(kAttackerIp, FaultSpec{});

  bsdetect::Monitor monitor(target);
  bsattack::MainnetTrafficGenerator traffic(sched, peers, target,
                                            bsattack::TrafficConfig{});
  traffic.Start();
  sched.RunUntil(sched.Now() + 28 * bsim::kMinute);
  bsdetect::StatEngine engine;
  ASSERT_TRUE(engine.Train(monitor.AllWindows(4)));

  // Normal lossy traffic stays inside the envelope...
  sched.RunUntil(sched.Now() + 6 * bsim::kMinute);
  const auto normal = engine.Detect(monitor.Window(sched.Now(), 4));
  EXPECT_FALSE(normal.anomalous) << "5% loss alone must not trip the detector";

  // ...and the paper's PING flood still stands out.
  AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);
  Crafter crafter(config.chain);
  bsattack::BmDosConfig bm;
  bm.payload = bsattack::BmDosConfig::Payload::kPing;
  bm.rate_msgs_per_sec = 250;
  bsattack::BmDosAttack attack(attacker, {kVictimIp, 8333}, crafter, bm);
  attack.Start();
  sched.RunUntil(sched.Now() + 6 * bsim::kMinute);
  attack.Stop();

  const auto result = engine.Detect(monitor.Window(sched.Now(), 4));
  EXPECT_TRUE(result.anomalous);
  EXPECT_TRUE(result.bmdos_suspected);
  EXPECT_GT(result.n, engine.GetProfile().tau_n_high);
}

// ---------------------------------------------------------------------------
// Overload + weather: the full resource-governance stack (eviction, rate
// limit, priority) under a one-netgroup Sybil flood with 5% packet loss on
// every link. The Sybil /16 quickly holds a plurality of inbound slots, so
// its surplus reconnects are flatly refused by the anti-churn guard; the
// eviction machinery is exercised by honest arrivals instead — a late
// joiner from a fresh /16 and an honest peer redialing after its access
// link flaps — each of which must win a slot back by evicting a Sybil.
// The invariants: no honest peer is ever the eviction victim, loss is
// never punished as misbehavior, and once the weather clears every honest
// peer is connected again.

TEST(ChaosOverload, SybilFloodPlusLossNeverEvictsHonest) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  FaultPlan plan(sched, 777);
  net.SetFaultPlan(&plan);

  NodeConfig config;
  config.max_inbound = 16;
  config.target_outbound = 0;
  config.ping_interval = 1 * bsim::kSecond;
  config.ping_timeout = 6 * bsim::kSecond;
  config.enable_eviction = true;
  config.enable_rate_limit = true;
  config.rx_cycles_per_sec = 8.0e7;
  config.enable_priority = true;
  config.governor_cycles_per_sec = 1.0e9;
  Node victim(sched, net, kVictimIp, config);
  victim.Start();

  std::vector<std::uint32_t> evicted_honest;
  victim.on_peer_evicted = [&evicted_honest](const Peer& peer) {
    if ((peer.remote.ip >> 16) != 0xc0a8u) evicted_honest.push_back(peer.remote.ip);
  };

  // Six honest peers in six distinct /16 netgroups, each holding one
  // outbound session into the victim and redialing whenever it drops.
  std::vector<std::unique_ptr<Node>> honest;
  for (std::uint32_t i = 0; i < 6; ++i) {
    NodeConfig pc;
    pc.target_outbound = 1;
    pc.rng_seed = 500 + i;
    pc.ping_interval = 1 * bsim::kSecond;
    pc.ping_timeout = 6 * bsim::kSecond;
    auto node = std::make_unique<Node>(sched, net, 0x0a100001 + (i << 16), pc);
    node->AddKnownAddress({kVictimIp, 8333});
    node->Start();
    honest.push_back(std::move(node));
  }
  sched.RunUntil(2 * bsim::kSecond);
  for (const auto& node : honest) ASSERT_EQ(node->OutboundCount(), 1u);

  // A seventh honest peer from a fresh /16 arrives mid-flood (10s): the
  // table is full of Sybils by then, so admission requires an eviction.
  NodeConfig jc;
  jc.target_outbound = 1;
  jc.rng_seed = 599;
  jc.ping_interval = 1 * bsim::kSecond;
  jc.ping_timeout = 6 * bsim::kSecond;
  auto joiner = std::make_unique<Node>(sched, net, 0x0a200001, jc);
  joiner->AddKnownAddress({kVictimIp, 8333});
  sched.After(10 * bsim::kSecond, [&joiner]() { joiner->Start(); });

  FaultSpec lossy;
  lossy.loss = 0.05;
  plan.SetDefaultFaults(lossy);
  // One honest access link goes dark for 8s mid-flood: the victim times the
  // peer out, a Sybil snatches the freed slot, and the healed honest peer
  // must evict its way back in.
  plan.ScheduleLinkFlap(honest[0]->Ip(), kVictimIp, 12 * bsim::kSecond,
                        8 * bsim::kSecond);

  // The Sybil flood: two attacker hosts in ONE /16, 6 sessions each — 12
  // Sybil conns against 10 free slots, 20 kB bogus-BLOCK frames, immediate
  // reconnect whenever eviction claws a slot back.
  Crafter crafter(config.chain);
  const bsutil::ByteVec bogus = crafter.BogusBlockFrame(config.chain.magic, 20'000);
  std::vector<std::unique_ptr<AttackerNode>> sybils;
  std::vector<AttackSession*> sessions;
  for (std::uint32_t i = 0; i < 2; ++i) {
    sybils.push_back(std::make_unique<AttackerNode>(sched, net, 0xc0a80001 + i,
                                                    config.chain.magic));
    for (int s = 0; s < 6; ++s) sessions.push_back(sybils[i]->OpenSession({kVictimIp, 8333}));
  }
  bool flooding = true;
  std::function<void()> flood_tick = [&]() {
    if (!flooding) return;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      AttackerNode& owner = *sybils[i / 6];
      if (sessions[i] == nullptr || sessions[i]->closed) {
        sessions[i] = owner.OpenSession({kVictimIp, 8333});
      } else if (sessions[i]->tcp_established) {
        owner.SendRawFrame(*sessions[i], bogus);
      }
    }
    sched.After(10 * bsim::kMillisecond, flood_tick);
  };
  sched.After(0, flood_tick);
  sched.RunUntil(32 * bsim::kSecond);

  // The defenses were actually exercised under weather...
  EXPECT_GT(victim.PeersEvicted(), 0u);
  EXPECT_GT(victim.RateLimitedFrames(), 0u);
  // ...and no honest peer was ever the victim of an eviction.
  EXPECT_TRUE(evicted_honest.empty())
      << evicted_honest.size() << " honest evictions, first ip=0x" << std::hex
      << evicted_honest.front();

  // Heal: flood off, weather off. Every honest peer ends connected.
  flooding = false;
  plan.SetDefaultFaults(FaultSpec{});
  sched.RunUntil(sched.Now() + 20 * bsim::kSecond);
  for (const auto& node : honest) {
    EXPECT_EQ(node->OutboundCount(), 1u)
        << "honest 0x" << std::hex << node->Ip() << " did not recover";
  }
  EXPECT_EQ(joiner->OutboundCount(), 1u) << "late joiner did not recover";
}

// ---------------------------------------------------------------------------
// Eclipse + weather + crash: a hardened victim (bucketed addrman, anchors,
// feelers, outbound diversity, stale-tip recovery, eviction, durable store)
// under a sustained eclipse attack with 5% packet loss on every link, crashed
// and rebuilt from its WAL mid-attack. Across 50 seeds: the reborn victim
// must re-dial at least one durable anchor, shed the eclipse once the
// attacker gives up (final control fraction < 0.5), and leave a healthy
// store behind.

class ChaosEclipseHeal : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosEclipseHeal, VictimRecoversControlAcrossCrashAndLoss) {
  const std::uint64_t seed = GetParam();
  constexpr std::uint32_t kEclVictim = 0x0a000001;
  constexpr std::uint32_t kEclAttacker = 0xc0a80001;
  constexpr int kEclHonest = 12;
  constexpr int kEclInfra = 4;

  bsim::SimFs fs(seed);
  bsim::Scheduler sched;
  bsim::Network net(sched);
  FaultPlan plan(sched, seed);
  net.SetFaultPlan(&plan);
  // Clean boot, then weather (the sweep's convention): the mesh links and
  // the first blocks must land before loss starts, because a ring link that
  // misses a block at mine time has no catch-up sync to recover through.
  FaultSpec lossy;
  lossy.loss = 0.05;
  sched.After(4 * bsim::kSecond,
              [&plan, lossy]() { plan.SetDefaultFaults(lossy); });

  NodeConfig config;
  config.max_inbound = 16;
  config.target_outbound = 6;
  config.ban_duration = 60 * bsim::kSecond;
  config.enable_eviction = true;
  config.inactivity_timeout = 15 * bsim::kSecond;
  config.enable_addrman_bucketing = true;
  config.enable_anchors = true;
  config.enable_feelers = true;
  config.feeler_interval = 5 * bsim::kSecond;
  config.feeler_timeout = 3 * bsim::kSecond;
  config.enable_outbound_diversity = true;
  config.enable_stale_tip_recovery = true;
  config.stale_tip_timeout = 10 * bsim::kSecond;
  config.enable_durable_store = true;
  config.store_dir = "eclipse-chaos-store";
  config.store_fs = &fs;
  config.rng_seed = seed;

  Crafter crafter(config.chain);
  std::vector<std::unique_ptr<Node>> honest;
  for (int i = 0; i < kEclHonest; ++i) {
    NodeConfig pc;
    pc.chain = config.chain;
    pc.target_outbound = 3;
    pc.rng_seed = 1000 + static_cast<std::uint64_t>(i);
    auto node = std::make_unique<Node>(
        sched, net, 0x0a000001 + (static_cast<std::uint32_t>(16 + i) << 16), pc);
    node->AddKnownAddress(
        {0x0a000001 + (static_cast<std::uint32_t>(16 + (i + 1) % kEclHonest) << 16),
         pc.listen_port});
    node->AddKnownAddress(
        {0x0a000001 + (static_cast<std::uint32_t>(16 + (i + 2) % kEclHonest) << 16),
         pc.listen_port});
    honest.push_back(std::move(node));
  }
  for (int i = 0; i < kEclHonest; ++i) {
    const int idx = i;
    sched.After(idx * 50 * bsim::kMillisecond,
                [&honest, idx]() { honest[static_cast<std::size_t>(idx)]->Start(); });
    sched.After(20 * bsim::kSecond + idx * 1500 * bsim::kMillisecond,
                [&honest, idx]() {
                  honest[static_cast<std::size_t>(idx)]->AddKnownAddress(
                      {kEclVictim, 8333});
                });
    auto send_tx = std::make_shared<std::function<void()>>();
    *send_tx = [&honest, &sched, &crafter, idx, send_tx]() {
      honest[static_cast<std::size_t>(idx)]->SendToRemoteIp(kEclVictim,
                                                            crafter.ValidTx());
      sched.After(2 * bsim::kSecond, [send_tx]() { (*send_tx)(); });
    };
    sched.After(20 * bsim::kSecond + idx * 1500 * bsim::kMillisecond +
                    200 * bsim::kMillisecond,
                [send_tx]() { (*send_tx)(); });
  }
  auto mine = std::make_shared<std::function<void()>>();
  *mine = [&honest, &sched, mine]() {
    honest[0]->MineAndRelay();
    sched.After(3 * bsim::kSecond, [mine]() { (*mine)(); });
  };
  sched.After(2 * bsim::kSecond, [mine]() { (*mine)(); });

  std::vector<std::unique_ptr<Node>> infra;
  std::vector<Node*> infra_ptrs;
  std::set<std::uint32_t> attacker_ips = {kEclAttacker};
  for (int i = 0; i < kEclInfra; ++i) {
    NodeConfig ic;
    ic.chain = config.chain;
    ic.target_outbound = 0;
    ic.rng_seed = 2000 + static_cast<std::uint64_t>(i);
    auto node = std::make_unique<Node>(sched, net,
                                       0xc0a80002 + static_cast<std::uint32_t>(i), ic);
    node->Start();
    infra_ptrs.push_back(node.get());
    attacker_ips.insert(node->Ip());
    infra.push_back(std::move(node));
  }

  std::vector<std::unique_ptr<Node>> graveyard;
  auto victim = std::make_unique<Node>(sched, net, kEclVictim, config);
  ASSERT_NE(victim->Durable(), nullptr);
  for (int i = 0; i < kEclHonest; ++i) {
    victim->AddKnownAddress(
        {0x0a000001 + (static_cast<std::uint32_t>(16 + i) << 16), 8333});
  }
  victim->Start();

  AttackerNode attacker(sched, net, kEclAttacker, config.chain.magic);
  bsattack::EclipseConfig ec;
  ec.inbound_sessions = 16;
  ec.addr_gossip_rounds = 4;
  ec.addrs_per_message = 400;
  ec.defame_interval = 2500 * bsim::kMillisecond;
  ec.repoison_interval = 2 * bsim::kSecond;
  ec.reoccupy_inbound = true;
  auto attack = std::make_unique<bsattack::EclipseAttack>(attacker, *victim,
                                                          infra_ptrs, ec);
  sched.After(5 * bsim::kSecond, [&attack]() { attack->Start(); });

  // Crash mid-attack, rebuild from the WAL two (sim) seconds later. The
  // reborn node gets NO address re-seeding: everything it knows — addresses,
  // bans, anchors — must come out of the durable store replay.
  std::unique_ptr<bsattack::EclipseAttack> attack2;
  sched.After(9 * bsim::kSecond, [&]() {
    attack->Stop();
    victim->Stop();
    graveyard.push_back(std::move(victim));
  });
  sched.After(11 * bsim::kSecond, [&]() {
    victim = std::make_unique<Node>(sched, net, kEclVictim, config);
    victim->Start();
  });
  sched.After(11500 * bsim::kMillisecond, [&]() {
    attack2 = std::make_unique<bsattack::EclipseAttack>(attacker, *victim,
                                                        infra_ptrs, ec);
    attack2->Start();
  });
  sched.After(45 * bsim::kSecond, [&]() {
    if (attack2 != nullptr) attack2->Stop();
  });

  auto control_fraction = [&]() {
    std::size_t total = 0;
    std::size_t controlled = 0;
    for (const Peer* peer : victim->Peers()) {
      if (!peer->HandshakeComplete()) continue;
      ++total;
      controlled += attacker_ips.contains(peer->remote.ip) ? 1 : 0;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(controlled) / static_cast<double>(total);
  };

  sched.RunUntil(65 * bsim::kSecond);
  double tail = 0.0;
  for (int s = 0; s < 5; ++s) {
    sched.RunUntil((66 + s) * bsim::kSecond);
    tail += control_fraction();
  }
  if (attack2 != nullptr) attack2->Stop();

  // The reborn victim re-dialed a durable anchor, shed the eclipse, and the
  // store it ran on verifies healthy.
  EXPECT_GE(victim->AnchorRedials(), 1u) << "seed " << seed;
  EXPECT_LT(tail / 5.0, 0.5) << "seed " << seed << " stayed eclipsed";
  const bsstore::FsckReport report =
      bsstore::RunFsck(fs, "eclipse-chaos-store", /*repair=*/false);
  EXPECT_TRUE(report.store_found);
  EXPECT_TRUE(report.healthy);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosEclipseHeal,
                         ::testing::Range<std::uint64_t>(1, 51));

// ---------------------------------------------------------------------------
// Routing partition + loss + crash: a hardened victim (partition resilience,
// anchors, stale-tip recovery, durable store) behind an asymmetric /16
// routing detour — return traffic from the mining side crawls through a 45 s
// detour while the forward path stays clean — with 5% packet loss on every
// link and a crash/restart mid-partition rebuilt from the WAL. Across 50
// seeds: the reborn victim must re-arm its partition monitor, reconverge to
// within one block of the miner once its /16 heals, nobody in the all-honest
// world may ban anyone (partition symptoms are not crimes), and the store it
// ran on verifies healthy.

class ChaosPartition : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosPartition, RebornVictimReconvergesWithoutHonestBans) {
  const std::uint64_t seed = GetParam();
  constexpr std::uint32_t kPartVictim = 0x0a100001;   // 10.16.0.1
  constexpr std::uint32_t kPartWitness = 0x0a280001;  // 10.40.0.1 — no side
  constexpr std::uint32_t kPartMiner = 0x0a200001;    // 10.32.0.1
  constexpr int kPartBuddies = 4;
  constexpr int kPartRelays = 3;
  const auto buddy_ip = [](int i) {
    return 0x0a000001 + (static_cast<std::uint32_t>(17 + i) << 16);
  };
  const auto relay_ip = [](int i) {
    return 0x0a000001 + (static_cast<std::uint32_t>(33 + i) << 16);
  };

  bsim::SimFs fs(seed);
  bsim::Scheduler sched;
  bsim::Network net(sched);
  FaultPlan plan(sched, seed);
  net.SetFaultPlan(&plan);
  // Clean boot, then weather (the sweep's convention).
  FaultSpec lossy;
  lossy.loss = 0.05;
  sched.After(4 * bsim::kSecond,
              [&plan, lossy]() { plan.SetDefaultFaults(lossy); });

  NodeConfig config;
  config.rng_seed = seed;
  config.target_outbound = 4;
  config.enable_partition_resilience = true;  // partition_damping defaults on
  config.enable_anchors = true;
  config.enable_stale_tip_recovery = true;
  config.stale_tip_timeout = 15 * bsim::kSecond;
  config.enable_durable_store = true;
  config.store_dir = "partition-chaos-store";
  config.store_fs = &fs;

  std::vector<std::unique_ptr<Node>> world;
  const auto add_node = [&](std::uint32_t ip, NodeConfig nc,
                            std::vector<std::uint32_t> known,
                            bsim::SimTime start_at) -> Node* {
    auto node = std::make_unique<Node>(sched, net, ip, nc);
    for (const std::uint32_t k : known) node->AddKnownAddress({k, 8333});
    Node* raw = node.get();
    sched.After(start_at, [raw]() { raw->Start(); });
    world.push_back(std::move(node));
    return raw;
  };

  NodeConfig miner_cfg;
  miner_cfg.chain = config.chain;
  miner_cfg.target_outbound = kPartRelays;
  miner_cfg.rng_seed = seed + 2000;
  Node* miner = add_node(kPartMiner, miner_cfg,
                         {relay_ip(0), relay_ip(1), relay_ip(2)}, 0);
  for (int i = 0; i < kPartRelays; ++i) {
    NodeConfig rc;
    rc.chain = config.chain;
    rc.target_outbound = 2;
    rc.rng_seed = seed + 2100 + static_cast<std::uint64_t>(i);
    add_node(relay_ip(i), rc, {kPartMiner, relay_ip((i + 1) % kPartRelays)},
             50 * bsim::kMillisecond * (i + 1));
  }
  std::vector<Node*> buddies;
  for (int i = 0; i < kPartBuddies; ++i) {
    NodeConfig bc;
    bc.chain = config.chain;
    bc.target_outbound = 2;
    bc.rng_seed = seed + 1000 + static_cast<std::uint64_t>(i);
    bc.enable_partition_resilience = true;
    buddies.push_back(
        add_node(buddy_ip(i), bc, {relay_ip(i % kPartRelays), kPartVictim},
                 300 * bsim::kMillisecond + i * 50 * bsim::kMillisecond));
  }
  NodeConfig wc;
  wc.chain = config.chain;
  wc.target_outbound = 2;
  wc.rng_seed = seed + 3000;
  wc.relay = false;
  wc.enable_partition_resilience = true;
  add_node(kPartWitness, wc, {kPartVictim, kPartMiner}, 600 * bsim::kMillisecond);

  std::vector<std::unique_ptr<Node>> graveyard;
  std::unique_ptr<Node> victim;
  sched.After(bsim::kSecond, [&]() {
    victim = std::make_unique<Node>(sched, net, kPartVictim, config);
    ASSERT_NE(victim->Durable(), nullptr);
    for (int i = 0; i < kPartBuddies; ++i) {
      victim->AddKnownAddress({buddy_ip(i), 8333});
    }
    victim->Start();
  });
  sched.After(5 * bsim::kSecond, [&]() {
    victim->AddKnownAddress({kPartMiner, 8333});
    for (int i = 0; i < kPartRelays; ++i) {
      victim->AddKnownAddress({relay_ip(i), 8333});
    }
  });

  auto mine = std::make_shared<std::function<void()>>();
  *mine = [&sched, miner, mine]() {
    miner->MineAndRelay();
    sched.After(3 * bsim::kSecond, [mine]() { (*mine)(); });
  };
  sched.After(2 * bsim::kSecond, [mine]() { (*mine)(); });

  // The asymmetric cut at t=10 s, the victim's own /16 healed at t=45 s.
  std::vector<std::uint32_t> side_a = {FaultPlan::GroupOf(kPartVictim)};
  for (int i = 0; i < kPartBuddies; ++i) {
    side_a.push_back(FaultPlan::GroupOf(buddy_ip(i)));
  }
  std::vector<std::uint32_t> side_b = {FaultPlan::GroupOf(kPartMiner)};
  for (int i = 0; i < kPartRelays; ++i) {
    side_b.push_back(FaultPlan::GroupOf(relay_ip(i)));
  }
  plan.ScheduleDelayPartition(side_a, side_b, /*ab=*/0,
                              /*ba=*/45 * bsim::kSecond, 10 * bsim::kSecond);
  plan.SchedulePartialHeal({FaultPlan::GroupOf(kPartVictim)}, side_b,
                           45 * bsim::kSecond);

  // Crash mid-partition, rebirth from the WAL four seconds later. The reborn
  // node gets NO address re-seeding: addresses, anchors, and scores must come
  // out of the durable store replay.
  plan.on_host_crash = [&](std::uint32_t ip) {
    if (ip != kPartVictim || victim == nullptr) return;
    victim->Stop();
    graveyard.push_back(std::move(victim));
  };
  plan.on_host_restart = [&](std::uint32_t ip) {
    if (ip != kPartVictim) return;
    victim = std::make_unique<Node>(sched, net, kPartVictim, config);
    victim->Start();
  };
  plan.ScheduleCrash(kPartVictim, 30 * bsim::kSecond, 4 * bsim::kSecond);

  sched.RunUntil(90 * bsim::kSecond);

  ASSERT_NE(victim, nullptr);
  EXPECT_GE(plan.HostCrashes(), 1u) << "seed " << seed;
  // The reborn victim re-armed its monitor and crossed the healed cut.
  EXPECT_GE(victim->PartitionSuspectWindows(), 1u) << "seed " << seed;
  EXPECT_LE(miner->Chain().TipHeight() - victim->Chain().TipHeight(), 1)
      << "seed " << seed << " stayed partitioned (victim "
      << victim->Chain().TipHeight() << " vs miner " << miner->Chain().TipHeight()
      << ")";
  // Faults are not crimes: nobody in this all-honest world bans anyone, and
  // no tracker anywhere reaches the threshold.
  std::size_t honest_bans = victim->Bans().Size();
  int max_score = 0;
  const auto census = [&](Node& node) {
    honest_bans += node.Bans().Size();
    for (const Peer* peer : node.Peers()) {
      max_score = std::max(max_score, node.Tracker().Score(peer->id));
    }
  };
  for (const auto& node : world) census(*node);
  census(*victim);
  EXPECT_EQ(honest_bans, 0u) << "seed " << seed;
  EXPECT_LT(max_score, 100) << "seed " << seed;
  const bsstore::FsckReport report =
      bsstore::RunFsck(fs, "partition-chaos-store", /*repair=*/false);
  EXPECT_TRUE(report.store_found) << "seed " << seed;
  EXPECT_TRUE(report.healthy) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosPartition,
                         ::testing::Range<std::uint64_t>(1, 51));

}  // namespace
