// Resource-governance tests: token buckets and the tiered CPU governor,
// Core-style inbound eviction (unit invariants plus a 50-seed Sybil-flood
// sweep), the misbehavior tracker's LRU entry cap, per-peer state teardown
// under connection churn, and the node-level rate-limit / priority wiring.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "attack/attacker.hpp"
#include "attack/crafter.hpp"
#include "core/eviction.hpp"
#include "core/misbehavior.hpp"
#include "core/node.hpp"
#include "core/ratelimit.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace bsnet;  // NOLINT
using bsattack::AttackerNode;
using bsattack::AttackSession;
using bsattack::Crafter;

constexpr std::uint32_t kTargetIp = 0x0a000001;
constexpr std::uint32_t kAttackerIp = 0x0b000002;

// ---------------------------------------------------------------------------
// TokenBucket

TEST(TokenBucket, StartsFullAndConsumes) {
  TokenBucket bucket(100.0, 10.0, 0);
  EXPECT_DOUBLE_EQ(bucket.Available(0), 100.0);
  EXPECT_TRUE(bucket.TryConsume(60.0, 0));
  EXPECT_DOUBLE_EQ(bucket.Available(0), 40.0);
  EXPECT_FALSE(bucket.TryConsume(50.0, 0));  // would overdraw
  EXPECT_DOUBLE_EQ(bucket.Available(0), 40.0);  // refused consumes nothing
}

TEST(TokenBucket, RefillsOnSimTimeAndClampsAtCapacity) {
  TokenBucket bucket(100.0, 10.0, 0);
  ASSERT_TRUE(bucket.TryConsume(100.0, 0));
  EXPECT_DOUBLE_EQ(bucket.Available(2 * bsim::kSecond), 20.0);
  // 60 more seconds would refill 600; the burst cap holds at 100.
  EXPECT_DOUBLE_EQ(bucket.Available(62 * bsim::kSecond), 100.0);
}

TEST(TokenBucket, FloorReservesTokens) {
  TokenBucket bucket(100.0, 0.0, 0);
  EXPECT_FALSE(bucket.TryConsume(90.0, 0, /*floor=*/20.0));
  EXPECT_TRUE(bucket.TryConsume(80.0, 0, /*floor=*/20.0));
  EXPECT_DOUBLE_EQ(bucket.Available(0), 20.0);
}

TEST(TokenBucket, InitialBalanceCapsOpeningCredit) {
  TokenBucket bucket(100.0, 10.0, 0, /*initial=*/10.0);
  EXPECT_DOUBLE_EQ(bucket.Available(0), 10.0);
  // Headroom beyond the opening balance has to be earned by idling.
  EXPECT_DOUBLE_EQ(bucket.Available(5 * bsim::kSecond), 60.0);
}

TEST(CpuBudgetGovernor, ShedsLowestPriorityFirst) {
  // burst 100, reserve 0.2 → low floor 40, normal floor 20, high floor 0.
  CpuBudgetGovernor governor(0.0, 100.0, 0.2, 0);
  EXPECT_DOUBLE_EQ(governor.ReserveCycles(), 20.0);
  EXPECT_TRUE(governor.TryConsume(55.0, PeerPriority::kLow, 0));    // 100→45
  EXPECT_FALSE(governor.TryConsume(10.0, PeerPriority::kLow, 0));   // <40 floor
  EXPECT_TRUE(governor.TryConsume(20.0, PeerPriority::kNormal, 0));  // 45→25
  EXPECT_FALSE(governor.TryConsume(10.0, PeerPriority::kNormal, 0));  // <20 floor
  EXPECT_TRUE(governor.TryConsume(25.0, PeerPriority::kHigh, 0));   // 25→0
  EXPECT_FALSE(governor.TryConsume(1.0, PeerPriority::kHigh, 0));
}

// ---------------------------------------------------------------------------
// Eviction selection

EvictionCandidate Candidate(std::uint64_t id, std::uint32_t ip,
                            bsim::SimTime connected_at,
                            bsim::SimTime ping = -1, bsim::SimTime tx = 0,
                            bsim::SimTime block = 0, int good = 0) {
  return EvictionCandidate{id, ip, connected_at, ping, block, tx, good};
}

TEST(Eviction, NetGroupIsSlash16) {
  EXPECT_EQ(NetGroup(0xc0a80105), 0xc0a8u);
  EXPECT_EQ(NetGroup(0x0a000001), 0x0a00u);
}

TEST(Eviction, EmptyPoolEvictsNobody) {
  EXPECT_EQ(SelectInboundPeerToEvict({}), std::nullopt);
}

TEST(Eviction, SmallFullyProtectedPoolEvictsNobody) {
  // 12 candidates are consumed whole by the netgroup (4) and ping (8)
  // protection tiers, exactly like Core refusing to evict a full-but-worthy
  // table.
  std::vector<EvictionCandidate> candidates;
  for (std::uint64_t i = 0; i < 12; ++i) {
    candidates.push_back(Candidate(i, 0xc0a80001 + static_cast<std::uint32_t>(i),
                                   static_cast<bsim::SimTime>(i)));
  }
  EXPECT_EQ(SelectInboundPeerToEvict(candidates), std::nullopt);
}

TEST(Eviction, TargetsYoungestOfMostPopulousNetGroup) {
  std::vector<EvictionCandidate> candidates;
  // 16 Sybils in 192.168/16, connected in id order (id 115 youngest).
  for (std::uint64_t i = 0; i < 16; ++i) {
    candidates.push_back(Candidate(100 + i, 0xc0a80000 + static_cast<std::uint32_t>(i),
                                   static_cast<bsim::SimTime>(10 + i) * bsim::kSecond));
  }
  // 8 honest singletons, older, with measured pings and recent usefulness.
  for (std::uint64_t i = 0; i < 8; ++i) {
    candidates.push_back(Candidate(
        i, 0x0a100001 + (static_cast<std::uint32_t>(i) << 16), 0,
        /*ping=*/400 + static_cast<bsim::SimTime>(i),
        /*tx=*/bsim::kSecond, /*block=*/bsim::kSecond));
  }
  const auto victim = SelectInboundPeerToEvict(candidates);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 115u);  // youngest Sybil
}

TEST(Eviction, ZeroTimestampsEarnNoUsefulnessProtection) {
  // Nobody ever relayed a tx or block: the tx/block tiers must protect no
  // one, leaving the Sybil group exposed instead of sheltering 8 of them.
  std::vector<EvictionCandidate> candidates;
  for (std::uint64_t i = 0; i < 14; ++i) {
    candidates.push_back(Candidate(100 + i, 0xc0a80000 + static_cast<std::uint32_t>(i),
                                   static_cast<bsim::SimTime>(i)));
  }
  // One honest newcomer, youngest, nothing measured — the late joiner.
  candidates.push_back(Candidate(7, 0x0a180001, bsim::kSecond));
  const auto victim = SelectInboundPeerToEvict(candidates);
  ASSERT_TRUE(victim.has_value());
  ASSERT_NE(*victim, 7u);
  EXPECT_EQ(NetGroup(candidates[static_cast<std::size_t>(*victim - 100)].ip), 0xc0a8u);
}

// The headline invariant: across 50 randomized peer tables, a one-netgroup
// Sybil flood can never displace an honest peer — not even one with no
// earned protection at all — because the victim is always drawn from the
// most populous netgroup.
TEST(Eviction, FiftySeedSybilFloodNeverEvictsHonest) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    std::mt19937_64 rng(seed);
    std::vector<EvictionCandidate> candidates;
    // 14–20 Sybils, one /16, random young uptimes, some with measured ping.
    const int sybils = 14 + static_cast<int>(rng() % 7);
    for (int i = 0; i < sybils; ++i) {
      candidates.push_back(Candidate(
          1000 + static_cast<std::uint64_t>(i),
          0xc0a80000 + static_cast<std::uint32_t>(rng() % 0xffff),
          static_cast<bsim::SimTime>(10 * bsim::kSecond + static_cast<bsim::SimTime>(rng() % 1000) * bsim::kMillisecond),
          /*ping=*/(rng() % 2 == 0) ? static_cast<bsim::SimTime>(600 + rng() % 200) : -1));
    }
    // 3–9 honest peers in distinct /16s with a random mix of protections;
    // at least one is a bare newcomer (no ping, no tx, youngest of all).
    const int honest = 3 + static_cast<int>(rng() % 7);
    for (int i = 0; i < honest; ++i) {
      const bool bare = i == 0;
      candidates.push_back(Candidate(
          static_cast<std::uint64_t>(i),
          0x0a100001 + (static_cast<std::uint32_t>(i) << 16),
          bare ? 60 * bsim::kSecond
               : static_cast<bsim::SimTime>(rng() % (5 * bsim::kSecond)),
          /*ping=*/(!bare && rng() % 2 == 0) ? static_cast<bsim::SimTime>(300 + rng() % 300) : -1,
          /*tx=*/(!bare && rng() % 2 == 0) ? static_cast<bsim::SimTime>(bsim::kSecond) : 0,
          /*block=*/(!bare && rng() % 3 == 0) ? static_cast<bsim::SimTime>(bsim::kSecond) : 0,
          /*good=*/static_cast<int>(rng() % 3)));
    }
    const auto victim = SelectInboundPeerToEvict(candidates);
    ASSERT_TRUE(victim.has_value()) << "seed " << seed;
    EXPECT_GE(*victim, 1000u) << "seed " << seed << " evicted an honest peer";
  }
}

// ---------------------------------------------------------------------------
// MisbehaviorTracker entry cap

TEST(MisbehaviorTrackerLru, CapPrunesLeastRecentlyTouched) {
  bsobs::MetricsRegistry registry;
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kBanScore, 100);
  tracker.AttachMetrics(registry);
  tracker.SetMaxEntries(4);
  for (std::uint64_t id = 1; id <= 6; ++id) tracker.AddGoodScore(id, static_cast<int>(id));
  EXPECT_EQ(tracker.Size(), 4u);
  const auto* pruned = registry.FindCounter("bs_ban_scores_pruned_total");
  ASSERT_NE(pruned, nullptr);
  EXPECT_DOUBLE_EQ(pruned->Value(), 2.0);
  // Peers 1 and 2 were the least recently touched; 3–6 survive intact.
  EXPECT_EQ(tracker.GoodScore(1), 0);
  EXPECT_EQ(tracker.GoodScore(2), 0);
  for (std::uint64_t id = 3; id <= 6; ++id) {
    EXPECT_EQ(tracker.GoodScore(id), static_cast<int>(id));
  }
  const auto* entries = registry.FindGauge("bs_ban_score_entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_DOUBLE_EQ(entries->Value(), 4.0);
}

TEST(MisbehaviorTrackerLru, TouchRefreshesRecency) {
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kBanScore, 100);
  tracker.SetMaxEntries(2);
  tracker.AddGoodScore(1, 10);
  tracker.AddGoodScore(2, 20);
  tracker.AddGoodScore(1, 1);  // refresh peer 1 → peer 2 is now the LRU
  tracker.AddGoodScore(3, 30);
  EXPECT_EQ(tracker.GoodScore(1), 11);
  EXPECT_EQ(tracker.GoodScore(2), 0);
  EXPECT_EQ(tracker.GoodScore(3), 30);
}

// ---------------------------------------------------------------------------
// Node integration

struct GovernanceFixture : ::testing::Test {
  explicit GovernanceFixture(NodeConfig config = NodeConfig{})
      : net(sched),
        node(sched, net, kTargetIp, config),
        attacker(sched, net, kAttackerIp, config.chain.magic),
        crafter(config.chain) {
    node.Start();
  }

  AttackSession* ReadySession() {
    AttackSession* session = attacker.OpenSession({kTargetIp, 8333});
    Settle();
    EXPECT_TRUE(session->SessionReady());
    return session;
  }

  void Settle() { sched.RunUntil(sched.Now() + bsim::kSecond); }

  bsim::Scheduler sched;
  bsim::Network net;
  Node node;
  AttackerNode attacker;
  Crafter crafter;
};

// Per-peer state must die with the connection: after a reconnect storm the
// registry gauges report exactly the live population, nothing retained.
TEST_F(GovernanceFixture, ChurnLeavesNoResidualPerPeerState) {
  for (int round = 0; round < 200; ++round) {
    AttackSession* session = attacker.OpenSession({kTargetIp, 8333});
    sched.RunUntil(sched.Now() + 10 * bsim::kMillisecond);
    ASSERT_TRUE(session->SessionReady());
    // Leave a score behind so teardown has real state to release.
    attacker.Send(*session, bsproto::VersionMsg{});
    sched.RunUntil(sched.Now() + 10 * bsim::kMillisecond);
    attacker.CloseSession(*session);
    sched.RunUntil(sched.Now() + 10 * bsim::kMillisecond);
    if (round % 50 == 0) {
      EXPECT_LE(node.Tracker().Size(), node.Peers().size() + 1);
    }
  }
  Settle();
  EXPECT_EQ(node.Peers().size(), 0u);
  EXPECT_EQ(node.InboundCount(), 0u);
  EXPECT_EQ(node.Tracker().Size(), 0u);
  const auto* peers_gauge = node.Metrics().FindGauge("bs_node_peers");
  ASSERT_NE(peers_gauge, nullptr);
  EXPECT_DOUBLE_EQ(peers_gauge->Value(), 0.0);
  const auto* entries = node.Metrics().FindGauge("bs_ban_score_entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_DOUBLE_EQ(entries->Value(), 0.0);
  // Teardown released everything; the LRU backstop never had to fire.
  const auto* pruned = node.Metrics().FindCounter("bs_ban_scores_pruned_total");
  ASSERT_NE(pruned, nullptr);
  EXPECT_DOUBLE_EQ(pruned->Value(), 0.0);
}

struct RateLimitFixture : GovernanceFixture {
  static NodeConfig Config() {
    NodeConfig config;
    config.enable_rate_limit = true;
    config.rx_cycles_per_sec = 1.0e6;
    config.rx_cycles_burst = 2.0e6;
    config.ping_interval = 5 * bsim::kSecond;
    return config;
  }
  RateLimitFixture() : GovernanceFixture(Config()) {}
};

TEST_F(RateLimitFixture, BucketShedsFloodBeyondBudget) {
  AttackSession* session = ReadySession();
  const auto frame = crafter.BogusBlockFrame(crafter.Params().magic, 60'000);
  for (int i = 0; i < 20; ++i) attacker.SendRawFrame(*session, frame);
  Settle();
  // 60 kB of checksum work ≈ 9e5 cycles per frame: the 2e6 opening balance
  // admits a couple, the rest are shed before the checksum runs.
  EXPECT_GT(node.RateLimitedFrames(), 10u);
  EXPECT_LT(node.FramesDroppedBadChecksum(), 5u);
  EXPECT_EQ(node.GovernorShedFrames(), 0u);  // no governor configured
}

TEST_F(RateLimitFixture, ControlFramesSurviveTheFlood) {
  AttackSession* session = ReadySession();
  const auto frame = crafter.BogusBlockFrame(crafter.Params().magic, 60'000);
  for (int i = 0; i < 50; ++i) attacker.SendRawFrame(*session, frame);
  Settle();
  ASSERT_GT(node.RateLimitedFrames(), 0u);
  // The victim's keepalive PING still comes back as PONG and is processed:
  // the connection itself must not starve (control frames bypass only the
  // governor, and the per-peer bucket refills faster than 1 pong/s costs).
  const Peer* peer = node.FindPeerByRemote(session->local);
  ASSERT_NE(peer, nullptr);
  sched.RunUntil(sched.Now() + 20 * bsim::kSecond);
  EXPECT_GE(peer->min_ping_rtt, 0) << "pong never processed";
}

TEST_F(GovernanceFixture, NoSheddingWhenDisabled) {
  AttackSession* session = ReadySession();
  const auto frame = crafter.BogusBlockFrame(crafter.Params().magic, 60'000);
  for (int i = 0; i < 20; ++i) attacker.SendRawFrame(*session, frame);
  Settle();
  EXPECT_EQ(node.RateLimitedFrames(), 0u);
  EXPECT_EQ(node.FramesDroppedBadChecksum(), 20u);
}

struct PriorityFixture : GovernanceFixture {
  static NodeConfig Config() {
    NodeConfig config;
    config.enable_priority = true;
    return config;
  }
  PriorityFixture() : GovernanceFixture(Config()) {}
};

TEST_F(PriorityFixture, DroppableFramesDemote) {
  AttackSession* session = ReadySession();
  const Peer* peer = node.FindPeerByRemote(session->local);
  ASSERT_NE(peer, nullptr);
  EXPECT_EQ(node.PriorityOf(*peer), PeerPriority::kNormal);
  const auto frame = crafter.BogusBlockFrame(crafter.Params().magic, 100);
  for (int i = 0; i < 60; ++i) attacker.SendRawFrame(*session, frame);
  Settle();
  EXPECT_EQ(node.PriorityOf(*peer), PeerPriority::kLow);
}

TEST_F(PriorityFixture, ValidBlockPromotesAndDemotionOutranksIt) {
  AttackSession* session = ReadySession();
  const Peer* peer = node.FindPeerByRemote(session->local);
  ASSERT_NE(peer, nullptr);
  attacker.Send(*session, crafter.ValidBlock(node.Chain().TipHash()));
  Settle();
  EXPECT_EQ(node.PriorityOf(*peer), PeerPriority::kHigh);
  // A detect-engine flag overrides the earned promotion.
  node.FlagPeer(peer->id, true);
  EXPECT_EQ(node.PriorityOf(*peer), PeerPriority::kLow);
  node.FlagPeer(peer->id, false);
  EXPECT_EQ(node.PriorityOf(*peer), PeerPriority::kHigh);
}

struct GovernorFixture : GovernanceFixture {
  static NodeConfig Config() {
    NodeConfig config;
    config.governor_cycles_per_sec = 1.0e6;
    config.governor_burst_cycles = 2.0e6;
    return config;
  }
  GovernorFixture() : GovernanceFixture(Config()) {}
};

TEST_F(GovernorFixture, GlobalBudgetShedsAcrossPeers) {
  AttackSession* session = ReadySession();
  const auto frame = crafter.BogusBlockFrame(crafter.Params().magic, 60'000);
  for (int i = 0; i < 20; ++i) attacker.SendRawFrame(*session, frame);
  Settle();
  EXPECT_GT(node.GovernorShedFrames(), 10u);
  EXPECT_EQ(node.GovernorShedFrames(), node.RateLimitedFrames());
}

// ---------------------------------------------------------------------------
// Eviction wired into the accept path

TEST(EvictionIntegration, FullTableEvictsSybilForNewNetGroup) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.max_inbound = 16;
  config.enable_eviction = true;
  Node node(sched, net, kTargetIp, config);
  node.Start();
  AttackerNode sybil(sched, net, 0xc0a80001, config.chain.magic);
  for (int i = 0; i < 16; ++i) {
    sybil.OpenSession({kTargetIp, 8333});
    sched.RunUntil(sched.Now() + 10 * bsim::kMillisecond);
  }
  ASSERT_EQ(node.InboundCount(), 16u);

  AttackerNode newcomer(sched, net, kAttackerIp, config.chain.magic);
  AttackSession* session = newcomer.OpenSession({kTargetIp, 8333});
  sched.RunUntil(sched.Now() + bsim::kSecond);
  EXPECT_TRUE(session->SessionReady());
  EXPECT_EQ(node.PeersEvicted(), 1u);
  EXPECT_EQ(node.InboundCount(), 16u);
  EXPECT_EQ(node.InboundFullRejects(), 0u);
}

TEST(EvictionIntegration, PluralityGroupCannotReclaimSlotsViaEviction) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.max_inbound = 16;
  config.enable_eviction = true;
  Node node(sched, net, kTargetIp, config);
  node.Start();
  // 16 Sybil conns from one /16 fill the table; their group holds an
  // absolute plurality of inbound slots.
  AttackerNode sybil(sched, net, 0xc0a80001, config.chain.magic);
  for (int i = 0; i < 16; ++i) {
    sybil.OpenSession({kTargetIp, 8333});
    sched.RunUntil(sched.Now() + 10 * bsim::kMillisecond);
  }
  ASSERT_EQ(node.InboundCount(), 16u);

  // A newcomer from a fresh netgroup wins a slot through eviction...
  AttackerNode newcomer(sched, net, kAttackerIp, config.chain.magic);
  AttackSession* session = newcomer.OpenSession({kTargetIp, 8333});
  sched.RunUntil(sched.Now() + bsim::kSecond);
  ASSERT_TRUE(session->SessionReady());
  ASSERT_EQ(node.PeersEvicted(), 1u);

  // ...but the evicted Sybil's reconnects are flat-refused: its /16 still
  // holds a plurality, so the anti-churn guard denies it the eviction path
  // (otherwise evict→reconnect→evict turns handshakes into a CPU attack).
  for (int i = 0; i < 4; ++i) {
    AttackSession* retry = sybil.OpenSession({kTargetIp, 8333});
    sched.RunUntil(sched.Now() + 200 * bsim::kMillisecond);
    EXPECT_FALSE(retry->SessionReady());
  }
  EXPECT_EQ(node.PeersEvicted(), 1u);
  EXPECT_EQ(node.InboundFullRejects(), 4u);
  // The newcomer's slot survived every retry.
  EXPECT_TRUE(session->SessionReady());
}

TEST(EvictionIntegration, StockNodeRefusesWhenFull) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.max_inbound = 16;
  Node node(sched, net, kTargetIp, config);
  node.Start();
  AttackerNode sybil(sched, net, 0xc0a80001, config.chain.magic);
  for (int i = 0; i < 16; ++i) {
    sybil.OpenSession({kTargetIp, 8333});
    sched.RunUntil(sched.Now() + 10 * bsim::kMillisecond);
  }
  AttackerNode newcomer(sched, net, kAttackerIp, config.chain.magic);
  AttackSession* session = newcomer.OpenSession({kTargetIp, 8333});
  sched.RunUntil(sched.Now() + bsim::kSecond);
  EXPECT_FALSE(session->SessionReady());
  EXPECT_EQ(node.PeersEvicted(), 0u);
  EXPECT_EQ(node.InboundFullRejects(), 1u);
}

}  // namespace
