// Tests for bsproto: per-type payload round-trips over all 26 message types,
// wire-codec semantics (checksum gate, unknown commands, partial frames),
// endpoint/netaddr encoding, and compact-block helpers.
#include <gtest/gtest.h>

#include <variant>

#include "attack/crafter.hpp"
#include "crypto/sha256.hpp"
#include "proto/codec.hpp"
#include "proto/compact.hpp"
#include "proto/constants.hpp"
#include "proto/messages.hpp"
#include "util/rng.hpp"

namespace {

using namespace bsproto;  // NOLINT: test file, full surface exercised
using bscrypto::Hash256;
using bsutil::ByteVec;

constexpr std::uint32_t kMagic = 0xfabfb5da;

Hash256 TestHash(int i) {
  Hash256 h;
  h.Data()[0] = static_cast<std::uint8_t>(i);
  h.Data()[1] = static_cast<std::uint8_t>(i >> 8);
  return h;
}

bschain::Transaction TestTx(bool witness) {
  bschain::Transaction tx;
  tx.version = 2;
  bschain::TxIn in;
  in.prevout.txid = TestHash(9);
  in.prevout.index = 1;
  in.script_sig = bsutil::ToBytes("scriptsig");
  in.sequence = 0xfffffffe;
  tx.inputs.push_back(in);
  bschain::TxOut out;
  out.value = 12345;
  out.script_pubkey = bsutil::ToBytes("pubkey");
  tx.outputs.push_back(out);
  if (witness) tx.witness.push_back(bsutil::ToBytes("wit"));
  tx.lock_time = 77;
  return tx;
}

bschain::Block TestBlock() {
  bschain::Block block;
  bschain::Transaction coinbase;
  bschain::TxIn in;
  in.prevout = bschain::OutPoint{};
  in.script_sig = bsutil::ToBytes("cb");
  coinbase.inputs.push_back(in);
  coinbase.outputs.push_back({50'0000'0000LL, bsutil::ToBytes("mine")});
  block.txs.push_back(coinbase);
  block.txs.push_back(TestTx(false));
  block.header.version = 2;
  block.header.prev = TestHash(3);
  block.header.merkle_root = block.ComputeMerkleRoot();
  block.header.time = 1'600'000'000;
  block.header.bits = 0x207fffff;
  block.header.nonce = 42;
  return block;
}

/// One representative message instance per type.
Message SampleMessage(MsgType type) {
  switch (type) {
    case MsgType::kVersion: {
      VersionMsg m;
      m.version = kProtocolVersion;
      m.timestamp = 1'600'000'123;
      m.addr_recv.endpoint = {0x0a000001, 8333};
      m.addr_from.endpoint = {0x0a000002, 8333};
      m.nonce = 0xfeedface;
      m.user_agent = "/test:0.1/";
      m.start_height = 812345;
      m.relay = false;
      return m;
    }
    case MsgType::kVerack: return VerackMsg{};
    case MsgType::kAddr: {
      AddrMsg m;
      for (int i = 0; i < 3; ++i) {
        TimedNetAddr rec;
        rec.time = 1'600'000'000 + i;
        rec.addr.services = kNodeNetwork;
        rec.addr.endpoint = {static_cast<std::uint32_t>(0x0a000010 + i),
                             static_cast<std::uint16_t>(8333 + i)};
        m.addresses.push_back(rec);
      }
      return m;
    }
    case MsgType::kInv: {
      InvMsg m;
      m.inventory.push_back({InvType::kTx, TestHash(1)});
      m.inventory.push_back({InvType::kBlock, TestHash(2)});
      return m;
    }
    case MsgType::kGetData: {
      GetDataMsg m;
      m.inventory.push_back({InvType::kWitnessBlock, TestHash(4)});
      return m;
    }
    case MsgType::kNotFound: {
      NotFoundMsg m;
      m.inventory.push_back({InvType::kTx, TestHash(5)});
      return m;
    }
    case MsgType::kGetBlocks: {
      GetBlocksMsg m;
      m.locator = {TestHash(6), TestHash(7)};
      m.stop = TestHash(8);
      return m;
    }
    case MsgType::kGetHeaders: {
      GetHeadersMsg m;
      m.locator = {TestHash(6)};
      return m;
    }
    case MsgType::kHeaders: {
      HeadersMsg m;
      bschain::BlockHeader h;
      h.prev = TestHash(10);
      h.merkle_root = TestHash(11);
      h.time = 1'600'000'555;
      h.bits = 0x207fffff;
      h.nonce = 7;
      m.headers = {h, h};
      return m;
    }
    case MsgType::kTx: return TxMsg{TestTx(true)};
    case MsgType::kBlock: return BlockMsg{TestBlock()};
    case MsgType::kPing: return PingMsg{0xabcdef12345};
    case MsgType::kPong: return PongMsg{0xabcdef12345};
    case MsgType::kGetAddr: return GetAddrMsg{};
    case MsgType::kMempool: return MempoolMsg{};
    case MsgType::kSendHeaders: return SendHeadersMsg{};
    case MsgType::kFeeFilter: return FeeFilterMsg{1000};
    case MsgType::kSendCmpct: return SendCmpctMsg{true, 1};
    case MsgType::kCmpctBlock: {
      CmpctBlockMsg m = BuildCompactBlock(TestBlock(), 0x1234);
      return m;
    }
    case MsgType::kGetBlockTxn: {
      GetBlockTxnMsg m;
      m.block_hash = TestHash(20);
      m.indexes = {0, 3, 4, 9};
      return m;
    }
    case MsgType::kBlockTxn: {
      BlockTxnMsg m;
      m.block_hash = TestHash(21);
      m.txs = {TestTx(false), TestTx(true)};
      return m;
    }
    case MsgType::kFilterLoad: {
      FilterLoadMsg m;
      m.filter = ByteVec(64, 0x5a);
      m.n_hash_funcs = 11;
      m.n_tweak = 99;
      m.n_flags = 1;
      return m;
    }
    case MsgType::kFilterAdd: {
      FilterAddMsg m;
      m.data = ByteVec(32, 0xcc);
      return m;
    }
    case MsgType::kFilterClear: return FilterClearMsg{};
    case MsgType::kMerkleBlock: {
      MerkleBlockMsg m;
      m.header = TestBlock().header;
      m.total_txs = 7;
      m.hashes = {TestHash(30), TestHash(31)};
      m.flags = {0xff, 0x01};
      return m;
    }
    case MsgType::kReject: {
      RejectMsg m;
      m.message = "tx";
      m.code = 0x10;
      m.reason = "bad-txns";
      m.data = ByteVec(32, 0x77);
      return m;
    }
    case MsgType::kTipProbe: {
      TipProbeMsg m;
      m.nonce = 0xfeed1234;
      m.tips.push_back({812345, TestHash(40)});
      m.tips.push_back({812346, TestHash(41)});
      return m;
    }
  }
  return VerackMsg{};
}

// ---------------------------------------------------------------------------
// Catalogue sanity

TEST(Constants, TwentySixMessageTypes) {
  EXPECT_EQ(AllMsgTypes().size(), kNumMsgTypes);
  // The paper's 26-type catalogue plus the partition-resilience TIPPROBE
  // extension appended after it.
  EXPECT_EQ(kNumMsgTypes, 27u);
}

TEST(Constants, CommandNamesRoundTrip) {
  for (MsgType type : AllMsgTypes()) {
    const auto back = MsgTypeFromCommand(CommandName(type));
    ASSERT_TRUE(back.has_value()) << CommandName(type);
    EXPECT_EQ(*back, type);
  }
}

TEST(Constants, UnknownCommandRejected) {
  EXPECT_FALSE(MsgTypeFromCommand("bogus").has_value());
  EXPECT_FALSE(MsgTypeFromCommand("").has_value());
}

TEST(Constants, VariantOrderMatchesEnum) {
  for (MsgType type : AllMsgTypes()) {
    EXPECT_EQ(MsgTypeOf(SampleMessage(type)), type);
  }
}

// ---------------------------------------------------------------------------
// Round-trips over every type

class MessageRoundTrip : public ::testing::TestWithParam<MsgType> {};

TEST_P(MessageRoundTrip, PayloadSerializesAndParsesBack) {
  const Message original = SampleMessage(GetParam());
  const ByteVec payload = SerializePayload(original);
  const Message parsed = DeserializePayload(GetParam(), payload);
  EXPECT_EQ(parsed, original);
}

TEST_P(MessageRoundTrip, FullFrameDecodes) {
  const Message original = SampleMessage(GetParam());
  const ByteVec frame = EncodeMessage(kMagic, original);
  const DecodeResult result = DecodeMessage(kMagic, frame);
  EXPECT_EQ(result.status, DecodeStatus::kOk);
  EXPECT_EQ(result.consumed, frame.size());
  EXPECT_EQ(result.message, original);
  EXPECT_EQ(result.header.command, CommandName(GetParam()));
}

TEST_P(MessageRoundTrip, TrailingBytesRejected) {
  const Message original = SampleMessage(GetParam());
  ByteVec payload = SerializePayload(original);
  payload.push_back(0x00);
  // REJECT consumes trailing bytes into its data field by design; everything
  // else must reject the extra byte.
  if (GetParam() == MsgType::kReject) {
    EXPECT_NO_THROW((void)DeserializePayload(GetParam(), payload));
  } else {
    EXPECT_THROW((void)DeserializePayload(GetParam(), payload),
                 bsutil::DeserializeError);
  }
}

TEST_P(MessageRoundTrip, TruncatedPayloadRejected) {
  const Message original = SampleMessage(GetParam());
  ByteVec payload = SerializePayload(original);
  if (payload.empty()) return;  // empty-body messages cannot be truncated
  // VERSION's relay flag is optional on the wire (BIP-37) and REJECT's data
  // field swallows whatever remains, so one-byte truncation is legal there.
  if (GetParam() == MsgType::kVersion || GetParam() == MsgType::kReject) return;
  payload.pop_back();
  EXPECT_THROW((void)DeserializePayload(GetParam(), payload), bsutil::DeserializeError);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, MessageRoundTrip,
                         ::testing::ValuesIn(AllMsgTypes()),
                         [](const ::testing::TestParamInfo<MsgType>& info) {
                           return std::string(CommandName(info.param));
                         });

// ---------------------------------------------------------------------------
// Codec pipeline semantics

TEST(Codec, ChecksumIsFirstFourBytesOfDoubleSha) {
  const ByteVec payload = bsutil::ToBytes("hello");
  const auto checksum = PayloadChecksum(payload);
  const auto digest = bscrypto::Sha256::HashD(payload);
  EXPECT_EQ(checksum[0], digest[0]);
  EXPECT_EQ(checksum[3], digest[3]);
}

TEST(Codec, EmptyPayloadChecksum) {
  // Well-known: sha256d("") starts with 5df6e0e2.
  const auto checksum = PayloadChecksum({});
  EXPECT_EQ(checksum[0], 0x5d);
  EXPECT_EQ(checksum[1], 0xf6);
  EXPECT_EQ(checksum[2], 0xe0);
  EXPECT_EQ(checksum[3], 0xe2);
}

TEST(Codec, BadChecksumDetectedBeforeParsing) {
  // Craft a frame whose payload would be MALFORMED if parsed — the checksum
  // failure must win, proving the gate runs first.
  ByteVec garbage = {0x01, 0x02, 0x03};
  std::array<std::uint8_t, 4> wrong = PayloadChecksum(garbage);
  wrong[0] ^= 0xff;
  const ByteVec frame = EncodeRaw(kMagic, "version", garbage, &wrong);
  const DecodeResult result = DecodeMessage(kMagic, frame);
  EXPECT_EQ(result.status, DecodeStatus::kBadChecksum);
  EXPECT_EQ(result.consumed, frame.size());
}

TEST(Codec, UnknownCommandAfterValidChecksum) {
  const ByteVec frame = EncodeRaw(kMagic, "bogus", bsutil::ToBytes("x"));
  const DecodeResult result = DecodeMessage(kMagic, frame);
  EXPECT_EQ(result.status, DecodeStatus::kUnknownCommand);
}

TEST(Codec, MalformedPayloadDetected) {
  // "ping" payload must be exactly 8 bytes.
  const ByteVec frame = EncodeRaw(kMagic, "ping", bsutil::ToBytes("abc"));
  const DecodeResult result = DecodeMessage(kMagic, frame);
  EXPECT_EQ(result.status, DecodeStatus::kMalformed);
}

TEST(Codec, WrongMagicRejected) {
  const ByteVec frame = EncodeMessage(kMagic, PingMsg{1});
  const DecodeResult result = DecodeMessage(kMagic ^ 1, frame);
  EXPECT_EQ(result.status, DecodeStatus::kBadMagic);
  EXPECT_EQ(result.consumed, kHeaderSize);
}

TEST(Codec, OversizeLengthRejected) {
  MessageHeader header;
  header.magic = kMagic;
  header.command = "tx";
  header.length = kMaxProtocolMessageLength + 1;
  const ByteVec frame = header.Serialize();
  const DecodeResult result = DecodeMessage(kMagic, frame);
  EXPECT_EQ(result.status, DecodeStatus::kOversize);
}

TEST(Codec, DeclaredLength2G31RejectedWithoutAllocation) {
  // Regression: a frame declaring length 2^31 (and every value above
  // kMaxFramePayload) must be refused at the header gate — before any
  // payload buffering — and must bump the oversize-reject counter. A
  // decoder that allocated first would turn one 24-byte header into a 2 GiB
  // allocation.
  const std::uint64_t before = CodecOversizeRejects();
  for (const std::uint32_t length :
       {static_cast<std::uint32_t>(1) << 31, std::uint32_t{0x7fffffff},
        std::uint32_t{0xffffffff},
        static_cast<std::uint32_t>(kMaxFramePayload) + 1}) {
    MessageHeader header;
    header.magic = kMagic;
    header.command = "tx";
    header.length = length;
    const ByteVec frame = header.Serialize();
    const DecodeResult result = DecodeMessage(kMagic, frame);
    EXPECT_EQ(result.status, DecodeStatus::kOversize) << "length=" << length;
    EXPECT_EQ(result.consumed, frame.size()) << "length=" << length;
  }
  EXPECT_EQ(CodecOversizeRejects(), before + 4);
}

TEST(Codec, MaxFramePayloadBoundMatchesProtocolLimit) {
  // kMaxFramePayload is the decode-side allocation bound; it must never
  // drift above the protocol's own message-size limit.
  EXPECT_EQ(kMaxFramePayload, kMaxProtocolMessageLength);
  MessageHeader header;
  header.magic = kMagic;
  header.command = "tx";
  header.length = static_cast<std::uint32_t>(kMaxFramePayload);
  const ByteVec frame = header.Serialize();
  // Exactly at the bound: not oversize (the payload simply isn't there yet).
  const DecodeResult result = DecodeMessage(kMagic, frame);
  EXPECT_EQ(result.status, DecodeStatus::kNeedMoreData);
}

TEST(Codec, PartialHeaderNeedsMoreData) {
  const ByteVec frame = EncodeMessage(kMagic, PingMsg{1});
  const DecodeResult result =
      DecodeMessage(kMagic, bsutil::ByteSpan(frame.data(), kHeaderSize - 1));
  EXPECT_EQ(result.status, DecodeStatus::kNeedMoreData);
  EXPECT_EQ(result.consumed, 0u);
}

TEST(Codec, PartialPayloadNeedsMoreData) {
  const ByteVec frame = EncodeMessage(kMagic, PingMsg{1});
  const DecodeResult result =
      DecodeMessage(kMagic, bsutil::ByteSpan(frame.data(), frame.size() - 1));
  EXPECT_EQ(result.status, DecodeStatus::kNeedMoreData);
  EXPECT_EQ(result.consumed, 0u);
}

TEST(Codec, StreamOfTwoMessagesDecodesSequentially) {
  ByteVec stream = EncodeMessage(kMagic, PingMsg{1});
  const ByteVec second = EncodeMessage(kMagic, PongMsg{2});
  stream.insert(stream.end(), second.begin(), second.end());

  const DecodeResult first = DecodeMessage(kMagic, stream);
  ASSERT_EQ(first.status, DecodeStatus::kOk);
  const bsutil::ByteSpan rest(stream.data() + first.consumed,
                              stream.size() - first.consumed);
  const DecodeResult next = DecodeMessage(kMagic, rest);
  ASSERT_EQ(next.status, DecodeStatus::kOk);
  EXPECT_EQ(MsgTypeOf(next.message), MsgType::kPong);
}

TEST(Codec, CommandWithBytesAfterNulRejected) {
  ByteVec frame = EncodeMessage(kMagic, PingMsg{1});
  // Corrupt the command field: "ping\0X..." is invalid padding.
  frame[4 + 5] = 'X';
  const DecodeResult result = DecodeMessage(kMagic, frame);
  EXPECT_EQ(result.status, DecodeStatus::kMalformed);
}

TEST(Codec, HeaderRoundTrip) {
  MessageHeader header;
  header.magic = kMagic;
  header.command = "cmpctblock";
  header.length = 512;
  header.checksum = {1, 2, 3, 4};
  const ByteVec bytes = header.Serialize();
  ASSERT_EQ(bytes.size(), kHeaderSize);
  const MessageHeader parsed = MessageHeader::Deserialize(bytes);
  EXPECT_EQ(parsed.magic, header.magic);
  EXPECT_EQ(parsed.command, header.command);
  EXPECT_EQ(parsed.length, header.length);
  EXPECT_EQ(parsed.checksum, header.checksum);
}

// ---------------------------------------------------------------------------
// NetAddr / Endpoint

TEST(NetAddr, EndpointToString) {
  const Endpoint ep{0xc0a80101, 8333};
  EXPECT_EQ(ep.ToString(), "192.168.1.1:8333");
}

TEST(NetAddr, ParseIp) {
  EXPECT_EQ(Endpoint::ParseIp("10.0.0.1"), 0x0a000001u);
  EXPECT_EQ(Endpoint::ParseIp("256.1.1.1"), 0u);
  EXPECT_EQ(Endpoint::ParseIp("garbage"), 0u);
}

TEST(NetAddr, WireFormatIsIpv4Mapped) {
  NetAddr addr;
  addr.services = kNodeNetwork;
  addr.endpoint = {0x01020304, 0x1f90};  // port 8080
  bsutil::Writer w;
  addr.Serialize(w);
  ASSERT_EQ(w.Size(), 26u);  // 8 services + 16 ip + 2 port
  const ByteVec& bytes = w.Data();
  EXPECT_EQ(bytes[8 + 10], 0xff);
  EXPECT_EQ(bytes[8 + 11], 0xff);
  EXPECT_EQ(bytes[8 + 12], 0x01);
  EXPECT_EQ(bytes[8 + 15], 0x04);
  // Port is big-endian on the wire.
  EXPECT_EQ(bytes[24], 0x1f);
  EXPECT_EQ(bytes[25], 0x90);

  bsutil::Reader r(w.Data());
  EXPECT_EQ(NetAddr::Deserialize(r), addr);
}

// ---------------------------------------------------------------------------
// Compact blocks

TEST(CompactBlocks, BuildPrefillsCoinbase) {
  const auto block = TestBlock();
  const CmpctBlockMsg msg = BuildCompactBlock(block, 99);
  ASSERT_EQ(msg.prefilled.size(), 1u);
  EXPECT_EQ(msg.prefilled[0].index, 0u);
  EXPECT_EQ(msg.short_ids.size(), block.txs.size() - 1);
  EXPECT_EQ(CheckCompactBlock(msg), CompactBlockError::kOk);
}

TEST(CompactBlocks, ShortIdDependsOnNonce) {
  const Hash256 txid = TestHash(42);
  EXPECT_NE(ShortTxId(txid, 1), ShortTxId(txid, 2));
  EXPECT_EQ(ShortTxId(txid, 1), ShortTxId(txid, 1));
  EXPECT_LT(ShortTxId(txid, 1), 1ULL << 48);
}

TEST(CompactBlocks, DuplicateShortIdsInvalid) {
  CmpctBlockMsg msg = BuildCompactBlock(TestBlock(), 7);
  msg.short_ids.push_back(0xaaaa);
  msg.short_ids.push_back(0xaaaa);
  EXPECT_EQ(CheckCompactBlock(msg), CompactBlockError::kDuplicateShortIds);
}

TEST(CompactBlocks, PrefilledIndexOutOfBoundsInvalid) {
  CmpctBlockMsg msg = BuildCompactBlock(TestBlock(), 7);
  msg.prefilled[0].index = 1000;
  EXPECT_EQ(CheckCompactBlock(msg), CompactBlockError::kPrefilledOutOfBounds);
}

TEST(CompactBlocks, EmptyCompactBlockInvalid) {
  CmpctBlockMsg msg;
  EXPECT_EQ(CheckCompactBlock(msg), CompactBlockError::kEmpty);
}

TEST(CompactBlocks, ReconstructFromMempool) {
  const auto block = TestBlock();
  const CmpctBlockMsg msg = BuildCompactBlock(block, 55);
  std::vector<std::uint64_t> missing;
  const auto rebuilt = ReconstructBlock(msg, {block.txs[1]}, &missing);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_TRUE(missing.empty());
  EXPECT_EQ(rebuilt->Hash(), block.Hash());
  EXPECT_EQ(rebuilt->txs.size(), block.txs.size());
}

TEST(CompactBlocks, ReconstructReportsMissingIndexes) {
  const auto block = TestBlock();
  const CmpctBlockMsg msg = BuildCompactBlock(block, 55);
  std::vector<std::uint64_t> missing;
  const auto rebuilt = ReconstructBlock(msg, {}, &missing);
  EXPECT_FALSE(rebuilt.has_value());
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], 1u);  // the non-coinbase slot
}

TEST(CompactBlocks, DifferentialIndexEncodingRoundTrip) {
  GetBlockTxnMsg msg;
  msg.block_hash = TestHash(1);
  msg.indexes = {0, 1, 5, 6, 1000};
  const ByteVec payload = SerializePayload(Message{msg});
  const Message parsed = DeserializePayload(MsgType::kGetBlockTxn, payload);
  EXPECT_EQ(std::get<GetBlockTxnMsg>(parsed).indexes, msg.indexes);
}

// ---------------------------------------------------------------------------
// Fuzz-ish robustness: random bytes never crash the decoder

class DecoderFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DecoderFuzz, RandomPayloadsEitherParseOrThrowCleanly) {
  bsutil::Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const std::size_t size = rng.Below(300);
    ByteVec payload(size);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.Next());
    for (MsgType type : AllMsgTypes()) {
      try {
        (void)DeserializePayload(type, payload);
      } catch (const bsutil::DeserializeError&) {
        // Expected for malformed data; anything else would abort the test.
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
