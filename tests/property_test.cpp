// Property-style tests: randomized sweeps over invariants that must hold for
// any input, seeded per-case for reproducibility.
//
//  * Misbehavior accounting: the score equals the sum of applied rule
//    increments, and banning happens exactly at the threshold crossing.
//  * Wire codec: any chunking of a frame stream decodes to the same message
//    sequence (stream resynchronization), and any payload corruption is
//    caught by the checksum before parsing — the invariant behind the
//    bogus-message vector.
//  * Chainstate: block acceptance is order-independent (with orphan retry).
//  * Bloom filters: never a false negative, for any geometry.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <vector>

#include "attack/crafter.hpp"
#include "chain/chainstate.hpp"
#include "core/misbehavior.hpp"
#include "proto/bloom.hpp"
#include "proto/codec.hpp"
#include "proto/compact.hpp"
#include "store/format.hpp"
#include "util/rng.hpp"

namespace {

using namespace bsnet;  // NOLINT
using bsutil::ByteVec;

// ---------------------------------------------------------------------------
// Tracker invariants

class TrackerInvariants
    : public ::testing::TestWithParam<std::tuple<CoreVersion, int>> {};

TEST_P(TrackerInvariants, ScoreEqualsSumOfAppliedIncrementsAndBanIsExactlyAtThreshold) {
  const auto [version, seed] = GetParam();
  bsutil::Rng rng(static_cast<std::uint64_t>(seed));
  MisbehaviorTracker tracker(version, BanPolicy::kBanScore, 100);

  const auto& all = AllMisbehaviors();
  for (int peer = 1; peer <= 20; ++peer) {
    const bool inbound = rng.Chance(0.5);
    int expected_score = 0;
    bool banned = false;
    for (int step = 0; step < 50 && !banned; ++step) {
      const Misbehavior what = all[rng.Below(all.size())];
      const MisbehaviorOutcome outcome =
          tracker.Misbehaving(static_cast<std::uint64_t>(peer), inbound, what);

      // Recompute what should have happened from the rule table.
      const auto rule = GetRule(version, what);
      const bool applies =
          rule.has_value() &&
          (rule->scope == PeerScope::kAny ||
           (rule->scope == PeerScope::kInbound && inbound) ||
           (rule->scope == PeerScope::kOutbound && !inbound));
      ASSERT_EQ(outcome.rule_applied, applies);
      if (applies) {
        expected_score += rule->score;
        ASSERT_EQ(outcome.score_delta, rule->score);
      }
      ASSERT_EQ(tracker.Score(static_cast<std::uint64_t>(peer)), expected_score);
      ASSERT_EQ(outcome.should_ban, expected_score >= 100);
      banned = outcome.should_ban;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, TrackerInvariants,
    ::testing::Combine(::testing::Values(CoreVersion::kV0_20, CoreVersion::kV0_21,
                                         CoreVersion::kV0_22),
                       ::testing::Values(1, 2, 3, 4, 5)));

TEST(TrackerInvariants, NonBanningPoliciesNeverRequestBans) {
  for (BanPolicy policy : {BanPolicy::kThresholdInfinity, BanPolicy::kDisabled}) {
    bsutil::Rng rng(77);
    MisbehaviorTracker tracker(CoreVersion::kV0_20, policy, 100);
    const auto& all = AllMisbehaviors();
    for (int step = 0; step < 500; ++step) {
      const auto outcome = tracker.Misbehaving(1, true, all[rng.Below(all.size())]);
      ASSERT_FALSE(outcome.should_ban) << ToString(policy);
    }
  }
}

// ---------------------------------------------------------------------------
// Codec stream properties

class CodecStreamProperty : public ::testing::TestWithParam<int> {};

TEST_P(CodecStreamProperty, AnyChunkingDecodesTheSameMessageSequence) {
  constexpr std::uint32_t kMagic = 0xfabfb5da;
  bsutil::Rng rng(static_cast<std::uint64_t>(GetParam()));

  // A stream of assorted valid frames.
  std::vector<bsproto::MsgType> expected;
  ByteVec stream;
  for (int i = 0; i < 30; ++i) {
    bsproto::Message msg;
    switch (rng.Below(4)) {
      case 0: msg = bsproto::PingMsg{rng.Next()}; break;
      case 1: msg = bsproto::PongMsg{rng.Next()}; break;
      case 2: msg = bsproto::SendHeadersMsg{}; break;
      default: msg = bsproto::FeeFilterMsg{static_cast<std::int64_t>(rng.Below(10000))};
    }
    expected.push_back(bsproto::MsgTypeOf(msg));
    const ByteVec frame = bsproto::EncodeMessage(kMagic, msg);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }

  // Feed the stream in random-sized chunks through a reassembly buffer, as
  // the node's OnData does.
  std::vector<bsproto::MsgType> decoded;
  ByteVec buffer;
  std::size_t fed = 0;
  while (fed < stream.size() || !buffer.empty()) {
    if (fed < stream.size()) {
      const std::size_t chunk = std::min<std::size_t>(
          1 + rng.Below(40), stream.size() - fed);
      buffer.insert(buffer.end(), stream.begin() + static_cast<std::ptrdiff_t>(fed),
                    stream.begin() + static_cast<std::ptrdiff_t>(fed + chunk));
      fed += chunk;
    }
    while (true) {
      const auto result = bsproto::DecodeMessage(kMagic, buffer);
      if (result.consumed == 0) break;
      ASSERT_EQ(result.status, bsproto::DecodeStatus::kOk);
      decoded.push_back(bsproto::MsgTypeOf(result.message));
      buffer.erase(buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(result.consumed));
    }
    if (fed >= stream.size() && bsproto::DecodeMessage(kMagic, buffer).consumed == 0) {
      break;
    }
  }
  EXPECT_EQ(decoded, expected);
  EXPECT_TRUE(buffer.empty());
}

TEST_P(CodecStreamProperty, AnySingleByteCorruptionNeverYieldsAWrongMessage) {
  constexpr std::uint32_t kMagic = 0xfabfb5da;
  bsutil::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31);
  const bsproto::Message original = bsproto::PingMsg{0x1122334455667788ULL};
  const ByteVec frame = bsproto::EncodeMessage(kMagic, original);

  for (int round = 0; round < 200; ++round) {
    ByteVec corrupted = frame;
    const std::size_t pos = rng.Below(corrupted.size());
    corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.Below(255));
    const auto result = bsproto::DecodeMessage(kMagic, corrupted);
    // Either the corruption is detected (magic/checksum/command/length), or
    // — never — a different message is silently accepted. Corrupting the
    // length field may leave the frame incomplete (kNeedMoreData).
    if (result.status == bsproto::DecodeStatus::kOk) {
      ADD_FAILURE() << "corruption at byte " << pos << " went unnoticed";
    }
  }
}

TEST_P(CodecStreamProperty, PayloadCorruptionIsAlwaysAChecksumDrop) {
  // The paper's bogus-message vector in property form: ANY payload byte
  // change is caught by the checksum gate, before parsing, with no
  // misbehavior attributable.
  constexpr std::uint32_t kMagic = 0xfabfb5da;
  bsutil::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131);
  bsattack::Crafter crafter(bschain::ChainParams{});
  const ByteVec frame =
      bsproto::EncodeMessage(kMagic, crafter.ValidBlock(bscrypto::Hash256{}));

  for (int round = 0; round < 50; ++round) {
    ByteVec corrupted = frame;
    const std::size_t pos =
        bsproto::kHeaderSize + rng.Below(corrupted.size() - bsproto::kHeaderSize);
    corrupted[pos] ^= 0x01;
    const auto result = bsproto::DecodeMessage(kMagic, corrupted);
    ASSERT_EQ(result.status, bsproto::DecodeStatus::kBadChecksum);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecStreamProperty, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Codec robustness: truncation and bit-flips across the full message catalogue

/// One representative (non-trivial where possible) message of every one of
/// the 26 wire types, in variant order.
std::vector<bsproto::Message> AllTypeExemplars() {
  const bschain::ChainParams params;
  bsattack::Crafter crafter(params);
  const bschain::Block genesis = params.GenesisBlock();
  const bscrypto::Hash256 tip = genesis.Hash();
  const bschain::Transaction tx = crafter.ValidTx().tx;

  bsproto::VersionMsg version;
  version.timestamp = 1'600'000'000;
  version.nonce = 7;
  bsproto::AddrMsg addr;
  addr.addresses.push_back({1'600'000'000, {bsproto::kNodeNetwork, {0x0a000001, 8333}}});
  bsproto::InvMsg inv;
  inv.inventory.push_back({bsproto::InvType::kTx, tx.Txid()});
  bsproto::GetDataMsg getdata;
  getdata.inventory.push_back({bsproto::InvType::kBlock, tip});
  bsproto::NotFoundMsg notfound;
  notfound.inventory.push_back({bsproto::InvType::kTx, tx.Txid()});
  bsproto::GetBlocksMsg getblocks;
  getblocks.locator = {tip};
  bsproto::GetHeadersMsg getheaders;
  getheaders.locator = {tip};
  bsproto::HeadersMsg headers;
  headers.headers = {genesis.header};
  bsproto::CmpctBlockMsg cmpct = bsproto::BuildCompactBlock(genesis, 99);
  bsproto::GetBlockTxnMsg getblocktxn;
  getblocktxn.block_hash = tip;
  getblocktxn.indexes = {0};
  bsproto::BlockTxnMsg blocktxn;
  blocktxn.block_hash = tip;
  blocktxn.txs = {tx};
  bsproto::FilterLoadMsg filterload;
  filterload.filter = {0xff, 0x00, 0xaa};
  filterload.n_hash_funcs = 3;
  bsproto::MerkleBlockMsg merkle;
  merkle.header = genesis.header;
  merkle.total_txs = 1;
  merkle.hashes = {tx.Txid()};
  merkle.flags = {0x01};
  bsproto::RejectMsg reject;
  reject.message = "tx";
  reject.reason = "test";
  bsproto::TipProbeMsg tipprobe;
  tipprobe.nonce = 0x7e57;
  tipprobe.tips = {{1, tip}, {2, tx.Txid()}};

  return {
      version,
      bsproto::VerackMsg{},
      addr,
      inv,
      getdata,
      notfound,
      getblocks,
      getheaders,
      headers,
      crafter.ValidTx(),
      bsproto::BlockMsg{genesis},
      bsproto::PingMsg{0x1122334455667788ULL},
      bsproto::PongMsg{0x8877665544332211ULL},
      bsproto::GetAddrMsg{},
      bsproto::MempoolMsg{},
      bsproto::SendHeadersMsg{},
      bsproto::FeeFilterMsg{1000},
      bsproto::SendCmpctMsg{true, 1},
      cmpct,
      getblocktxn,
      blocktxn,
      filterload,
      bsproto::FilterAddMsg{{0xde, 0xad}},
      bsproto::FilterClearMsg{},
      merkle,
      reject,
      tipprobe,
  };
}

TEST(CodecRobustness, ExemplarsCoverAllMessageTypes) {
  const auto exemplars = AllTypeExemplars();
  ASSERT_EQ(exemplars.size(), bsproto::kNumMsgTypes);
  for (std::size_t i = 0; i < exemplars.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(bsproto::MsgTypeOf(exemplars[i])), i);
  }
}

TEST(CodecRobustness, EveryTruncationOfEveryTypeIsHandledWithoutThrowing) {
  constexpr std::uint32_t kMagic = 0xfabfb5da;
  for (const auto& msg : AllTypeExemplars()) {
    const ByteVec frame = bsproto::EncodeMessage(kMagic, msg);
    // Every prefix for small frames; a stride keeps block-sized frames cheap.
    const std::size_t step = frame.size() > 4096 ? 37 : 1;
    for (std::size_t len = 0; len < frame.size(); len += step) {
      const bsutil::ByteSpan prefix(frame.data(), len);
      bsproto::DecodeResult result;
      ASSERT_NO_THROW(result = bsproto::DecodeMessage(kMagic, prefix))
          << bsproto::CommandName(bsproto::MsgTypeOf(msg)) << " len=" << len;
      // A truncated frame is incomplete — it must never decode to a message
      // and never claim to consume bytes that are not there.
      ASSERT_EQ(result.status, bsproto::DecodeStatus::kNeedMoreData);
      ASSERT_EQ(result.consumed, 0u);
    }
  }
}

class CodecBitFlip : public ::testing::TestWithParam<int> {};

TEST_P(CodecBitFlip, SingleBitFlipsNeverDecodeAndNeverThrowForAnyType) {
  constexpr std::uint32_t kMagic = 0xfabfb5da;
  bsutil::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (const auto& msg : AllTypeExemplars()) {
    const ByteVec frame = bsproto::EncodeMessage(kMagic, msg);
    for (int round = 0; round < 40; ++round) {
      ByteVec mutated = frame;
      const std::size_t pos = rng.Below(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.Below(8));
      bsproto::DecodeResult result;
      ASSERT_NO_THROW(result = bsproto::DecodeMessage(kMagic, mutated))
          << bsproto::CommandName(bsproto::MsgTypeOf(msg)) << " byte=" << pos;
      // Magic, command, length and checksum cover every byte of the frame:
      // no single-bit flip may yield a successfully decoded message.
      ASSERT_NE(result.status, bsproto::DecodeStatus::kOk)
          << bsproto::CommandName(bsproto::MsgTypeOf(msg)) << " byte=" << pos;
    }
  }
}

TEST_P(CodecBitFlip, PayloadFlipsAreChecksumDropsWhichBypassMisbehavior) {
  // Table I has no rule for a bad-checksum frame (0.20.0): the node drops it
  // before the tracker sees it. Verify the decode side for every type with a
  // non-empty payload, and the tracker side through a real node below.
  constexpr std::uint32_t kMagic = 0xfabfb5da;
  bsutil::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  for (const auto& msg : AllTypeExemplars()) {
    const ByteVec frame = bsproto::EncodeMessage(kMagic, msg);
    if (frame.size() <= bsproto::kHeaderSize) continue;  // empty payload
    for (int round = 0; round < 20; ++round) {
      ByteVec mutated = frame;
      const std::size_t pos =
          bsproto::kHeaderSize + rng.Below(mutated.size() - bsproto::kHeaderSize);
      mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.Below(8));
      const auto result = bsproto::DecodeMessage(kMagic, mutated);
      ASSERT_EQ(result.status, bsproto::DecodeStatus::kBadChecksum)
          << bsproto::CommandName(bsproto::MsgTypeOf(msg)) << " byte=" << pos;
      ASSERT_EQ(result.consumed, mutated.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecBitFlip, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// StreamDecoder: incremental decode over partial buffers

/// One frame of every wire type, concatenated in variant order.
ByteVec FullCatalogueStream(std::uint32_t magic) {
  ByteVec stream;
  for (const auto& msg : AllTypeExemplars()) {
    const ByteVec frame = bsproto::EncodeMessage(magic, msg);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  return stream;
}

TEST(StreamDecoderProperty, EverySplitPointOfTheFullCatalogueRoundTrips) {
  constexpr std::uint32_t kMagic = 0xfabfb5da;
  const auto exemplars = AllTypeExemplars();
  const ByteVec stream = FullCatalogueStream(kMagic);

  for (std::size_t split = 0; split <= stream.size(); ++split) {
    bsproto::StreamDecoder decoder(kMagic);
    std::vector<bsproto::Message> got;
    const auto drain = [&] {
      bsproto::DecodeResult r;
      while (decoder.Next(r)) {
        ASSERT_EQ(r.status, bsproto::DecodeStatus::kOk) << "split=" << split;
        got.push_back(r.message);
      }
    };
    decoder.Feed(bsutil::ByteSpan(stream.data(), split));
    drain();
    decoder.Feed(bsutil::ByteSpan(stream.data() + split, stream.size() - split));
    drain();

    ASSERT_EQ(got.size(), exemplars.size()) << "split=" << split;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(got[i] == exemplars[i]) << "split=" << split << " i=" << i;
    }
    ASSERT_EQ(decoder.FramesDecoded(), exemplars.size());
    ASSERT_EQ(decoder.BufferedBytes(), 0u);
    // An empty buffer needs a full header before anything can complete.
    ASSERT_EQ(decoder.BytesNeeded(), bsproto::kHeaderSize);
  }
}

TEST(StreamDecoderProperty, ByteAtATimeFeedMatchesContiguousDecodeOnMessyStreams) {
  // Interleave valid frames with the adversarial ones the paper's bogus-
  // message vector uses: wrong checksum, unknown command, foreign magic. The
  // incremental decoder must emit exactly the contiguous loop's outcome
  // sequence regardless of chunking.
  constexpr std::uint32_t kMagic = 0xfabfb5da;
  const std::array<std::uint8_t, 4> bad_ck = {0xde, 0xad, 0xbe, 0xef};
  ByteVec stream;
  const auto append = [&stream](const ByteVec& frame) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  };
  append(bsproto::EncodeMessage(kMagic, bsproto::PingMsg{1}));
  append(bsproto::EncodeRaw(kMagic, "ping", {}, &bad_ck));
  append(bsproto::EncodeMessage(kMagic, bsproto::VerackMsg{}));
  append(bsproto::EncodeRaw(kMagic, "nonsense", {}, nullptr));
  append(bsproto::EncodeRaw(kMagic ^ 0x10000u, "ping", {}, nullptr));
  append(bsproto::EncodeMessage(kMagic, bsproto::PongMsg{2}));

  std::vector<std::pair<bsproto::DecodeStatus, std::size_t>> reference;
  bsutil::ByteSpan rest(stream);
  while (!rest.empty()) {
    const auto r = bsproto::DecodeMessage(kMagic, rest);
    if (r.status == bsproto::DecodeStatus::kNeedMoreData) break;
    reference.emplace_back(r.status, r.consumed);
    rest = rest.subspan(r.consumed);
  }
  ASSERT_GE(reference.size(), 6u);

  bsproto::StreamDecoder decoder(kMagic);
  std::vector<std::pair<bsproto::DecodeStatus, std::size_t>> incremental;
  for (std::size_t i = 0; i <= stream.size(); ++i) {
    if (i < stream.size()) decoder.Feed(bsutil::ByteSpan(stream.data() + i, 1));
    bsproto::DecodeResult r;
    while (decoder.Next(r)) incremental.emplace_back(r.status, r.consumed);
  }
  ASSERT_EQ(incremental, reference);
}

TEST(StreamDecoderProperty, BytesNeededIsExactAtEveryPrefixOfEveryType) {
  constexpr std::uint32_t kMagic = 0xfabfb5da;
  for (const auto& msg : AllTypeExemplars()) {
    const ByteVec frame = bsproto::EncodeMessage(kMagic, msg);
    const std::size_t step = frame.size() > 4096 ? 37 : 1;
    for (std::size_t len = 0; len < frame.size(); len += step) {
      bsproto::StreamDecoder decoder(kMagic);
      decoder.Feed(bsutil::ByteSpan(frame.data(), len));
      const std::size_t need = decoder.BytesNeeded();
      ASSERT_EQ(need,
                len < bsproto::kHeaderSize ? bsproto::kHeaderSize - len
                                           : frame.size() - len)
          << bsproto::CommandName(bsproto::MsgTypeOf(msg)) << " len=" << len;
      bsproto::DecodeResult r;
      ASSERT_FALSE(decoder.Next(r));
      // Feeding exactly the advertised bytes completes exactly the frame —
      // for a partial header it first re-advertises the payload remainder.
      decoder.Feed(bsutil::ByteSpan(frame.data() + len, need));
      if (decoder.BytesNeeded() > 0) {
        decoder.Feed(bsutil::ByteSpan(frame.data() + len + need,
                                      decoder.BytesNeeded()));
      }
      ASSERT_TRUE(decoder.Next(r));
      ASSERT_EQ(r.status, bsproto::DecodeStatus::kOk);
      ASSERT_EQ(r.consumed, frame.size());
    }
  }
}

TEST(StreamDecoderProperty, BoundedBufferShedsOldestAndKeepsDecodingPromptDrains) {
  constexpr std::uint32_t kMagic = 0xfabfb5da;
  // Undrained garbage overflows: the cap holds and the shed bytes are counted.
  bsproto::StreamDecoder capped(kMagic, 64);
  bsutil::Rng rng(42);
  ByteVec junk(1000);
  for (auto& b : junk) b = static_cast<std::uint8_t>(rng.Next());
  capped.Feed(junk);
  EXPECT_LE(capped.BufferedBytes(), 64u);
  EXPECT_EQ(capped.OverflowBytes(), junk.size() - capped.BufferedBytes());

  // A promptly drained decoder never sheds, even under the same tiny-ish cap,
  // as long as the cap covers one whole frame.
  const ByteVec ping = bsproto::EncodeMessage(kMagic, bsproto::PingMsg{7});
  bsproto::StreamDecoder drained(kMagic, ping.size());
  for (int i = 0; i < 100; ++i) {
    drained.Feed(ping);
    bsproto::DecodeResult r;
    ASSERT_TRUE(drained.Next(r));
    ASSERT_EQ(r.status, bsproto::DecodeStatus::kOk);
    ASSERT_FALSE(drained.Next(r));
  }
  EXPECT_EQ(drained.OverflowBytes(), 0u);
  EXPECT_EQ(drained.FramesDecoded(), 100u);
}

// ---------------------------------------------------------------------------
// Chainstate order-independence

class ChainOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChainOrderProperty, AcceptanceOrderDoesNotChangeTheFinalChain) {
  const bschain::ChainParams params;
  bsutil::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009);

  // Build a random block tree on a reference chainstate.
  bschain::ChainState reference(params);
  std::vector<bschain::Block> blocks;
  std::vector<bscrypto::Hash256> frontier = {reference.TipHash()};
  for (int i = 0; i < 12; ++i) {
    const bscrypto::Hash256 parent = frontier[rng.Below(frontier.size())];
    auto block = bschain::MineBlock(
        bschain::BuildBlockTemplate(parent, 1'600'001'000 + i, {}, params,
                                    static_cast<std::uint64_t>(i) + 5000),
        params);
    ASSERT_TRUE(block.has_value());
    ASSERT_EQ(reference.AcceptBlock(*block), bschain::BlockResult::kOk);
    blocks.push_back(*block);
    frontier.push_back(block->Hash());
  }

  // Accept in a random order with orphan retry (prev-missing blocks are
  // retried after the rest, as a node's orphan handling effectively does).
  bschain::ChainState shuffled(params);
  std::deque<bschain::Block> queue;
  {
    std::vector<bschain::Block> shuffled_blocks = blocks;
    for (std::size_t i = shuffled_blocks.size(); i > 1; --i) {
      std::swap(shuffled_blocks[i - 1], shuffled_blocks[rng.Below(i)]);
    }
    queue.assign(shuffled_blocks.begin(), shuffled_blocks.end());
  }
  int stall_guard = 0;
  while (!queue.empty() && stall_guard < 10'000) {
    const bschain::Block block = queue.front();
    queue.pop_front();
    const auto result = shuffled.AcceptBlock(block);
    if (result == bschain::BlockResult::kPrevMissing) {
      queue.push_back(block);  // retry later
      ++stall_guard;
    } else {
      ASSERT_TRUE(result == bschain::BlockResult::kOk ||
                  result == bschain::BlockResult::kDuplicate)
          << ToString(result);
    }
  }
  ASSERT_TRUE(queue.empty());

  EXPECT_EQ(shuffled.TipHeight(), reference.TipHeight());
  EXPECT_EQ(shuffled.IndexSize(), reference.IndexSize());
  for (const auto& block : blocks) {
    EXPECT_TRUE(shuffled.HaveBlock(block.Hash()));
    const auto a = shuffled.GetEntry(block.Hash());
    const auto b = reference.GetEntry(block.Hash());
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->height, b->height);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainOrderProperty, ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------------
// Bloom filter: never a false negative

struct BloomGeometry {
  std::size_t elements;
  double fp_rate;
  std::uint32_t tweak;
};

class BloomNoFalseNegatives : public ::testing::TestWithParam<BloomGeometry> {};

TEST_P(BloomNoFalseNegatives, EveryInsertedItemMatches) {
  const auto [elements, fp_rate, tweak] = GetParam();
  bsproto::BloomFilter filter(elements, fp_rate, tweak);
  bsutil::Rng rng(tweak + 99);
  std::vector<ByteVec> inserted;
  for (std::size_t i = 0; i < elements; ++i) {
    ByteVec item(1 + rng.Below(64));
    for (auto& b : item) b = static_cast<std::uint8_t>(rng.Next());
    filter.Insert(item);
    inserted.push_back(std::move(item));
  }
  for (const auto& item : inserted) {
    ASSERT_TRUE(filter.Contains(item));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BloomNoFalseNegatives,
    ::testing::Values(BloomGeometry{1, 0.5, 0}, BloomGeometry{10, 0.1, 1},
                      BloomGeometry{100, 0.01, 2}, BloomGeometry{1000, 0.001, 3},
                      BloomGeometry{5000, 0.0001, 0xdeadbeef}));

// ---------------------------------------------------------------------------
// Serialization: double round-trip stability

TEST(SerializationProperty, ReencodingADecodedMessageIsByteIdentical) {
  constexpr std::uint32_t kMagic = 0xfabfb5da;
  bsattack::Crafter crafter(bschain::ChainParams{});
  const std::vector<bsproto::Message> messages = {
      bsproto::PingMsg{42},
      crafter.ValidTx(),
      crafter.ValidBlock(bschain::ChainParams{}.GenesisBlock().Hash()),
      crafter.NonContinuousHeaders(),
      bsproto::FeeFilterMsg{12345},
  };
  for (const auto& msg : messages) {
    const ByteVec once = bsproto::EncodeMessage(kMagic, msg);
    const auto decoded = bsproto::DecodeMessage(kMagic, once);
    ASSERT_EQ(decoded.status, bsproto::DecodeStatus::kOk);
    const ByteVec twice = bsproto::EncodeMessage(kMagic, decoded.message);
    EXPECT_EQ(once, twice);
  }
}

// ---------------------------------------------------------------------------
// Store frame format: random record batches round-trip exactly, and ANY
// single-bit flip or truncation is detected — the scan returns an intact
// prefix of the original records, never a mis-decoded one.

std::vector<bsstore::Record> RandomBatch(bsutil::Rng& rng) {
  std::vector<bsstore::Record> records;
  const std::size_t count = 1 + rng.Below(8);
  for (std::size_t i = 0; i < count; ++i) {
    bsstore::Record record;
    record.type = static_cast<std::uint8_t>(1 + rng.Below(200));
    const std::size_t len = rng.Below(40);  // includes empty payloads
    for (std::size_t b = 0; b < len; ++b) {
      record.payload.push_back(static_cast<std::uint8_t>(rng.Below(256)));
    }
    records.push_back(std::move(record));
  }
  return records;
}

class StoreFrameProperty : public ::testing::TestWithParam<int> {};

TEST_P(StoreFrameProperty, RandomBatchesRoundTripExactly) {
  bsutil::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6271);
  for (int round = 0; round < 50; ++round) {
    const std::vector<bsstore::Record> records = RandomBatch(rng);
    ByteVec buf;
    for (const bsstore::Record& record : records) {
      bsstore::AppendFrame(buf, record.type, record.payload);
    }
    bsstore::AppendFrame(buf, bsstore::kCommitRecord, {});
    const bsstore::ScanResult scan = bsstore::ScanFrames(buf);
    ASSERT_TRUE(scan.clean);
    ASSERT_EQ(scan.committed_records, records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      ASSERT_EQ(scan.records[i], records[i]);
    }
  }
}

/// The committed records a scan returns must be an exact prefix of the
/// originals — corruption may shorten what survives, never alter it.
/// (scan.records interleaves commit markers; committed_frame_count bounds
/// the frames at the last intact marker.)
void AssertIntactPrefix(const bsstore::ScanResult& scan,
                        const std::vector<bsstore::Record>& originals) {
  std::vector<bsstore::Record> committed;
  for (std::size_t i = 0; i < scan.committed_frame_count; ++i) {
    if (scan.records[i].type != bsstore::kCommitRecord) {
      committed.push_back(scan.records[i]);
    }
  }
  ASSERT_EQ(committed.size(), scan.committed_records);
  ASSERT_LE(committed.size(), originals.size());
  for (std::size_t i = 0; i < committed.size(); ++i) {
    ASSERT_EQ(committed[i], originals[i]);
  }
}

TEST_P(StoreFrameProperty, EverySingleBitFlipIsDetectedNeverMisdecoded) {
  bsutil::Rng rng(static_cast<std::uint64_t>(GetParam()) * 28657);
  const std::vector<bsstore::Record> records = RandomBatch(rng);
  ByteVec buf;
  for (const bsstore::Record& record : records) {
    bsstore::AppendFrame(buf, record.type, record.payload);
  }
  bsstore::AppendFrame(buf, bsstore::kCommitRecord, {});

  for (std::size_t byte = 0; byte < buf.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      ByteVec corrupt = buf;
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const bsstore::ScanResult scan = bsstore::ScanFrames(corrupt);
      // The flip must be detected: CRC32 catches every single-bit error in
      // type/crc/payload, and a flipped length field desynchronizes framing,
      // which the per-frame CRC then rejects. Either way the scan can no
      // longer be clean with the full batch committed.
      ASSERT_FALSE(scan.clean && scan.committed_records == records.size())
          << "flip at byte " << byte << " bit " << bit << " went undetected";
      AssertIntactPrefix(scan, records);
    }
  }
}

TEST_P(StoreFrameProperty, EveryTruncationYieldsAnIntactPrefix) {
  bsutil::Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537);
  const std::vector<bsstore::Record> records = RandomBatch(rng);
  ByteVec buf;
  for (const bsstore::Record& record : records) {
    bsstore::AppendFrame(buf, record.type, record.payload);
    bsstore::AppendFrame(buf, bsstore::kCommitRecord, {});  // commit each
  }
  for (std::size_t len = 0; len < buf.size(); ++len) {
    const bsstore::ScanResult scan =
        bsstore::ScanFrames(bsutil::ByteSpan(buf).first(len));
    // A truncation at a frame boundary reads as a legitimately shorter log
    // (clean); anywhere else it tears a frame (dirty). Either way the scan
    // must yield an intact prefix — never a partial or mutated record.
    AssertIntactPrefix(scan, records);
    ASSERT_LE(scan.committed_bytes, len);
  }
  const bsstore::ScanResult whole = bsstore::ScanFrames(buf);
  ASSERT_TRUE(whole.clean);
  ASSERT_EQ(whole.committed_records, records.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreFrameProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
