// Tests for the crash-consistent state store (src/store) and its fault
// layer (sim/simfs): frame format, CRC properties, journal/snapshot
// lifecycle, fsck, the DurableNodeState bridge — and the crash-point sweep,
// which kills the store at EVERY mutating syscall index and asserts the
// recovery invariant:
//
//   after a crash at any syscall, reopening recovers a state that (a) is a
//   prefix of the committed transaction sequence and (b) contains at least
//   every transaction whose Commit() was acknowledged before the crash.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/addrman.hpp"
#include "core/banman.hpp"
#include "core/durable.hpp"
#include "core/misbehavior.hpp"
#include "core/node.hpp"
#include "detect/engine.hpp"
#include "obs/metrics.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "sim/simfs.hpp"
#include "store/format.hpp"
#include "store/fsck.hpp"
#include "store/store.hpp"
#include "util/serialize.hpp"

namespace {

using bsstore::FileHeader;
using bsstore::FileKind;
using bsstore::Record;
using bsstore::ScanResult;
using bsstore::StateStore;

bsutil::ByteVec U64Payload(std::uint64_t v) {
  bsutil::Writer w;
  w.WriteU64(v);
  return w.TakeData();
}

std::uint64_t PayloadU64(bsutil::ByteSpan payload) {
  bsutil::Reader r(payload);
  return r.ReadU64();
}

// ---------------------------------------------------------------------------
// CRC32

TEST(StoreFormat, Crc32KnownVector) {
  const std::string check = "123456789";
  const bsutil::ByteVec data(check.begin(), check.end());
  EXPECT_EQ(bsstore::Crc32(data), 0xCBF43926u);
}

TEST(StoreFormat, Crc32IncrementalMatchesOneShot) {
  bsutil::ByteVec data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<std::uint8_t>(i * 7));
  std::uint32_t state = bsstore::Crc32Init();
  state = bsstore::Crc32Update(state, bsutil::ByteSpan(data).first(100));
  state = bsstore::Crc32Update(state, bsutil::ByteSpan(data).subspan(100));
  EXPECT_EQ(bsstore::Crc32Final(state), bsstore::Crc32(data));
}

TEST(StoreFormat, Crc32EmptyInput) {
  EXPECT_EQ(bsstore::Crc32({}), bsstore::Crc32Final(bsstore::Crc32Init()));
}

// ---------------------------------------------------------------------------
// Header + frames

TEST(StoreFormat, HeaderRoundTrip) {
  bsutil::ByteVec buf;
  bsstore::AppendHeader(buf, {FileKind::kJournal, 42});
  ASSERT_EQ(buf.size(), bsstore::kHeaderSize);
  FileHeader header;
  ASSERT_TRUE(bsstore::ParseHeader(buf, header));
  EXPECT_EQ(header.kind, FileKind::kJournal);
  EXPECT_EQ(header.seq, 42u);
}

TEST(StoreFormat, HeaderRejectsBadMagicVersionAndShortInput) {
  bsutil::ByteVec buf;
  bsstore::AppendHeader(buf, {FileKind::kSnapshot, 7});
  FileHeader header;
  bsutil::ByteVec bad = buf;
  bad[0] ^= 0xff;  // magic
  EXPECT_FALSE(bsstore::ParseHeader(bad, header));
  bad = buf;
  bad[4] = 0xee;  // version
  EXPECT_FALSE(bsstore::ParseHeader(bad, header));
  EXPECT_FALSE(
      bsstore::ParseHeader(bsutil::ByteSpan(buf).first(bsstore::kHeaderSize - 1),
                           header));
}

TEST(StoreFormat, FrameRoundTripAndCommitBoundary) {
  bsutil::ByteVec buf;
  bsstore::AppendFrame(buf, 1, U64Payload(10));
  bsstore::AppendFrame(buf, 2, U64Payload(20));
  bsstore::AppendFrame(buf, bsstore::kCommitRecord, {});
  bsstore::AppendFrame(buf, 3, U64Payload(30));  // uncommitted

  const ScanResult scan = bsstore::ScanFrames(buf);
  EXPECT_TRUE(scan.clean);
  ASSERT_EQ(scan.records.size(), 4u);
  EXPECT_EQ(scan.records[0].type, 1);
  EXPECT_EQ(PayloadU64(scan.records[1].payload), 20u);
  EXPECT_EQ(scan.committed_records, 2u);
  EXPECT_EQ(scan.committed_frame_count, 3u);  // 2 records + the marker
  EXPECT_EQ(scan.valid_bytes, buf.size());
  EXPECT_LT(scan.committed_bytes, buf.size());
}

TEST(StoreFormat, ScanStopsAtTornTail) {
  bsutil::ByteVec buf;
  bsstore::AppendFrame(buf, 1, U64Payload(10));
  bsstore::AppendFrame(buf, bsstore::kCommitRecord, {});
  const std::size_t good = buf.size();
  bsstore::AppendFrame(buf, 2, U64Payload(20));
  buf.resize(buf.size() - 3);  // torn mid-frame

  const ScanResult scan = bsstore::ScanFrames(buf);
  EXPECT_FALSE(scan.clean);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.valid_bytes, good);
  EXPECT_EQ(scan.committed_bytes, good);
  EXPECT_EQ(scan.committed_records, 1u);
}

TEST(StoreFormat, ScanRejectsAbsurdLength) {
  bsutil::ByteVec buf;
  bsutil::Writer w;
  w.WriteU32(0x7fffffff);  // length far past kMaxRecordPayload
  w.WriteU8(1);
  w.WriteU32(0);
  buf = w.TakeData();
  const ScanResult scan = bsstore::ScanFrames(buf);
  EXPECT_FALSE(scan.clean);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, 0u);
}

TEST(StoreFormat, TrailingBytesCountEverythingPastLastCommit) {
  bsutil::ByteVec buf;
  bsstore::AppendFrame(buf, 1, U64Payload(10));
  bsstore::AppendFrame(buf, bsstore::kCommitRecord, {});
  const std::size_t committed = buf.size();
  bsstore::AppendFrame(buf, 2, U64Payload(20));  // valid but uncommitted
  buf.push_back(0xff);                           // then torn garbage
  buf.push_back(0xff);

  const ScanResult scan = bsstore::ScanFrames(buf);
  EXPECT_FALSE(scan.clean);
  EXPECT_EQ(scan.committed_bytes, committed);
  EXPECT_EQ(scan.trailing_bytes, buf.size() - committed);
  // The garbage hides no parseable committed data, so resync finds nothing.
  EXPECT_EQ(scan.resynced_commits, 0u);
}

TEST(StoreFormat, ResyncReportsCommitsStrandedPastDamage) {
  // Mid-journal damage with an intact committed transaction AFTER it: the
  // scan must still fail closed at the damage, but the resync pass has to
  // report the stranded commit so recovery can say what was destroyed
  // instead of silently truncating it away.
  bsutil::ByteVec buf;
  bsstore::AppendFrame(buf, 1, U64Payload(10));
  bsstore::AppendFrame(buf, bsstore::kCommitRecord, {});
  const std::size_t committed = buf.size();
  for (int i = 0; i < 7; ++i) buf.push_back(0xff);  // unparseable damage
  const std::size_t resync_at = buf.size();
  bsstore::AppendFrame(buf, 2, U64Payload(20));
  bsstore::AppendFrame(buf, bsstore::kCommitRecord, {});

  const ScanResult scan = bsstore::ScanFrames(buf);
  EXPECT_FALSE(scan.clean);
  EXPECT_EQ(scan.committed_bytes, committed);  // fail-closed: prefix only
  EXPECT_EQ(scan.committed_records, 1u);
  EXPECT_EQ(scan.trailing_bytes, buf.size() - committed);
  EXPECT_EQ(scan.resync_offset, resync_at);
  EXPECT_EQ(scan.resynced_frames, 2u);   // record + its commit marker
  EXPECT_EQ(scan.resynced_commits, 1u);  // one committed txn stranded
}

// ---------------------------------------------------------------------------
// SimFs semantics

TEST(SimFs, WriteVisibleButOnlySyncedSurvivesCrash) {
  bsim::SimFs fs(1);
  ASSERT_TRUE(fs.MkDir("d"));
  const int fd = fs.OpenWrite("d/f", true);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(fs.Write(fd, U64Payload(1)));
  ASSERT_TRUE(fs.Fsync(fd));
  ASSERT_TRUE(fs.Write(fd, U64Payload(2)));  // dirty tail, never synced
  EXPECT_EQ(fs.FileSize("d/f"), 16u);
  EXPECT_EQ(fs.SyncedSize("d/f"), 8u);

  bsim::SimFsFaults faults;
  faults.crash_at_op = static_cast<std::int64_t>(fs.OpCount());
  faults.seed = 3;
  fs.SetFaults(faults);
  fs.Remove("d/f");  // any mutating op at the armed index dies
  EXPECT_TRUE(fs.Crashed());
  fs.Reboot();
  EXPECT_TRUE(fs.HasFile("d/f"));
  EXPECT_GE(fs.FileSize("d/f"), 8u);   // synced prefix always survives
  EXPECT_LE(fs.FileSize("d/f"), 16u);  // tail may partially survive
  bsutil::ByteVec data;
  ASSERT_TRUE(fs.ReadFile("d/f", data));
  EXPECT_EQ(PayloadU64(bsutil::ByteSpan(data).first(8)), 1u);
}

TEST(SimFs, RenameIsAtomicAndDurable) {
  bsim::SimFs fs(1);
  const int fd = fs.OpenWrite("a", true);
  ASSERT_TRUE(fs.Write(fd, U64Payload(7)));
  ASSERT_TRUE(fs.Fsync(fd));
  fs.Close(fd);
  ASSERT_TRUE(fs.Rename("a", "b"));
  EXPECT_FALSE(fs.HasFile("a"));
  EXPECT_TRUE(fs.HasFile("b"));
  EXPECT_EQ(fs.SyncedSize("b"), 8u);
}

TEST(SimFs, EnospcFailsCleanlyAndFsKeepsRunning) {
  bsim::SimFs fs(1);
  const int fd = fs.OpenWrite("f", true);
  bsim::SimFsFaults faults;
  faults.enospc_at_op = static_cast<std::int64_t>(fs.OpCount());
  fs.SetFaults(faults);
  EXPECT_FALSE(fs.Write(fd, U64Payload(1)));  // the armed op fails
  EXPECT_FALSE(fs.Crashed());
  EXPECT_TRUE(fs.Write(fd, U64Payload(2)));  // next op succeeds
  EXPECT_EQ(fs.FileSize("f"), 8u);
}

TEST(SimFs, ShortWriteAppliesPrefixAndReportsFailure) {
  bsim::SimFs fs(9);
  const int fd = fs.OpenWrite("f", true);
  bsim::SimFsFaults faults;
  faults.short_write_at_op = static_cast<std::int64_t>(fs.OpCount());
  faults.seed = 9;
  fs.SetFaults(faults);
  bsutil::ByteVec big(100, 0xab);
  EXPECT_FALSE(fs.Write(fd, big));
  EXPECT_LT(fs.FileSize("f"), 100u);
}

TEST(SimFs, FlipBitCorruptsSilently) {
  bsim::SimFs fs(5);
  const int fd = fs.OpenWrite("f", true);
  bsim::SimFsFaults faults;
  faults.flip_bit_at_op = static_cast<std::int64_t>(fs.OpCount());
  faults.seed = 5;
  fs.SetFaults(faults);
  bsutil::ByteVec data(32, 0x00);
  EXPECT_TRUE(fs.Write(fd, data));  // reports success
  bsutil::ByteVec read_back;
  ASSERT_TRUE(fs.ReadFile("f", read_back));
  int diff = 0;
  for (std::size_t i = 0; i < read_back.size(); ++i) {
    if (read_back[i] != 0x00) ++diff;
  }
  EXPECT_EQ(diff, 1);
}

// ---------------------------------------------------------------------------
// StateStore lifecycle

TEST(StateStore, FreshOpenThenReopenReplaysCommitted) {
  bsim::SimFs fs(1);
  std::vector<std::uint64_t> replayed;
  {
    StateStore store(fs, "store");
    store.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
    ASSERT_TRUE(store.Open([](std::uint8_t, bsutil::ByteSpan) { FAIL(); }));
    EXPECT_TRUE(store.OpenStats().fresh_store);
    EXPECT_TRUE(store.AppendCommit(1, U64Payload(100)));
    store.Append(1, U64Payload(200));
    store.Append(1, U64Payload(300));
    EXPECT_TRUE(store.Commit());  // multi-record transaction
  }
  StateStore reopened(fs, "store");
  reopened.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
  ASSERT_TRUE(reopened.Open([&](std::uint8_t type, bsutil::ByteSpan payload) {
    EXPECT_EQ(type, 1);
    replayed.push_back(PayloadU64(payload));
  }));
  EXPECT_EQ(replayed, (std::vector<std::uint64_t>{100, 200, 300}));
  EXPECT_EQ(reopened.OpenStats().replayed_records, 3u);
  EXPECT_FALSE(reopened.OpenStats().journal_was_dirty);
}

TEST(StateStore, UncommittedBatchDroppedOnReplay) {
  bsim::SimFs fs(1);
  {
    StateStore store(fs, "store");
    store.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
    ASSERT_TRUE(store.Open([](std::uint8_t, bsutil::ByteSpan) {}));
    ASSERT_TRUE(store.AppendCommit(1, U64Payload(1)));
    store.Append(1, U64Payload(2));  // staged, never committed
  }
  std::vector<std::uint64_t> replayed;
  StateStore reopened(fs, "store");
  reopened.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
  ASSERT_TRUE(reopened.Open([&](std::uint8_t, bsutil::ByteSpan payload) {
    replayed.push_back(PayloadU64(payload));
  }));
  EXPECT_EQ(replayed, (std::vector<std::uint64_t>{1}));
}

TEST(StateStore, TornJournalTailTruncatedPhysically) {
  bsim::SimFs fs(1);
  std::string wal_path;
  {
    StateStore store(fs, "store");
    store.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
    ASSERT_TRUE(store.Open([](std::uint8_t, bsutil::ByteSpan) {}));
    ASSERT_TRUE(store.AppendCommit(1, U64Payload(1)));
    ASSERT_TRUE(store.AppendCommit(1, U64Payload(2)));
    wal_path = "store/" + StateStore::JournalName(store.ActiveSeq());
  }
  const std::size_t intact = fs.FileSize(wal_path);
  // Torn tail: an extra half-frame past the last commit marker.
  const int fd = fs.OpenWrite(wal_path, false);
  bsutil::Writer w;
  w.WriteU32(32);
  w.WriteU8(1);
  ASSERT_TRUE(fs.Write(fd, w.Data()));
  fs.Close(fd);

  std::vector<std::uint64_t> replayed;
  StateStore reopened(fs, "store");
  reopened.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
  bsobs::MetricsRegistry reg;
  reopened.AttachMetrics(reg);
  ASSERT_TRUE(reopened.Open([&](std::uint8_t, bsutil::ByteSpan payload) {
    replayed.push_back(PayloadU64(payload));
  }));
  EXPECT_EQ(replayed, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_TRUE(reopened.OpenStats().journal_was_dirty);
  EXPECT_EQ(fs.FileSize(wal_path), intact);  // tail physically gone
  EXPECT_EQ(reg.GetCounter("bs_store_truncated_frames_total", "")->Value(), 1u);
  EXPECT_GT(reg.GetCounter("bs_store_truncated_bytes_total", "")->Value(), 0u);
  // And appending after the truncation lands on a clean boundary.
  ASSERT_TRUE(reopened.AppendCommit(1, U64Payload(3)));
}

TEST(StateStore, CompactionStartsNewGenerationAndDropsOldFiles) {
  bsim::SimFs fs(1);
  std::vector<std::uint64_t> state;
  StateStore store(fs, "store");
  store.SetSnapshotSource([&](const StateStore::SnapshotSink& sink) {
    for (const std::uint64_t v : state) sink(1, U64Payload(v));
  });
  store.SetCompactThreshold(3);
  ASSERT_TRUE(store.Open([](std::uint8_t, bsutil::ByteSpan) {}));
  const std::uint64_t first_seq = store.ActiveSeq();
  for (std::uint64_t i = 0; i < 3; ++i) {
    state.push_back(i);
    ASSERT_TRUE(store.AppendCommit(1, U64Payload(i)));
  }
  EXPECT_GT(store.ActiveSeq(), first_seq);  // threshold compaction fired
  EXPECT_EQ(store.JournalTxns(), 0u);
  EXPECT_FALSE(fs.HasFile("store/" + StateStore::SnapshotName(first_seq)));
  EXPECT_FALSE(fs.HasFile("store/" + StateStore::JournalName(first_seq)));

  std::vector<std::uint64_t> replayed;
  state.push_back(99);
  ASSERT_TRUE(store.AppendCommit(1, U64Payload(99)));
  StateStore reopened(fs, "store");
  reopened.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
  ASSERT_TRUE(reopened.Open([&](std::uint8_t, bsutil::ByteSpan payload) {
    replayed.push_back(PayloadU64(payload));
  }));
  EXPECT_EQ(replayed, state);
}

TEST(StateStore, CorruptSnapshotFallsBackToOlderGeneration) {
  bsim::SimFs fs(1);
  std::vector<std::uint64_t> state;
  std::uint64_t good_seq = 0;
  {
    StateStore store(fs, "store");
    store.SetSnapshotSource([&](const StateStore::SnapshotSink& sink) {
      for (const std::uint64_t v : state) sink(1, U64Payload(v));
    });
    ASSERT_TRUE(store.Open([](std::uint8_t, bsutil::ByteSpan) {}));
    state.push_back(5);
    ASSERT_TRUE(store.AppendCommit(1, U64Payload(5)));
    ASSERT_TRUE(store.CompactNow());
    good_seq = store.ActiveSeq();
  }
  // Forge a corrupt higher-generation snapshot (bad CRC inside).
  bsutil::ByteVec forged;
  bsstore::AppendHeader(forged, {FileKind::kSnapshot, good_seq + 1});
  bsstore::AppendFrame(forged, 1, U64Payload(123));
  bsstore::AppendFrame(forged, bsstore::kCommitRecord, {});
  forged[forged.size() - 5] ^= 0x01;
  const std::string bad_path = "store/" + StateStore::SnapshotName(good_seq + 1);
  const int fd = fs.OpenWrite(bad_path, true);
  ASSERT_TRUE(fs.Write(fd, forged));
  ASSERT_TRUE(fs.Fsync(fd));
  fs.Close(fd);

  std::vector<std::uint64_t> replayed;
  StateStore reopened(fs, "store");
  reopened.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
  bsobs::MetricsRegistry reg;
  reopened.AttachMetrics(reg);
  ASSERT_TRUE(reopened.Open([&](std::uint8_t, bsutil::ByteSpan payload) {
    replayed.push_back(PayloadU64(payload));
  }));
  EXPECT_EQ(replayed, (std::vector<std::uint64_t>{5}));
  EXPECT_EQ(reopened.ActiveSeq(), good_seq);
  EXPECT_EQ(reopened.OpenStats().corrupt_snapshots, 1u);
  EXPECT_EQ(reg.GetCounter("bs_store_corrupt_snapshots_total", "")->Value(), 1u);
}

TEST(StateStore, EnospcJournalFailureFallsBackToSnapshot) {
  bsim::SimFs fs(1);
  std::vector<std::uint64_t> state;
  StateStore store(fs, "store");
  store.SetSnapshotSource([&](const StateStore::SnapshotSink& sink) {
    for (const std::uint64_t v : state) sink(1, U64Payload(v));
  });
  bsobs::MetricsRegistry reg;
  store.AttachMetrics(reg);
  ASSERT_TRUE(store.Open([](std::uint8_t, bsutil::ByteSpan) {}));
  state.push_back(1);
  ASSERT_TRUE(store.AppendCommit(1, U64Payload(1)));
  const std::uint64_t seq_before = store.ActiveSeq();

  bsim::SimFsFaults faults;
  faults.enospc_at_op = static_cast<std::int64_t>(fs.OpCount());
  fs.SetFaults(faults);
  state.push_back(2);
  EXPECT_TRUE(store.AppendCommit(1, U64Payload(2)));  // journal fails, snapshot heals
  EXPECT_GT(store.ActiveSeq(), seq_before);
  EXPECT_EQ(reg.GetCounter("bs_store_journal_failures_total", "")->Value(), 1u);

  std::vector<std::uint64_t> replayed;
  StateStore reopened(fs, "store");
  reopened.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
  ASSERT_TRUE(reopened.Open([&](std::uint8_t, bsutil::ByteSpan payload) {
    replayed.push_back(PayloadU64(payload));
  }));
  EXPECT_EQ(replayed, (std::vector<std::uint64_t>{1, 2}));
}

// ---------------------------------------------------------------------------
// The crash-point sweep.
//
// Workload: 12 single-record transactions (payload = txn index), compaction
// threshold 4, so the sweep crosses several journal appends, two threshold
// compactions, and the initial generation bootstrap. Run once fault-free to
// learn the syscall count, then re-run the whole scenario once per syscall
// index with a crash armed there, reboot, reopen, and check the invariant.

struct SweepOutcome {
  std::vector<std::uint64_t> acked;  // txn ids whose Commit returned true
  bool crashed = false;
};

SweepOutcome RunSweepWorkload(bsim::SimFs& fs, int txns) {
  SweepOutcome out;
  std::vector<std::uint64_t> state;
  StateStore store(fs, "store");
  store.SetSnapshotSource([&](const StateStore::SnapshotSink& sink) {
    for (const std::uint64_t v : state) sink(1, U64Payload(v));
  });
  store.SetCompactThreshold(4);
  const bool opened = store.Open([&](std::uint8_t, bsutil::ByteSpan payload) {
    state.push_back(PayloadU64(payload));
  });
  if (!opened) {
    out.crashed = fs.Crashed();
    return out;
  }
  for (int i = 0; i < txns; ++i) {
    const auto id = static_cast<std::uint64_t>(i);
    state.push_back(id);  // caller mutates first, as the node components do
    if (store.AppendCommit(1, U64Payload(id))) {
      out.acked.push_back(id);
    } else if (fs.Crashed()) {
      out.crashed = true;
      return out;
    }
  }
  return out;
}

TEST(StateStoreCrashSweep, EveryCrashPointRecoversDurablePrefix) {
  constexpr int kTxns = 12;
  // Learn the fault-free syscall count.
  bsim::SimFs probe(1);
  const SweepOutcome clean = RunSweepWorkload(probe, kTxns);
  ASSERT_FALSE(clean.crashed);
  ASSERT_EQ(clean.acked.size(), static_cast<std::size_t>(kTxns));
  const std::uint64_t total_ops = probe.OpCount();
  ASSERT_GT(total_ops, 20u);

  for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
    for (std::uint64_t op = 0; op < total_ops; ++op) {
      bsim::SimFs fs(seed);
      bsim::SimFsFaults faults;
      faults.crash_at_op = static_cast<std::int64_t>(op);
      faults.seed = seed;
      fs.SetFaults(faults);

      const SweepOutcome run = RunSweepWorkload(fs, kTxns);
      ASSERT_TRUE(fs.Crashed()) << "op " << op << " never fired";
      fs.Reboot();

      std::vector<std::uint64_t> recovered;
      StateStore store(fs, "store");
      store.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
      ASSERT_TRUE(store.Open([&](std::uint8_t type, bsutil::ByteSpan payload) {
        EXPECT_EQ(type, 1);
        recovered.push_back(PayloadU64(payload));
      })) << "reopen failed after crash at op " << op << " seed " << seed;

      // (a) Prefix of the committed transaction sequence: exactly 0..m-1.
      for (std::size_t i = 0; i < recovered.size(); ++i) {
        ASSERT_EQ(recovered[i], i)
            << "non-prefix recovery after crash at op " << op << " seed " << seed;
      }
      ASSERT_LE(recovered.size(), static_cast<std::size_t>(kTxns));
      // (b) Every acknowledged commit survived.
      ASSERT_GE(recovered.size(), run.acked.size())
          << "acked txn lost after crash at op " << op << " seed " << seed;
    }
  }
}

// A crash during recovery itself must not lose durable state either: crash
// the reopen at every syscall index, reboot again, and require full recovery.
TEST(StateStoreCrashSweep, CrashDuringRecoveryStaysRecoverable) {
  constexpr int kTxns = 6;
  bsim::SimFs fs(11);
  const SweepOutcome clean = RunSweepWorkload(fs, kTxns);
  ASSERT_EQ(clean.acked.size(), static_cast<std::size_t>(kTxns));
  // Leave a torn tail on the active journal so reopen has repair work to do.
  std::string target;
  for (std::uint64_t seq = 1; seq <= 16; ++seq) {
    const std::string candidate = "store/" + StateStore::JournalName(seq);
    if (fs.HasFile(candidate)) target = candidate;
  }
  ASSERT_FALSE(target.empty());
  const int fd = fs.OpenWrite(target, false);
  bsutil::Writer half;
  half.WriteU32(48);
  half.WriteU8(1);
  ASSERT_TRUE(fs.Write(fd, half.Data()));
  ASSERT_TRUE(fs.Fsync(fd));
  fs.Close(fd);

  const std::uint64_t base_op = fs.OpCount();
  // Probe: how many mutating ops does a clean recovery take?
  bsim::SimFs probe_copy = fs;
  {
    StateStore store(probe_copy, "store");
    store.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
    ASSERT_TRUE(store.Open([](std::uint8_t, bsutil::ByteSpan) {}));
  }
  const std::uint64_t recovery_ops = probe_copy.OpCount() - base_op;
  ASSERT_GT(recovery_ops, 0u);

  for (std::uint64_t op = 0; op < recovery_ops; ++op) {
    bsim::SimFs crashed = fs;
    bsim::SimFsFaults faults;
    faults.crash_at_op = static_cast<std::int64_t>(base_op + op);
    faults.seed = 17 + op;
    crashed.SetFaults(faults);
    {
      StateStore store(crashed, "store");
      store.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
      store.Open([](std::uint8_t, bsutil::ByteSpan) {});  // may fail mid-crash
    }
    crashed.Reboot();
    std::vector<std::uint64_t> recovered;
    StateStore store(crashed, "store");
    store.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
    ASSERT_TRUE(store.Open([&](std::uint8_t, bsutil::ByteSpan payload) {
      recovered.push_back(PayloadU64(payload));
    })) << "second recovery failed after crash at recovery op " << op;
    std::vector<std::uint64_t> expect;
    for (int i = 0; i < kTxns; ++i) expect.push_back(static_cast<std::uint64_t>(i));
    EXPECT_EQ(recovered, expect) << "state lost crashing recovery at op " << op;
  }
}

// ---------------------------------------------------------------------------
// fsck

TEST(Fsck, CleanStoreIsHealthy) {
  bsim::SimFs fs(1);
  {
    StateStore store(fs, "store");
    store.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
    ASSERT_TRUE(store.Open([](std::uint8_t, bsutil::ByteSpan) {}));
    ASSERT_TRUE(store.AppendCommit(1, U64Payload(1)));
  }
  const bsstore::FsckReport report = bsstore::RunFsck(fs, "store", false);
  EXPECT_TRUE(report.store_found);
  EXPECT_TRUE(report.healthy);
  EXPECT_EQ(report.active_records, 1u);
  EXPECT_EQ(report.truncated_frames, 0u);
}

TEST(Fsck, MissingStoreReportsNotFound) {
  bsim::SimFs fs(1);
  const bsstore::FsckReport report = bsstore::RunFsck(fs, "nowhere", false);
  EXPECT_FALSE(report.store_found);
  EXPECT_FALSE(report.healthy);
}

TEST(Fsck, TornTailDetectedAndRepaired) {
  bsim::SimFs fs(1);
  std::string wal;
  {
    StateStore store(fs, "store");
    store.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
    ASSERT_TRUE(store.Open([](std::uint8_t, bsutil::ByteSpan) {}));
    ASSERT_TRUE(store.AppendCommit(1, U64Payload(1)));
    wal = "store/" + StateStore::JournalName(store.ActiveSeq());
  }
  const std::size_t intact = fs.FileSize(wal);
  const int fd = fs.OpenWrite(wal, false);
  bsutil::Writer half;
  half.WriteU32(64);
  half.WriteU8(9);
  ASSERT_TRUE(fs.Write(fd, half.Data()));
  fs.Close(fd);

  bsobs::MetricsRegistry reg;
  bsstore::FsckReport report = bsstore::RunFsck(fs, "store", false, &reg);
  EXPECT_FALSE(report.healthy);
  EXPECT_EQ(report.truncated_frames, 1u);
  EXPECT_EQ(reg.GetCounter("bs_store_fsck_truncated_frames_total", "")->Value(), 1u);

  report = bsstore::RunFsck(fs, "store", true);
  EXPECT_TRUE(report.repaired);
  EXPECT_EQ(fs.FileSize(wal), intact);
  EXPECT_TRUE(bsstore::RunFsck(fs, "store", false).healthy);
}

TEST(Fsck, BitFlipInJournalDetected) {
  bsim::SimFs fs(1);
  std::string wal;
  std::size_t header_end = 0;
  {
    StateStore store(fs, "store");
    store.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
    ASSERT_TRUE(store.Open([](std::uint8_t, bsutil::ByteSpan) {}));
    ASSERT_TRUE(store.AppendCommit(1, U64Payload(0xfeed)));
    wal = "store/" + StateStore::JournalName(store.ActiveSeq());
    header_end = bsstore::kHeaderSize;
  }
  // Flip one payload bit inside the first frame.
  ASSERT_TRUE(fs.FlipBit(wal, header_end + 9 + 2, 4));
  const bsstore::FsckReport report = bsstore::RunFsck(fs, "store", false);
  EXPECT_FALSE(report.healthy);
  EXPECT_GE(report.truncated_frames, 1u);
}

TEST(Fsck, MidJournalCorruptionReportsLostCommits) {
  bsim::SimFs fs(1);
  std::string wal;
  {
    StateStore store(fs, "store");
    store.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
    ASSERT_TRUE(store.Open([](std::uint8_t, bsutil::ByteSpan) {}));
    ASSERT_TRUE(store.AppendCommit(1, U64Payload(1)));
    ASSERT_TRUE(store.AppendCommit(1, U64Payload(2)));
    wal = "store/" + StateStore::JournalName(store.ActiveSeq());
  }
  // Corrupt the FIRST transaction's commit marker (CRC byte). The second
  // transaction is intact but now stranded past the damage.
  const std::size_t commit1 = bsstore::kHeaderSize + (9 + 8);
  ASSERT_TRUE(fs.FlipBit(wal, commit1 + 5, 0));

  const bsstore::FsckReport report = bsstore::RunFsck(fs, "store", false);
  EXPECT_FALSE(report.healthy);
  EXPECT_EQ(report.lost_commits, 1u);
  EXPECT_EQ(report.resynced_frames, 2u);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"lost_commits\":1"), std::string::npos) << json;

  // Recovery itself stays fail-closed (prefix truncation), but the open
  // stats must surface the stranded commit too.
  StateStore reopened(fs, "store");
  reopened.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
  std::vector<std::uint64_t> replayed;
  ASSERT_TRUE(reopened.Open([&](std::uint8_t, bsutil::ByteSpan payload) {
    replayed.push_back(PayloadU64(payload));
  }));
  EXPECT_TRUE(replayed.empty());  // nothing before the damage was committed
  EXPECT_TRUE(reopened.OpenStats().journal_was_dirty);
  EXPECT_EQ(reopened.OpenStats().lost_commits, 1u);
  EXPECT_EQ(reopened.OpenStats().resynced_frames, 2u);
  // And the repaired journal accepts new commits on a clean boundary.
  ASSERT_TRUE(reopened.AppendCommit(1, U64Payload(3)));
}

TEST(Fsck, OrphanTmpAndStaleGenerationCleaned) {
  bsim::SimFs fs(1);
  {
    StateStore store(fs, "store");
    store.SetSnapshotSource([](const StateStore::SnapshotSink&) {});
    ASSERT_TRUE(store.Open([](std::uint8_t, bsutil::ByteSpan) {}));
    ASSERT_TRUE(store.AppendCommit(1, U64Payload(1)));
  }
  // Orphan tmp (interrupted rename) + a stale older generation.
  {
    const int fd = fs.OpenWrite("store/snap-9.dat.tmp", true);
    ASSERT_TRUE(fs.Write(fd, U64Payload(0)));
    fs.Close(fd);
  }
  {
    bsutil::ByteVec old_snap;
    bsstore::AppendHeader(old_snap, {FileKind::kSnapshot, 0});
    // seq 0 never occurs naturally (fresh stores start at 1), so it reads as
    // a stale leftover.
    bsstore::AppendFrame(old_snap, bsstore::kCommitRecord, {});
    const int fd = fs.OpenWrite("store/snap-0.dat", true);
    ASSERT_TRUE(fs.Write(fd, old_snap));
    fs.Close(fd);
  }
  bsstore::FsckReport report = bsstore::RunFsck(fs, "store", false);
  EXPECT_FALSE(report.healthy);
  EXPECT_EQ(report.orphan_tmp_files, 1u);
  EXPECT_EQ(report.stale_files, 1u);

  report = bsstore::RunFsck(fs, "store", true);
  EXPECT_TRUE(report.repaired);
  EXPECT_FALSE(fs.HasFile("store/snap-9.dat.tmp"));
  EXPECT_FALSE(fs.HasFile("store/snap-0.dat"));
  EXPECT_TRUE(bsstore::RunFsck(fs, "store", false).healthy);
}

// ---------------------------------------------------------------------------
// DurableNodeState

TEST(DurableNodeState, ComponentsRoundTripThroughStore) {
  bsim::SimFs fs(1);
  bsobs::MetricsRegistry reg;
  const bsproto::Endpoint alice{0x0a000002, 8333};
  const bsproto::Endpoint bob{0x0a000003, 18333};
  {
    bsnet::BanMan bans;
    bsnet::MisbehaviorTracker tracker(bsnet::CoreVersion::kV0_20,
                                      bsnet::BanPolicy::kBanScore, 100);
    bsnet::AddrMan addrs;
    bsnet::DurableNodeState durable(fs, "node", bans, tracker, addrs);
    ASSERT_TRUE(durable.Open(/*now=*/0));
    bans.Ban(alice, 1000);
    bans.Ban(bob, 2000);
    bans.Unban(bob);
    tracker.RestoreScore(7, 40, 2);  // silent: must NOT journal
    tracker.AddGoodScore(9, 3);      // hooked: must journal
    addrs.Add({0x0a000009, 8333});
    durable.SetDetectBaseline(U64Payload(0xabcd));
  }
  bsnet::BanMan bans;
  bans.AttachMetrics(reg);
  bsnet::MisbehaviorTracker tracker(bsnet::CoreVersion::kV0_20,
                                    bsnet::BanPolicy::kBanScore, 100);
  bsnet::AddrMan addrs;
  bsnet::DurableNodeState durable(fs, "node", bans, tracker, addrs);
  ASSERT_TRUE(durable.Open(/*now=*/100));
  EXPECT_TRUE(bans.IsBanned(alice, 100));
  EXPECT_FALSE(bans.IsBanned(bob, 100));
  EXPECT_EQ(tracker.Score(7), 0);  // silent restore was not journaled
  EXPECT_EQ(tracker.GoodScore(9), 3);
  EXPECT_TRUE(addrs.Contains({0x0a000009, 8333}));
  EXPECT_EQ(PayloadU64(durable.DetectBaseline()), 0xabcdu);
}

TEST(DurableNodeState, ExpiredBansDroppedOnLoadAndCounted) {
  bsim::SimFs fs(1);
  const bsproto::Endpoint soon{0x0a000002, 8333};
  const bsproto::Endpoint late{0x0a000003, 8333};
  {
    bsnet::BanMan bans;
    bsnet::MisbehaviorTracker tracker(bsnet::CoreVersion::kV0_20,
                                      bsnet::BanPolicy::kBanScore, 100);
    bsnet::AddrMan addrs;
    bsnet::DurableNodeState durable(fs, "node", bans, tracker, addrs);
    ASSERT_TRUE(durable.Open(0));
    bans.Ban(soon, 50);    // will be expired at reload time
    bans.Ban(late, 5000);  // still active
  }
  bsobs::MetricsRegistry reg;
  bsnet::BanMan bans;
  bans.AttachMetrics(reg);
  bsnet::MisbehaviorTracker tracker(bsnet::CoreVersion::kV0_20,
                                    bsnet::BanPolicy::kBanScore, 100);
  bsnet::AddrMan addrs;
  bsnet::DurableNodeState durable(fs, "node", bans, tracker, addrs);
  ASSERT_TRUE(durable.Open(/*now=*/100));
  EXPECT_FALSE(bans.IsBanned(soon, 100));
  EXPECT_TRUE(bans.IsBanned(late, 100));
  EXPECT_EQ(reg.GetCounter("bs_banlist_expired_on_load_total", "")->Value(), 1u);
}

TEST(DurableNodeState, DetectBaselineSurvivesViaEngine) {
  bsim::SimFs fs(1);
  bsdetect::StatEngine engine;
  std::vector<bsdetect::FeatureWindow> windows(3);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    windows[i].n = 250.0 + 10.0 * static_cast<double>(i);
    windows[i].c = 1.0;
    windows[i].b = 5000.0;
    windows[i].counts = {{"ping", 100.0 + static_cast<double>(i)},
                         {"inv", 50.0},
                         {"tx", 25.0}};
  }
  ASSERT_TRUE(engine.Train(windows));
  {
    bsnet::BanMan bans;
    bsnet::MisbehaviorTracker tracker(bsnet::CoreVersion::kV0_20,
                                      bsnet::BanPolicy::kBanScore, 100);
    bsnet::AddrMan addrs;
    bsnet::DurableNodeState durable(fs, "node", bans, tracker, addrs);
    ASSERT_TRUE(durable.Open(0));
    ASSERT_TRUE(durable.SetDetectBaseline(engine.SerializeProfile()));
  }
  bsnet::BanMan bans;
  bsnet::MisbehaviorTracker tracker(bsnet::CoreVersion::kV0_20,
                                    bsnet::BanPolicy::kBanScore, 100);
  bsnet::AddrMan addrs;
  bsnet::DurableNodeState durable(fs, "node", bans, tracker, addrs);
  ASSERT_TRUE(durable.Open(0));
  bsdetect::StatEngine restored;
  ASSERT_TRUE(restored.LoadProfile(durable.DetectBaseline()));
  EXPECT_TRUE(restored.Trained());
  const bsdetect::Profile& a = engine.GetProfile();
  const bsdetect::Profile& b = restored.GetProfile();
  EXPECT_EQ(a.tau_n_low, b.tau_n_low);
  EXPECT_EQ(a.tau_n_high, b.tau_n_high);
  EXPECT_EQ(a.tau_c_high, b.tau_c_high);
  EXPECT_EQ(a.tau_b_high, b.tau_b_high);
  EXPECT_EQ(a.tau_lambda, b.tau_lambda);
  EXPECT_EQ(a.reference, b.reference);
}

// The node-level wiring: a node with enable_durable_store persists its bans
// across a full restart, and the legacy path (flag off) touches no files.
TEST(DurableNodeState, NodeLevelBanSurvivesRestart) {
  bsim::SimFs fs(1);
  bsim::Scheduler sched;
  bsim::Network net(sched);
  const bsproto::Endpoint villain{0x0a0000ee, 8333};

  bsnet::NodeConfig config;
  config.enable_durable_store = true;
  config.store_dir = "node-store";
  config.store_fs = &fs;
  {
    bsnet::Node node(sched, net, 0x0a000001, config);
    ASSERT_NE(node.Durable(), nullptr);
    node.Bans().Ban(villain, sched.Now() + 24 * bsim::kHour);
    node.Tracker().AddGoodScore(1, 2);
    node.Stop();  // simulated crash: no flush
  }
  {
    bsnet::Node reborn(sched, net, 0x0a000001, config);
    EXPECT_TRUE(reborn.Bans().IsBanned(villain, sched.Now()));
    EXPECT_EQ(reborn.Tracker().GoodScore(1), 2);
    reborn.Stop();
  }

  bsim::SimFs untouched(1);
  bsnet::NodeConfig legacy;
  legacy.store_fs = &untouched;  // flag off: must never be used
  {
    bsnet::Node node(sched, net, 0x0a000002, legacy);
    EXPECT_EQ(node.Durable(), nullptr);
    node.Bans().Ban(villain, sched.Now() + bsim::kHour);
    node.Stop();
  }
  EXPECT_EQ(untouched.OpCount(), 0u);
  EXPECT_EQ(untouched.FileCount(), 0u);
}

// The shutdown path under crash. Node::Shutdown() ends with a durable
// SetAnchors + Flush — a full compaction (snapshot write + rename + old-file
// cleanup), which is exactly where a supervisor's SIGKILL lands on a real
// daemon. Crash at every syscall index of that window and require: the store
// reopens, every mutation journaled *before* Shutdown survives (bans and
// scores journal at mutation time, so the flush must never be load-bearing
// for them), and fsck can always bring the directory back to healthy without
// losing a commit.
TEST(DurableNodeState, ShutdownCrashAtEverySyscallIsReplayable) {
  const bsproto::Endpoint villain{0x0a0000ee, 8333};
  constexpr int kScoredPeers = 4;

  bsnet::NodeConfig config;
  config.enable_durable_store = true;
  config.enable_anchors = true;
  config.store_dir = "node-store";

  // Journal a ban + good scores, then Shutdown. Returns the op index where
  // the shutdown window began (everything before it is the fault-free
  // prefix, identical across runs because SimFs is seeded).
  const auto run_to_shutdown = [&](bsim::SimFs& fs) -> std::uint64_t {
    bsim::Scheduler sched;
    bsim::Network net(sched);
    bsnet::NodeConfig cfg = config;
    cfg.store_fs = &fs;
    bsnet::Node node(sched, net, 0x0a000001, cfg);
    EXPECT_NE(node.Durable(), nullptr);
    node.Bans().Ban(villain, sched.Now() + 24 * bsim::kHour);
    for (int id = 1; id <= kScoredPeers; ++id) {
      node.Tracker().AddGoodScore(id, id * 3);
    }
    const std::uint64_t window_start = fs.OpCount();
    node.Shutdown();  // SetAnchors + Flush; the crash lands in here
    node.Stop();
    return window_start;
  };

  const auto expect_state_intact = [&](bsim::SimFs& fs, std::uint64_t op) {
    bsim::Scheduler sched;
    bsim::Network net(sched);
    bsnet::NodeConfig cfg = config;
    cfg.store_fs = &fs;
    bsnet::Node reborn(sched, net, 0x0a000001, cfg);
    ASSERT_NE(reborn.Durable(), nullptr)
        << "reopen ran volatile after crash at op " << op;
    EXPECT_TRUE(reborn.Bans().IsBanned(villain, sched.Now()))
        << "journaled ban lost after crash at op " << op;
    for (int id = 1; id <= kScoredPeers; ++id) {
      EXPECT_EQ(reborn.Tracker().GoodScore(id), id * 3)
          << "good score lost after crash at op " << op;
    }
    reborn.Stop();
  };

  // Learn the fault-free op range of the shutdown window.
  bsim::SimFs probe(1);
  const std::uint64_t window_start = run_to_shutdown(probe);
  const std::uint64_t total_ops = probe.OpCount();
  ASSERT_GT(total_ops, window_start) << "shutdown window journaled nothing";

  for (std::uint64_t op = window_start; op < total_ops; ++op) {
    bsim::SimFs fs(1);
    bsim::SimFsFaults faults;
    faults.crash_at_op = static_cast<std::int64_t>(op);
    faults.seed = op;
    fs.SetFaults(faults);
    run_to_shutdown(fs);
    ASSERT_TRUE(fs.Crashed()) << "op " << op << " never fired";
    fs.Reboot();

    // (a) A reborn node replays every pre-shutdown mutation.
    expect_state_intact(fs, op);

    // (b) The reopen physically truncates any torn journal tail; what can
    // remain is interrupted-compaction litter (orphan tmp, stale
    // generation). Repair must make the directory fully healthy without
    // stranding a single committed record...
    const bsstore::FsckReport repaired =
        bsstore::RunFsck(fs, config.store_dir, true);
    EXPECT_TRUE(bsstore::RunFsck(fs, config.store_dir, false).healthy)
        << "fsck could not heal the store after crash at op " << op;
    EXPECT_EQ(repaired.lost_commits, 0u)
        << "shutdown crash at op " << op << " stranded committed data";

    // ...and the repaired store still replays the same state.
    expect_state_intact(fs, op);
  }
}

}  // namespace
