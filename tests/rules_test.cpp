// Tests for the Table I rule sets and the misbehavior tracker: per-version
// scores, scope gating, deprecations, thresholds, and countermeasure
// policies. The rule matrix is checked row-by-row against the paper's table.
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string>
#include <vector>

#include "core/banman.hpp"
#include "core/misbehavior.hpp"
#include "core/rules.hpp"

namespace {

using namespace bsnet;  // NOLINT

struct TableRow {
  Misbehavior what;
  int v20;  // -1 == rule absent
  int v21;
  int v22;
  PeerScope scope;
};

// The paper's Table I, verbatim.
const std::vector<TableRow> kPaperTable = {
    {Misbehavior::kBlockMutated, 100, 100, 100, PeerScope::kAny},
    {Misbehavior::kBlockCachedInvalid, 100, 100, 100, PeerScope::kOutbound},
    {Misbehavior::kBlockPrevInvalid, 100, 100, 100, PeerScope::kAny},
    {Misbehavior::kBlockPrevMissing, 10, 10, 10, PeerScope::kAny},
    {Misbehavior::kTxSegwitInvalid, 100, 100, 100, PeerScope::kAny},
    {Misbehavior::kGetBlockTxnOutOfBounds, 100, 100, 100, PeerScope::kAny},
    {Misbehavior::kHeadersNonConnecting, 20, 20, 20, PeerScope::kAny},
    {Misbehavior::kHeadersNonContinuous, 20, 20, 20, PeerScope::kAny},
    {Misbehavior::kHeadersOversize, 20, 20, 20, PeerScope::kAny},
    {Misbehavior::kAddrOversize, 20, 20, 20, PeerScope::kAny},
    {Misbehavior::kInvOversize, 20, 20, 20, PeerScope::kAny},
    {Misbehavior::kGetDataOversize, 20, 20, 20, PeerScope::kAny},
    {Misbehavior::kCmpctBlockInvalid, 100, 100, 100, PeerScope::kAny},
    {Misbehavior::kFilterLoadOversize, 100, 100, 100, PeerScope::kAny},
    {Misbehavior::kFilterAddOversize, 100, 100, 100, PeerScope::kAny},
    {Misbehavior::kFilterAddVersionGate, 100, -1, -1, PeerScope::kAny},
    {Misbehavior::kVersionDuplicate, 1, 1, -1, PeerScope::kInbound},
    {Misbehavior::kMessageBeforeVersion, 1, 1, -1, PeerScope::kInbound},
    {Misbehavior::kMessageBeforeVerack, 1, -1, -1, PeerScope::kInbound},
};

class TableOneMatrix : public ::testing::TestWithParam<TableRow> {};

TEST_P(TableOneMatrix, ScoresMatchPaperAcrossVersions) {
  const TableRow& row = GetParam();
  const struct {
    CoreVersion version;
    int expected;
  } checks[] = {{CoreVersion::kV0_20, row.v20},
                {CoreVersion::kV0_21, row.v21},
                {CoreVersion::kV0_22, row.v22}};
  for (const auto& [version, expected] : checks) {
    const auto rule = GetRule(version, row.what);
    if (expected < 0) {
      EXPECT_FALSE(rule.has_value())
          << ToString(row.what) << " should be absent in " << ToString(version);
    } else {
      ASSERT_TRUE(rule.has_value())
          << ToString(row.what) << " missing in " << ToString(version);
      EXPECT_EQ(rule->score, expected) << ToString(row.what);
      EXPECT_EQ(rule->scope, row.scope) << ToString(row.what);
      EXPECT_TRUE(rule->in_paper_table);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperRows, TableOneMatrix, ::testing::ValuesIn(kPaperTable),
                         [](const ::testing::TestParamInfo<TableRow>& info) {
                           std::string name = ToString(info.param.what);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Rules, PaperRowCountsPerVersion) {
  auto paper_rows = [](CoreVersion v) {
    std::size_t n = 0;
    for (const auto& rule : RulesFor(v)) n += rule.in_paper_table ? 1 : 0;
    return n;
  };
  // 0.20.0 has all 19 enumerated rows; 0.21.0 drops the FILTERADD version
  // gate and the VERACK rule (17); 0.22.0 additionally drops both VERSION
  // rules (15).
  EXPECT_EQ(paper_rows(CoreVersion::kV0_20), 19u);
  EXPECT_EQ(paper_rows(CoreVersion::kV0_21), 17u);
  EXPECT_EQ(paper_rows(CoreVersion::kV0_22), 15u);
}

TEST(Rules, MessageTypeCoverageIsTwelveOfTwentySix) {
  // §III-B: "only 12 out of 26 message types possess corresponding ban-score
  // rules in Bitcoin Core 0.20.0".
  std::set<std::string> types;
  for (const auto& rule : RulesFor(CoreVersion::kV0_20)) {
    if (rule.in_paper_table) types.insert(rule.message_type);
  }
  // Table I names: BLOCK TX GETBLOCKTXN HEADERS ADDR INV GETDATA CMPCTBLOCK
  // FILTERLOAD FILTERADD VERSION VERACK == 12.
  EXPECT_EQ(types.size(), 12u);
}

TEST(Rules, BehavioralDivergenceMatrixAcrossVersions) {
  // Differential snapshot: drive EVERY misbehavior through live trackers of
  // all three versions, in both scopes, and record each (misbehavior,
  // version-pair) cell where the outcomes differ. The expected set below is
  // spelled out cell by cell — exactly the four Table I deprecations —
  // so rescoring, adding, or dropping a rule in any one version's snapshot
  // fails here until the matrix is deliberately re-derived. This checks the
  // *behavior* of MisbehaviorTracker, complementing the GetRule row checks
  // above and the randomized differential oracle in fuzz/differential.cpp.
  const std::array<CoreVersion, 3> versions = {
      CoreVersion::kV0_20, CoreVersion::kV0_21, CoreVersion::kV0_22};
  const auto cell = [](Misbehavior m, CoreVersion a, CoreVersion b) {
    return std::string(ToString(m)) + "@" + ToString(a) + "/" + ToString(b);
  };
  const std::set<std::string> expected = {
      cell(Misbehavior::kFilterAddVersionGate, versions[0], versions[1]),
      cell(Misbehavior::kFilterAddVersionGate, versions[0], versions[2]),
      cell(Misbehavior::kVersionDuplicate, versions[0], versions[2]),
      cell(Misbehavior::kVersionDuplicate, versions[1], versions[2]),
      cell(Misbehavior::kMessageBeforeVersion, versions[0], versions[2]),
      cell(Misbehavior::kMessageBeforeVersion, versions[1], versions[2]),
      cell(Misbehavior::kMessageBeforeVerack, versions[0], versions[1]),
      cell(Misbehavior::kMessageBeforeVerack, versions[0], versions[2]),
  };

  std::set<std::string> observed;
  for (const Misbehavior what : AllMisbehaviors()) {
    for (const bool inbound : {true, false}) {
      std::array<MisbehaviorOutcome, 3> out;
      for (std::size_t i = 0; i < versions.size(); ++i) {
        MisbehaviorTracker tracker(versions[i], BanPolicy::kBanScore, 100);
        out[i] = tracker.Misbehaving(/*peer=*/1, inbound, what);
      }
      for (std::size_t a = 0; a < versions.size(); ++a) {
        for (std::size_t b = a + 1; b < versions.size(); ++b) {
          if (out[a].rule_applied != out[b].rule_applied ||
              out[a].score_delta != out[b].score_delta ||
              out[a].total_score != out[b].total_score ||
              out[a].should_ban != out[b].should_ban) {
            observed.insert(cell(what, versions[a], versions[b]));
          }
        }
      }
    }
  }
  EXPECT_EQ(observed, expected);
}

// ---------------------------------------------------------------------------
// Tracker mechanics

TEST(Tracker, AccumulatesUntilThreshold) {
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kBanScore, 100);
  for (int i = 0; i < 99; ++i) {
    const auto outcome = tracker.Misbehaving(1, /*inbound=*/true,
                                             Misbehavior::kVersionDuplicate);
    EXPECT_TRUE(outcome.rule_applied);
    EXPECT_FALSE(outcome.should_ban) << "at " << i;
  }
  const auto final = tracker.Misbehaving(1, true, Misbehavior::kVersionDuplicate);
  EXPECT_TRUE(final.should_ban);
  EXPECT_EQ(final.total_score, 100);
}

TEST(Tracker, HundredPointRuleBansImmediately) {
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kBanScore, 100);
  const auto outcome = tracker.Misbehaving(1, true, Misbehavior::kTxSegwitInvalid);
  EXPECT_TRUE(outcome.should_ban);
}

TEST(Tracker, MixedScoresAccumulate) {
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kBanScore, 100);
  // 20 * 4 = 80, then +10 = 90, then +10 = 100 → ban.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(tracker.Misbehaving(1, true, Misbehavior::kAddrOversize).should_ban);
  }
  EXPECT_FALSE(tracker.Misbehaving(1, true, Misbehavior::kBlockPrevMissing).should_ban);
  EXPECT_TRUE(tracker.Misbehaving(1, true, Misbehavior::kBlockPrevMissing).should_ban);
}

TEST(Tracker, ScoresAreTrackedPerPeer) {
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kBanScore, 100);
  tracker.Misbehaving(1, true, Misbehavior::kAddrOversize);
  tracker.Misbehaving(2, true, Misbehavior::kBlockPrevMissing);
  EXPECT_EQ(tracker.Score(1), 20);
  EXPECT_EQ(tracker.Score(2), 10);
  EXPECT_EQ(tracker.Score(3), 0);
}

TEST(Tracker, InboundScopedRuleIgnoresOutboundPeer) {
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kBanScore, 100);
  const auto outcome = tracker.Misbehaving(1, /*inbound=*/false,
                                           Misbehavior::kVersionDuplicate);
  EXPECT_FALSE(outcome.rule_applied);
  EXPECT_EQ(tracker.Score(1), 0);
}

TEST(Tracker, OutboundScopedRuleIgnoresInboundPeer) {
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kBanScore, 100);
  EXPECT_FALSE(
      tracker.Misbehaving(1, /*inbound=*/true, Misbehavior::kBlockCachedInvalid)
          .rule_applied);
  EXPECT_TRUE(
      tracker.Misbehaving(2, /*inbound=*/false, Misbehavior::kBlockCachedInvalid)
          .rule_applied);
}

TEST(Tracker, DeprecatedRuleIsNoOpInNewerVersion) {
  MisbehaviorTracker v22(CoreVersion::kV0_22, BanPolicy::kBanScore, 100);
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(v22.Misbehaving(1, true, Misbehavior::kVersionDuplicate).rule_applied);
  }
  EXPECT_EQ(v22.Score(1), 0);  // the Fig. 8 vector dies in 0.22.0
}

TEST(Tracker, VerackRuleOnlyInV20) {
  MisbehaviorTracker v20(CoreVersion::kV0_20, BanPolicy::kBanScore, 100);
  MisbehaviorTracker v21(CoreVersion::kV0_21, BanPolicy::kBanScore, 100);
  EXPECT_TRUE(v20.Misbehaving(1, true, Misbehavior::kMessageBeforeVerack).rule_applied);
  EXPECT_FALSE(v21.Misbehaving(1, true, Misbehavior::kMessageBeforeVerack).rule_applied);
}

TEST(Tracker, ForgetResetsPeerState) {
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kBanScore, 100);
  tracker.Misbehaving(1, true, Misbehavior::kAddrOversize);
  tracker.Forget(1);
  EXPECT_EQ(tracker.Score(1), 0);
}

TEST(Tracker, CustomThresholdRespected) {
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kBanScore, 40);
  EXPECT_FALSE(tracker.Misbehaving(1, true, Misbehavior::kAddrOversize).should_ban);
  EXPECT_TRUE(tracker.Misbehaving(1, true, Misbehavior::kAddrOversize).should_ban);
}

// ---------------------------------------------------------------------------
// Countermeasure policies (§VIII)

TEST(Policies, ThresholdInfinityTracksButNeverBans) {
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kThresholdInfinity, 100);
  MisbehaviorOutcome last;
  for (int i = 0; i < 10; ++i) {
    last = tracker.Misbehaving(1, true, Misbehavior::kTxSegwitInvalid);
    EXPECT_FALSE(last.should_ban);
  }
  EXPECT_EQ(tracker.Score(1), 1000);  // the score keeps its peer-health value
}

TEST(Policies, DisabledTracksNothing) {
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kDisabled, 100);
  const auto outcome = tracker.Misbehaving(1, true, Misbehavior::kTxSegwitInvalid);
  EXPECT_FALSE(outcome.rule_applied);
  EXPECT_EQ(tracker.Score(1), 0);
}

TEST(Policies, GoodScoreExemptsCreditedPeer) {
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kGoodScore, 100, 1);
  tracker.AddGoodScore(1);  // delivered one valid block
  const auto outcome = tracker.Misbehaving(1, true, Misbehavior::kTxSegwitInvalid);
  EXPECT_TRUE(outcome.rule_applied);
  EXPECT_FALSE(outcome.should_ban);
  EXPECT_EQ(tracker.GoodScore(1), 1);
}

TEST(Policies, GoodScoreStillBansZeroCreditPeer) {
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kGoodScore, 100, 1);
  const auto outcome = tracker.Misbehaving(2, true, Misbehavior::kTxSegwitInvalid);
  EXPECT_TRUE(outcome.should_ban);
}

TEST(Policies, GoodScoreExemptionThresholdRespected) {
  MisbehaviorTracker tracker(CoreVersion::kV0_20, BanPolicy::kGoodScore, 100, 3);
  tracker.AddGoodScore(1, 2);  // below the exemption threshold of 3
  EXPECT_TRUE(tracker.Misbehaving(1, true, Misbehavior::kTxSegwitInvalid).should_ban);
  tracker.AddGoodScore(4, 3);
  EXPECT_FALSE(tracker.Misbehaving(4, true, Misbehavior::kTxSegwitInvalid).should_ban);
}

// ---------------------------------------------------------------------------
// BanMan

TEST(BanManTest, BanExpiresAfterDuration) {
  BanMan bans;
  const Endpoint peer{0x0a000001, 8333};
  bans.Ban(peer, 24 * bsim::kHour);
  EXPECT_TRUE(bans.IsBanned(peer, 0));
  EXPECT_TRUE(bans.IsBanned(peer, 24 * bsim::kHour - 1));
  EXPECT_FALSE(bans.IsBanned(peer, 24 * bsim::kHour));
}

TEST(BanManTest, BansArePerIdentifierNotPerIp) {
  BanMan bans;
  bans.Ban({0x0a000001, 50000}, bsim::kHour);
  EXPECT_TRUE(bans.IsBanned({0x0a000001, 50000}, 0));
  // Same IP, different port: a fresh Sybil identifier, not banned — the
  // §III-B vector-3 observation.
  EXPECT_FALSE(bans.IsBanned({0x0a000001, 50001}, 0));
}

TEST(BanManTest, RebanExtends) {
  BanMan bans;
  const Endpoint peer{0x0a000001, 8333};
  bans.Ban(peer, 100);
  bans.Ban(peer, 200);
  EXPECT_EQ(bans.BanExpiry(peer), 200);
  bans.Ban(peer, 150);  // shorter re-ban does not shrink
  EXPECT_EQ(bans.BanExpiry(peer), 200);
}

TEST(BanManTest, SweepRemovesExpired) {
  BanMan bans;
  bans.Ban({1, 1}, 100);
  bans.Ban({2, 2}, 300);
  bans.SweepExpired(200);
  EXPECT_EQ(bans.Size(), 1u);
  EXPECT_TRUE(bans.IsBanned({2, 2}, 200));
}

TEST(BanManTest, BannedPortsOfCountsIdentifiers) {
  BanMan bans;
  for (std::uint16_t port = 49152; port < 49252; ++port) {
    bans.Ban({0x0a000009, port}, bsim::kHour);
  }
  bans.Ban({0x0a000008, 8333}, bsim::kHour);
  EXPECT_EQ(bans.BannedPortsOf(0x0a000009, 0), 100u);
  EXPECT_EQ(bans.BannedPortsOf(0x0a000008, 0), 1u);
  EXPECT_EQ(bans.BannedPortsOf(0x0a000007, 0), 0u);
}

TEST(BanManTest, UnbanLifts) {
  BanMan bans;
  const Endpoint peer{7, 7};
  bans.Ban(peer, 1000);
  bans.Unban(peer);
  EXPECT_FALSE(bans.IsBanned(peer, 0));
}

}  // namespace
