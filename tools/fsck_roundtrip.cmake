# fsck round-trip driver (ctest cli_fsck_roundtrip).
#
#   1. Build a demo store with a torn journal tail; fsck without repair must
#      report it unhealthy (exit != 0).
#   2. fsck --repair must truncate the tail and leave a healthy store (exit 0,
#      JSON reports repaired).
#   3. A plain re-verify over the repaired directory must pass (exit 0).
#
# Invoked with -DLAB=<banscore-lab path> -DDIR=<scratch dir>.
file(REMOVE_RECURSE "${DIR}")

execute_process(COMMAND "${LAB}" fsck --dir "${DIR}" --demo torn --format json
                RESULT_VARIABLE torn_rc OUTPUT_VARIABLE torn_out)
if(torn_rc EQUAL 0)
  message(FATAL_ERROR "torn store verified healthy without repair: ${torn_out}")
endif()

execute_process(COMMAND "${LAB}" fsck --dir "${DIR}" --repair yes --format json
                RESULT_VARIABLE repair_rc OUTPUT_VARIABLE repair_out)
if(NOT repair_rc EQUAL 0)
  message(FATAL_ERROR "fsck --repair failed (rc=${repair_rc}): ${repair_out}")
endif()
if(NOT repair_out MATCHES "\"repaired\": *true")
  message(FATAL_ERROR "repair did not report repaired=true: ${repair_out}")
endif()

execute_process(COMMAND "${LAB}" fsck --dir "${DIR}" --format json
                RESULT_VARIABLE verify_rc OUTPUT_VARIABLE verify_out)
if(NOT verify_rc EQUAL 0)
  message(FATAL_ERROR "repaired store failed re-verify: ${verify_out}")
endif()
if(NOT verify_out MATCHES "\"healthy\": *true")
  message(FATAL_ERROR "re-verify did not report healthy=true: ${verify_out}")
endif()
