// bsnetd: the ban-score node as a supervised long-running daemon.
//
// Wires Node + DurableNodeState + bsobs metrics onto RealTransport (epoll,
// non-blocking sockets) with a line-oriented JSON RPC control plane and a
// graceful SIGTERM path: flush the WAL, persist anchors and the ban list,
// close peers politely. Every syscall goes through the SocketApi seam, so
// the same binary runs under seeded fault injection (--fault-* flags) for
// the testbed's kill/recovery drills.
//
//   bsnetd --port 9001 --rpc-port 10001 --peers 127.0.0.1:9002,127.0.0.1:9003 \
//          --store-dir /tmp/n1 --mine-interval-ms 500 --seed 7
//
// Runs until SIGTERM/SIGINT, an RPC "stop", or --seconds elapses. Exit 0 on
// a clean shutdown, 1 on listen/setup failure, 2 on flag errors.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/event_loop.hpp"
#include "core/node.hpp"
#include "core/real_transport.hpp"
#include "core/rpc.hpp"
#include "sim/faultsock.hpp"

namespace {

volatile std::sig_atomic_t g_signal_stop = 0;

void OnSignal(int) { g_signal_stop = 1; }

struct DaemonFlags {
  std::string ip = "127.0.0.1";
  std::uint16_t port = 9333;
  std::uint16_t rpc_port = 0;  // 0 = port + 1000
  std::vector<bsproto::Endpoint> peers;
  std::string store_dir;
  long mine_interval_ms = 0;
  long seconds = 0;  // 0 = run until signalled
  std::uint64_t seed = 42;
  bsim::FaultSocketFaults faults;
  bool any_fault = false;
  bool quiet = false;
};

bool ParsePeers(const std::string& list, std::vector<bsproto::Endpoint>& out) {
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string item = list.substr(pos, comma - pos);
    const std::size_t colon = item.rfind(':');
    if (colon == std::string::npos) return false;
    bsproto::Endpoint ep;
    ep.ip = bsproto::Endpoint::ParseIp(item.substr(0, colon));
    const long port = std::atol(item.c_str() + colon + 1);
    if (ep.ip == 0 || port <= 0 || port > 65535) return false;
    ep.port = static_cast<std::uint16_t>(port);
    out.push_back(ep);
    pos = comma + 1;
  }
  return true;
}

int UsageError(const char* what) {
  std::fprintf(stderr, "bsnetd: %s\n", what);
  std::fprintf(
      stderr,
      "usage: bsnetd [--ip A] [--port P] [--rpc-port P] [--peers a:p,b:p]\n"
      "              [--store-dir DIR] [--mine-interval-ms N] [--seconds N]\n"
      "              [--seed N] [--quiet]\n"
      "              [--fault-eagain R] [--fault-short R] [--fault-reset R]\n"
      "              [--fault-epipe R] [--fault-accept R] [--fault-connect R]\n"
      "              [--fault-blackhole R] [--fault-seed N]\n");
  return 2;
}

bool ParseFlags(int argc, char** argv, DaemonFlags& f) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--quiet") {
      f.quiet = true;
      continue;
    }
    if (i + 1 >= argc) return false;
    const std::string value = argv[++i];
    if (flag == "--ip") {
      f.ip = value;
    } else if (flag == "--port") {
      f.port = static_cast<std::uint16_t>(std::atoi(value.c_str()));
    } else if (flag == "--rpc-port") {
      f.rpc_port = static_cast<std::uint16_t>(std::atoi(value.c_str()));
    } else if (flag == "--peers") {
      if (!ParsePeers(value, f.peers)) return false;
    } else if (flag == "--store-dir") {
      f.store_dir = value;
    } else if (flag == "--mine-interval-ms") {
      f.mine_interval_ms = std::atol(value.c_str());
    } else if (flag == "--seconds") {
      f.seconds = std::atol(value.c_str());
    } else if (flag == "--seed") {
      f.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (flag == "--fault-eagain") {
      f.faults.eagain_rate = std::atof(value.c_str());
    } else if (flag == "--fault-short") {
      f.faults.short_io_rate = std::atof(value.c_str());
    } else if (flag == "--fault-reset") {
      f.faults.reset_rate = std::atof(value.c_str());
    } else if (flag == "--fault-epipe") {
      f.faults.epipe_rate = std::atof(value.c_str());
    } else if (flag == "--fault-accept") {
      f.faults.accept_fail_rate = std::atof(value.c_str());
    } else if (flag == "--fault-connect") {
      f.faults.connect_fail_rate = std::atof(value.c_str());
    } else if (flag == "--fault-blackhole") {
      f.faults.blackhole_rate = std::atof(value.c_str());
    } else if (flag == "--fault-seed") {
      f.faults.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else {
      return false;
    }
  }
  f.any_fault = f.faults.eagain_rate > 0 || f.faults.short_io_rate > 0 ||
                f.faults.reset_rate > 0 || f.faults.epipe_rate > 0 ||
                f.faults.accept_fail_rate > 0 || f.faults.connect_fail_rate > 0 ||
                f.faults.blackhole_rate > 0;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  DaemonFlags flags;
  if (!ParseFlags(argc, argv, flags)) return UsageError("bad flags");
  if (flags.rpc_port == 0) {
    flags.rpc_port = static_cast<std::uint16_t>(flags.port + 1000);
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);

  bsim::Scheduler sched;
  bsnet::EventLoop loop(sched);

  bsim::FaultSocketApi fault_api(bsim::RealSocketApi::Instance());
  fault_api.SetFaults(flags.faults);
  bsim::SocketApi& api =
      flags.any_fault ? static_cast<bsim::SocketApi&>(fault_api)
                      : static_cast<bsim::SocketApi&>(bsim::RealSocketApi::Instance());

  bsnet::RealTransportConfig rt;
  rt.bind_ip = bsproto::Endpoint::ParseIp(flags.ip);
  if (rt.bind_ip == 0) return UsageError("bad --ip");
  rt.bind_port = flags.port;
  bsnet::RealTransport transport(loop, api, rt);

  bsnet::NodeConfig config;
  config.listen_port = flags.port;
  config.rng_seed = flags.seed;
  if (!flags.store_dir.empty()) {
    config.enable_durable_store = true;
    config.store_dir = flags.store_dir;
    config.enable_anchors = true;
  }

  bsnet::Node node(sched, transport, config);
  node.Start();
  if (transport.LastListenError() != 0) {
    std::fprintf(stderr, "bsnetd: listen on %s:%u failed: %s\n",
                 flags.ip.c_str(), flags.port,
                 std::strerror(-transport.LastListenError()));
    return 1;
  }
  for (const auto& peer : flags.peers) node.AddKnownAddress(peer);

  bsnet::RpcServer rpc(loop, api, node, flags.rpc_port);
  if (rpc.ListenError() != 0) {
    std::fprintf(stderr, "bsnetd: rpc listen on %u failed: %s\n", flags.rpc_port,
                 std::strerror(-rpc.ListenError()));
    return 1;
  }

  if (flags.mine_interval_ms > 0) {
    const bsim::SimTime interval = flags.mine_interval_ms * bsim::kMillisecond;
    auto mine = std::make_shared<std::function<void()>>();
    *mine = [&node, &sched, interval, mine]() {
      node.MineAndRelay();
      sched.After(interval, [mine]() { (*mine)(); });
    };
    sched.After(interval, [mine]() { (*mine)(); });
  }

  if (!flags.quiet) {
    std::printf("bsnetd: listening on %s:%u (rpc %u), store %s\n",
                flags.ip.c_str(), flags.port, rpc.Port(),
                flags.store_dir.empty() ? "<none>" : flags.store_dir.c_str());
    std::fflush(stdout);
  }

  const bsim::SimTime deadline =
      flags.seconds > 0 ? loop.WallNow() + flags.seconds * bsim::kSecond : 0;
  while (g_signal_stop == 0 && !rpc.StopRequested()) {
    if (deadline != 0 && loop.WallNow() >= deadline) break;
    loop.PumpOnce(50);
  }

  // Graceful shutdown: persist anchors, flush the WAL, close peers politely.
  node.Shutdown();
  if (!flags.quiet) {
    std::printf("bsnetd: shut down cleanly (height %d, accepts %llu, teardowns %llu)\n",
                node.Chain().TipHeight(),
                static_cast<unsigned long long>(transport.Accepts()),
                static_cast<unsigned long long>(transport.Teardowns()));
  }
  return 0;
}
