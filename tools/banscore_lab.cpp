// banscore-lab — command-line laboratory for the ban-score attack/defense
// scenarios. Every experiment from the paper can be run with tunable
// parameters without writing code.
//
//   banscore-lab rules   [--version 0.20|0.21|0.22]
//   banscore-lab bmdos   [--payload ping|bogus-block|unknown|invalid-pow]
//                        [--connections N] [--rate R] [--seconds S]
//                        [--policy banscore|infinity|disabled|goodscore]
//   banscore-lab sybil   [--identifiers N] [--delay-ms D]
//                        [--version 0.20|0.21|0.22] [--threshold T]
//   banscore-lab defame  [--mode pre|post] [--policy ...]
//   banscore-lab detect  [--train-minutes M] [--attack bmdos|defame]
//                        [--window W]
//   banscore-lab dump-metrics [--seconds S] [--payload ...] [--format prom|json]
//   banscore-lab chaos   [--seeds N] [--seed-base B] [--seconds S]
//                        (randomized fault sweep; exit 0 iff every seed's
//                        safety invariants held)
//   banscore-lab overload [--defenses none|...|all] [--procs N] [--windows W]
//                        [--min-ratio R] [--format table|json]
//                        (Sybil-flood A/B of honest mining rate)
//   banscore-lab fsck    --dir D [--repair yes] [--format table|json]
//                        [--demo clean|torn]
//                        (validate/repair a StateStore directory; exit 0 iff
//                         the store is healthy after any requested repair)
//   banscore-lab eclipse [--defenses none|all] [--seconds S]
//                        [--heal-fraction F] [--format table|json]
//                        (sustained eclipse attack; exit 0 iff the victim's
//                         final control fraction stays below --heal-fraction)
//   banscore-lab partition [--defenses none|all] [--seconds S]
//                        [--format table|json]
//                        (asymmetric routing detour vs a stock or hardened
//                         victim; exit 0 iff the victim reconverges to
//                         within 1 block of the miner by the end)
//
// Every scenario accepts --seed N (default 42, the NodeConfig default) and
// echoes it in its output, so a sweep driver can re-run any single seed.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hpp"

#include "attack/bmdos.hpp"
#include "attack/defamation.hpp"
#include "attack/eclipse.hpp"
#include "attack/sybil.hpp"
#include "attack/traffic.hpp"
#include "core/node.hpp"
#include "detect/engine.hpp"
#include "detect/monitor.hpp"
#include "core/rpc.hpp"
#include "obs/span.hpp"
#include "sim/faults.hpp"
#include "fuzz/differential.hpp"
#include "fuzz/engine.hpp"
#include "fuzz/harness.hpp"
#include "store/fsck.hpp"
#include "store/store.hpp"
#include "util/json.hpp"
#include "util/serialize.hpp"

using namespace bsnet;  // NOLINT

namespace {

// ---------------------------------------------------------------------------
// Tiny flag parser: --key value pairs after the scenario name.

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
        std::exit(2);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetNum(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

CoreVersion ParseVersion(const std::string& s) {
  if (s == "0.21") return CoreVersion::kV0_21;
  if (s == "0.22") return CoreVersion::kV0_22;
  return CoreVersion::kV0_20;
}

BanPolicy ParsePolicy(const std::string& s) {
  if (s == "infinity") return BanPolicy::kThresholdInfinity;
  if (s == "disabled") return BanPolicy::kDisabled;
  if (s == "goodscore") return BanPolicy::kGoodScore;
  return BanPolicy::kBanScore;
}

/// --seed for every scenario. 42 is the NodeConfig default, so omitting the
/// flag reproduces the historical (pre---seed) runs bit for bit; derived
/// per-node seeds below are chosen as `seed + offset` with offsets that map
/// 42 onto the literals the scenarios used before the flag existed.
std::uint64_t SeedOf(const Flags& flags) {
  return static_cast<std::uint64_t>(flags.GetNum("seed", 42));
}

// ---------------------------------------------------------------------------
// Scenarios

int RunRules(const Flags& flags) {
  const CoreVersion version = ParseVersion(flags.Get("version", "0.20"));
  std::printf("ban-score rules of Bitcoin Core %s\n\n", ToString(version));
  std::printf("%-12s | %-44s | %5s | %-13s | %s\n", "Message", "Misbehavior", "score",
              "Object of ban", "Type");
  for (const RuleInfo& rule : RulesFor(version)) {
    if (!rule.in_paper_table) continue;
    std::printf("%-12s | %-44s | %5d | %-13s | %s\n", rule.message_type,
                rule.description, rule.score, ToString(rule.scope), ToString(rule.cls));
  }
  return 0;
}

int RunBmDos(const Flags& flags) {
  const std::uint64_t seed = SeedOf(flags);
  bsim::Scheduler sched;
  bsim::Network net(sched);
  bsim::CpuModel cpu;
  NodeConfig config;
  config.rng_seed = seed;
  config.ban_policy = ParsePolicy(flags.Get("policy", "banscore"));
  Node victim(sched, net, 0x0a000001, config, &cpu);
  victim.Start();
  bsattack::AttackerNode attacker(sched, net, 0x0a000002, config.chain.magic);
  bsattack::Crafter crafter(config.chain);

  bsattack::BmDosConfig bm;
  const std::string payload = flags.Get("payload", "bogus-block");
  if (payload == "ping") bm.payload = bsattack::BmDosConfig::Payload::kPing;
  else if (payload == "unknown") bm.payload = bsattack::BmDosConfig::Payload::kUnknownCommand;
  else if (payload == "invalid-pow") bm.payload = bsattack::BmDosConfig::Payload::kInvalidPowBlock;
  else bm.payload = bsattack::BmDosConfig::Payload::kBogusBlock;
  bm.sybil_connections = static_cast<int>(flags.GetNum("connections", 1));
  bm.rate_msgs_per_sec = flags.GetNum("rate", 1000);
  const double seconds = flags.GetNum("seconds", 10);

  cpu.SetActiveConnections(10 + bm.sybil_connections);
  cpu.BeginWindow(sched.Now());
  sched.RunUntil(bsim::kSecond);
  const double baseline = cpu.EndWindow(sched.Now()).mining_rate_hps;

  bsattack::BmDosAttack attack(attacker, {victim.Ip(), 8333}, crafter, bm);
  attack.Start();
  sched.RunUntil(sched.Now() + 2 * bsim::kSecond);
  cpu.BeginWindow(sched.Now());
  sched.RunUntil(sched.Now() + bsim::FromSeconds(seconds));
  const auto sample = cpu.EndWindow(sched.Now());
  attack.Stop();

  std::printf("BM-DoS: payload=%s connections=%d rate=%.0f/s policy=%s seed=%llu\n",
              payload.c_str(), bm.sybil_connections, attack.EffectiveRate(),
              ToString(config.ban_policy), static_cast<unsigned long long>(seed));
  std::printf("  messages sent:        %llu\n",
              static_cast<unsigned long long>(attack.MessagesSent()));
  std::printf("  mining: %.3g -> %.3g h/s (%.0f%% drop), CPU busy %.1f%%\n", baseline,
              sample.mining_rate_hps,
              100.0 * (1.0 - sample.mining_rate_hps / baseline),
              100.0 * sample.busy_fraction);
  std::printf("  bad-checksum frames dropped: %llu, peers banned: %llu\n",
              static_cast<unsigned long long>(victim.FramesDroppedBadChecksum()),
              static_cast<unsigned long long>(victim.PeersBanned()));
  return 0;
}

int RunSybil(const Flags& flags) {
  const std::uint64_t seed = SeedOf(flags);
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.rng_seed = seed;
  config.core_version = ParseVersion(flags.Get("version", "0.20"));
  config.ban_threshold = static_cast<int>(flags.GetNum("threshold", 100));
  Node target(sched, net, 0x0a000001, config);
  target.Start();
  bsattack::AttackerNode attacker(sched, net, 0x0a000002, config.chain.magic);

  bsattack::SerialSybilConfig sc;
  sc.max_identifiers = static_cast<int>(flags.GetNum("identifiers", 10));
  sc.extra_message_delay =
      static_cast<bsim::SimTime>(flags.GetNum("delay-ms", 0) * bsim::kMillisecond);
  bsattack::SerialSybilAttack attack(attacker, {target.Ip(), 8333}, sc);
  attack.Start();
  sched.RunUntil(bsim::FromSeconds(sc.max_identifiers * 3.0 + 10));

  std::printf("serial Sybil (duplicate VERSION) vs Core %s, threshold %d, seed %llu\n",
              ToString(config.core_version), config.ban_threshold,
              static_cast<unsigned long long>(seed));
  std::printf("  identifiers banned: %d/%d\n", attack.IdentifiersBanned(),
              sc.max_identifiers);
  if (attack.IdentifiersBanned() > 0) {
    std::printf("  mean time-to-ban:   %.4f s\n", attack.MeanTimeToBan());
    const double per_id = attack.MeanTimeToBan() + 0.2;
    std::printf("  full-IP projection: %.2f min for 16384 ports\n",
                16384.0 * per_id / 60.0);
  } else {
    std::printf("  the VERSION rules are absent in this rule set: the vector is dead\n");
  }
  return 0;
}

int RunDefame(const Flags& flags) {
  const std::uint64_t seed = SeedOf(flags);
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig target_config;
  target_config.rng_seed = seed;
  target_config.ban_policy = ParsePolicy(flags.Get("policy", "banscore"));
  target_config.target_outbound = 1;
  Node target(sched, net, 0x0a000001, target_config);
  NodeConfig pc;
  pc.rng_seed = seed;
  pc.target_outbound = 0;
  Node innocent(sched, net, 0x0a000002, pc);
  innocent.Start();
  target.AddKnownAddress({innocent.Ip(), 8333});
  target.Start();
  sched.RunUntil(5 * bsim::kSecond);

  bsattack::AttackerNode attacker(sched, net, 0x0a000066, target_config.chain.magic);
  bsattack::Crafter crafter(target_config.chain);
  const std::string mode = flags.Get("mode", "post");

  if (mode == "pre") {
    const bsproto::Endpoint victim_id{innocent.Ip(), 55555};
    bsattack::PreConnectionDefamation pre(
        attacker, {target.Ip(), 8333}, victim_id,
        bsattack::PreConnectionDefamation::InstantBanFrames(target_config.chain.magic));
    pre.Run();
    sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
    std::printf("pre-connection Defamation of %s under %s (seed %llu): banned=%s\n",
                victim_id.ToString().c_str(), ToString(target_config.ban_policy),
                static_cast<unsigned long long>(seed),
                target.Bans().IsBanned(victim_id, sched.Now()) ? "YES" : "no");
    return 0;
  }

  // Post-connection: earn the innocent peer a good score first, so the
  // goodscore policy has something to exempt.
  innocent.MineAndRelay();
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
  const Peer* outbound = nullptr;
  for (const Peer* p : target.Peers()) {
    if (!p->inbound) outbound = p;
  }
  if (outbound == nullptr) {
    std::printf("setup failed: no outbound session\n");
    return 1;
  }
  bsattack::PostConnectionDefamation post(attacker, outbound->conn->Local(),
                                          outbound->remote);
  post.Arm({bsproto::EncodeMessage(target_config.chain.magic,
                                   crafter.SegwitInvalidTx())});
  innocent.SendToRemoteIp(target.Ip(), bsproto::PingMsg{1});
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
  std::printf("post-connection Defamation of %s under %s (seed %llu): "
              "injected=%s banned=%s\n",
              outbound->remote.ToString().c_str(), ToString(target_config.ban_policy),
              static_cast<unsigned long long>(seed),
              post.Injected() ? "yes" : "no",
              target.Bans().IsBanned({innocent.Ip(), 8333}, sched.Now()) ? "YES" : "no");
  return 0;
}

int RunDetect(const Flags& flags) {
  const std::uint64_t seed = SeedOf(flags);
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.rng_seed = seed;
  config.target_outbound = 8;
  Node target(sched, net, 0x0a000001, config);
  std::vector<std::unique_ptr<Node>> storage;
  std::vector<Node*> peers;
  for (int i = 0; i < 20; ++i) {
    NodeConfig pc;
    pc.rng_seed = seed;
    pc.target_outbound = 0;
    auto peer = std::make_unique<Node>(sched, net, 0x0a000100 + i, pc);
    peer->Start();
    target.AddKnownAddress({peer->Ip(), 8333});
    peers.push_back(peer.get());
    storage.push_back(std::move(peer));
  }
  target.Start();
  sched.RunUntil(10 * bsim::kSecond);

  bsdetect::Monitor monitor(target);
  bsattack::MainnetTrafficGenerator traffic(sched, peers, target,
                                            bsattack::TrafficConfig{});
  traffic.Start();

  const int train_minutes = static_cast<int>(flags.GetNum("train-minutes", 60));
  const int window = static_cast<int>(flags.GetNum("window", 10));
  std::printf("training on %d simulated minutes (window %d min, seed %llu)...\n",
              train_minutes, window, static_cast<unsigned long long>(seed));
  sched.RunUntil(sched.Now() + train_minutes * bsim::kMinute);
  bsdetect::StatEngine engine;
  if (!engine.Train(monitor.AllWindows(window))) {
    std::printf("not enough windows to train\n");
    return 1;
  }
  const auto& p = engine.GetProfile();
  std::printf("tau_n=[%.0f, %.0f]  tau_c=[0, %.2f]  tau_lambda=%.4f\n", p.tau_n_low,
              p.tau_n_high, p.tau_c_high, p.tau_lambda);

  const std::string attack = flags.Get("attack", "bmdos");
  bsattack::AttackerNode attacker(sched, net, 0x0a000066, config.chain.magic);
  bsattack::Crafter crafter(config.chain);
  std::unique_ptr<bsattack::BmDosAttack> flood;
  std::vector<std::unique_ptr<bsattack::PostConnectionDefamation>> defamations;
  if (attack == "bmdos") {
    bsattack::BmDosConfig bm;
    bm.payload = bsattack::BmDosConfig::Payload::kPing;
    bm.rate_msgs_per_sec = 250;
    flood = std::make_unique<bsattack::BmDosAttack>(attacker,
                                                    bsproto::Endpoint{target.Ip(), 8333},
                                                    crafter, bm);
    flood->Start();
    sched.RunUntil(sched.Now() + (window + 1) * bsim::kMinute);
  } else {
    const bsim::SimTime until = sched.Now() + window * bsim::kMinute;
    while (sched.Now() < until) {
      for (const Peer* peer : target.Peers()) {
        if (!peer->inbound && peer->HandshakeComplete() &&
            !target.Bans().IsBanned(peer->remote, sched.Now())) {
          auto d = std::make_unique<bsattack::PostConnectionDefamation>(
              attacker, peer->conn->Local(), peer->remote);
          d->Arm({bsproto::EncodeMessage(config.chain.magic,
                                         crafter.SegwitInvalidTx())});
          defamations.push_back(std::move(d));
          break;
        }
      }
      sched.RunUntil(sched.Now() + 10 * bsim::kSecond);
    }
  }

  const auto result = engine.Detect(monitor.Window(sched.Now(), window));
  std::printf("under %s: n=%.0f c=%.2f rho=%.4f -> %s%s%s\n", attack.c_str(), result.n,
              result.c, result.rho, result.anomalous ? "ANOMALOUS (" : "normal",
              result.anomalous
                  ? (result.bmdos_suspected ? "bm-dos " : "")
                  : "",
              result.anomalous
                  ? (result.defamation_suspected ? "defamation)" : ")")
                  : "");
  return result.anomalous ? 0 : 1;
}

int RunDumpMetrics(const Flags& flags) {
  // Drive a short instrumented BM-DoS run against a victim node sharing one
  // registry with the scheduler, then print the scrape-ready snapshot.
  const std::uint64_t seed = SeedOf(flags);
  bsobs::MetricsRegistry registry;
  bsim::Scheduler sched;
  sched.AttachMetrics(registry);
  bsim::Network net(sched);
  net.AttachMetrics(registry);
  NodeConfig config;
  config.rng_seed = seed;
  config.metrics = &registry;
  config.ban_policy = ParsePolicy(flags.Get("policy", "banscore"));
  Node victim(sched, net, 0x0a000001, config);
  victim.Start();
  bsattack::AttackerNode attacker(sched, net, 0x0a000002, config.chain.magic);
  bsattack::Crafter crafter(config.chain);

  bsattack::BmDosConfig bm;
  const std::string payload = flags.Get("payload", "bogus-block");
  if (payload == "ping") bm.payload = bsattack::BmDosConfig::Payload::kPing;
  else if (payload == "unknown") bm.payload = bsattack::BmDosConfig::Payload::kUnknownCommand;
  else if (payload == "invalid-pow") bm.payload = bsattack::BmDosConfig::Payload::kInvalidPowBlock;
  else bm.payload = bsattack::BmDosConfig::Payload::kBogusBlock;
  bsattack::BmDosAttack attack(attacker, {victim.Ip(), 8333}, crafter, bm);
  attack.Start();
  sched.RunUntil(bsim::FromSeconds(flags.GetNum("seconds", 5)));
  attack.Stop();

  const std::string format = flags.Get("format", "prom");
  if (format == "json") {
    // The snapshot itself must stay parseable, so the seed echo goes to
    // stderr rather than into the JSON document.
    std::fprintf(stderr, "# seed %llu\n", static_cast<unsigned long long>(seed));
    std::printf("%s\n", registry.RenderJson().c_str());
  } else {
    std::printf("# seed %llu\n", static_cast<unsigned long long>(seed));
    std::printf("%s", registry.RenderPrometheus().c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Chaos: the deterministic fault-injection sweep (the CLI face of
// tests/chaos_test.cpp). One seed = one fully reproducible run: a hardened
// victim with 4 honest peers and a Sybil attacker under randomized packet
// loss / duplication / reordering / corruption, two link flaps, and one
// honest-peer crash+restart, followed by a heal phase past the ban-expiry
// horizon. The invariants checked per seed:
//   score-ban:  no peer reaches the threshold without the policy banning it
//   honest:     only the attacker's IP is ever misbehavior-scored
//   expiry:     every ban expires (the table is empty after the horizon)
//   recovery:   the victim refills its outbound slots after the weather ends

struct ChaosOutcome {
  std::uint64_t bans = 0;
  std::uint64_t shed_bytes = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t dropped_partition = 0;
  std::uint64_t deliveries = 0;
  bool only_attacker_scored = true;
  int threshold_without_ban = 0;
  bool bans_expired = false;
  bool recovered = false;

  bool Ok() const {
    return only_attacker_scored && threshold_without_ban == 0 && bans >= 1 &&
           bans_expired && recovered;
  }
};

ChaosOutcome RunOneChaosSeed(std::uint64_t seed, double chaos_seconds) {
  constexpr std::uint32_t kVictimIp = 0x0a000001;
  constexpr std::uint32_t kAttackerIp = 0x0a000066;
  constexpr std::uint32_t kHonestBase = 0x0a000100;
  constexpr int kHonest = 4;

  bsim::Scheduler sched;
  bsim::Network net(sched);
  bsim::FaultPlan plan(sched, seed);
  net.SetFaultPlan(&plan);
  bsutil::Rng rng(seed * 7919 + 1);

  NodeConfig config;
  config.target_outbound = kHonest;
  config.ban_duration = 30 * bsim::kSecond;
  config.ping_interval = 2 * bsim::kSecond;
  config.ping_timeout = 10 * bsim::kSecond;
  config.handshake_timeout = 8 * bsim::kSecond;
  config.reconnect_backoff = true;
  config.reconnect_backoff_cap = 8 * bsim::kSecond;

  std::vector<std::unique_ptr<Node>> honest;
  std::vector<std::unique_ptr<Node>> graveyard;
  for (int i = 0; i < kHonest; ++i) {
    NodeConfig pc;
    pc.target_outbound = 0;
    pc.rng_seed = 1000 + i;
    honest.push_back(std::make_unique<Node>(sched, net, kHonestBase + i, pc));
    honest.back()->Start();
  }
  auto victim = std::make_unique<Node>(sched, net, kVictimIp, config);
  for (const auto& peer : honest) victim->AddKnownAddress({peer->Ip(), 8333});

  ChaosOutcome out;
  victim->on_misbehavior = [&](const Peer& peer, Misbehavior,
                               const MisbehaviorOutcome& outcome) {
    if (!outcome.rule_applied) return;
    if (peer.remote.ip != kAttackerIp) out.only_attacker_scored = false;
    if (outcome.total_score >= config.ban_threshold && !outcome.should_ban) {
      ++out.threshold_without_ban;
    }
  };
  victim->Start();

  bsattack::AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);
  bsattack::Crafter crafter(config.chain);

  // Clean boot, then the weather turns.
  sched.RunUntil(5 * bsim::kSecond);

  bsim::FaultSpec spec;
  spec.loss = 0.08 * rng.NextDouble();
  spec.duplicate = 0.06 * rng.NextDouble();
  spec.reorder = 0.10 * rng.NextDouble();
  spec.corrupt = 0.05 * rng.NextDouble();
  plan.SetDefaultFaults(spec);
  for (int flap = 0; flap < 2; ++flap) {
    const bsim::SimTime at =
        5 * bsim::kSecond +
        static_cast<bsim::SimTime>(rng.NextDouble() * (chaos_seconds - 5)) *
            bsim::kSecond;
    const bsim::SimTime down =
        (1 + static_cast<bsim::SimTime>(rng.NextDouble() * 3)) * bsim::kSecond;
    plan.ScheduleLinkFlap(kVictimIp, kHonestBase + rng.Below(kHonest), at, down);
  }
  const std::size_t crash_index = rng.Below(kHonest);
  plan.on_host_crash = [&](std::uint32_t) {
    honest[crash_index]->Stop();
    graveyard.push_back(std::move(honest[crash_index]));
  };
  plan.on_host_restart = [&](std::uint32_t ip) {
    NodeConfig pc;
    pc.target_outbound = 0;
    pc.rng_seed = 1000 + crash_index;
    honest[crash_index] = std::make_unique<Node>(sched, net, ip, pc);
    honest[crash_index]->Start();
  };
  plan.ScheduleCrash(kHonestBase + static_cast<std::uint32_t>(crash_index),
                     20 * bsim::kSecond, 8 * bsim::kSecond);

  // Honest pings twice a second; one segwit-invalid TX (instant threshold)
  // from the attacker's current Sybil identifier every 2 s.
  bool running = true;
  std::uint64_t nonce = 0;
  std::function<void()> honest_tick = [&]() {
    if (!running) return;
    for (const auto& peer : honest) {
      if (peer != nullptr) peer->SendToRemoteIp(kVictimIp, bsproto::PingMsg{++nonce});
    }
    sched.After(500 * bsim::kMillisecond, honest_tick);
  };
  bool attacking = true;
  std::function<void()> attack_tick = [&]() {
    if (!attacking) return;
    bsattack::AttackSession* ready = nullptr;
    bool any_live = false;
    for (bsattack::AttackSession* session : attacker.LiveSessions()) {
      any_live = true;
      if (session->SessionReady()) {
        ready = session;
        break;
      }
    }
    if (ready != nullptr) {
      attacker.Send(*ready, crafter.SegwitInvalidTx());
      ++out.deliveries;
    } else if (!any_live) {
      attacker.OpenSession({kVictimIp, 8333});
    }
    sched.After(2 * bsim::kSecond, attack_tick);
  };
  honest_tick();
  attack_tick();

  const bsim::SimTime chaos_end =
      5 * bsim::kSecond + bsim::FromSeconds(chaos_seconds);
  sched.RunUntil(chaos_end);
  attacking = false;
  plan.SetDefaultFaults(bsim::FaultSpec{});
  sched.RunUntil(chaos_end + config.ban_duration + 15 * bsim::kSecond);
  running = false;

  out.bans = victim->PeersBanned();
  out.shed_bytes = victim->RxBytesShed();
  out.dropped_loss = plan.SegmentsDroppedLoss();
  out.duplicated = plan.SegmentsDuplicated();
  out.delayed = plan.SegmentsDelayed();
  out.corrupted = plan.SegmentsCorrupted();
  out.dropped_partition = plan.SegmentsDroppedPartition();
  out.bans_expired = victim->Bans().Size() == 0;
  out.recovered = victim->OutboundCount() >= static_cast<std::size_t>(kHonest - 1);
  return out;
}

// ---------------------------------------------------------------------------
// Overload: the CLI face of bench_degradation — a quick A/B of honest mining
// rate with and without a reconnecting one-netgroup Sybil flood, under a
// chosen defense ablation. Exit 1 if the attacked/baseline mining ratio
// falls below --min-ratio (the CI smoke gate).

struct OverloadResult {
  double mining_hps = 0.0;
  std::size_t honest_connected = 0;
  std::uint64_t evictions = 0;
  std::uint64_t shed_frames = 0;
  std::uint64_t rejects = 0;
};

OverloadResult RunOverloadOnce(bool attack, bool eviction, bool ratelimit,
                               bool priority, int procs, int windows,
                               std::uint64_t seed) {
  constexpr std::uint32_t kVictim = 0x0a000001;
  constexpr int kHonest = 6;
  bsim::Scheduler sched;
  bsim::Network net(sched);
  bsim::CpuModelConfig cpu_config;
  // The paper's net_capacity_fraction (0.73) caps the flood's CPU damage;
  // raise it so defenses-off vs defenses-on actually separates (DESIGN.md).
  cpu_config.net_capacity_fraction = 0.98;
  bsim::CpuModel cpu(cpu_config);

  NodeConfig config;
  config.rng_seed = seed;
  config.max_inbound = 12;
  config.target_outbound = 0;
  config.ping_interval = 1 * bsim::kSecond;
  config.enable_eviction = eviction;
  config.enable_rate_limit = ratelimit;
  if (ratelimit) config.rx_cycles_per_sec = 8.0e7;
  config.enable_priority = priority;
  if (priority) config.governor_cycles_per_sec = 1.0e9;
  Node victim(sched, net, kVictim, config, &cpu);
  victim.Start();

  std::vector<std::unique_ptr<Node>> honest;
  for (int i = 0; i < kHonest; ++i) {
    NodeConfig hc;
    hc.target_outbound = 1;
    hc.rng_seed = seed + 1958 + static_cast<std::uint64_t>(i);
    auto node = std::make_unique<Node>(
        sched, net, 0x0a100001 + (static_cast<std::uint32_t>(i) << 16), hc);
    node->AddKnownAddress({kVictim, config.listen_port});
    node->Start();
    honest.push_back(std::move(node));
  }
  for (int i = 0; i < kHonest; ++i) {
    Node* peer = honest[static_cast<std::size_t>(i)].get();
    auto mine = std::make_shared<std::function<void()>>();
    *mine = [peer, &sched, mine]() {
      peer->MineAndRelay();
      sched.After(3 * bsim::kSecond, [mine]() { (*mine)(); });
    };
    sched.After(bsim::kSecond + i * 400 * bsim::kMillisecond,
                [mine]() { (*mine)(); });
  }

  bsattack::Crafter crafter(config.chain);
  const bsutil::ByteVec bogus =
      crafter.BogusBlockFrame(config.chain.magic, 60'000);
  std::vector<std::unique_ptr<bsattack::AttackerNode>> sybils;
  std::vector<bsattack::AttackSession*> sessions;
  bool flooding = false;
  std::function<void()> flood_tick = [&]() {
    if (!flooding) return;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      bsattack::AttackerNode& owner = *sybils[i / 2];
      if (sessions[i] == nullptr || sessions[i]->closed) {
        sessions[i] = owner.OpenSession({kVictim, config.listen_port});
      } else if (sessions[i]->tcp_established) {
        owner.SendRawFrame(*sessions[i], bogus);
      }
    }
    sched.After(bsim::kMillisecond, flood_tick);
  };
  if (attack) {
    for (int i = 0; i < procs; ++i) {
      sybils.push_back(std::make_unique<bsattack::AttackerNode>(
          sched, net, 0xc0a80001 + static_cast<std::uint32_t>(i),
          config.chain.magic));
      for (int s = 0; s < 2; ++s) {
        sessions.push_back(sybils.back()->OpenSession({kVictim, config.listen_port}));
      }
    }
    sched.After(bsim::kSecond, [&]() {
      flooding = true;
      flood_tick();
    });
  }

  sched.RunUntil(6 * bsim::kSecond);
  double hps_sum = 0.0;
  for (int i = 0; i < windows; ++i) {
    cpu.SetActiveConnections(static_cast<int>(victim.Peers().size()));
    cpu.BeginWindow(sched.Now());
    sched.RunUntil(sched.Now() + bsim::kSecond);
    hps_sum += cpu.EndWindow(sched.Now()).mining_rate_hps;
  }
  flooding = false;

  OverloadResult out;
  out.mining_hps = hps_sum / windows;
  for (const Peer* p : victim.Peers()) {
    if ((p->remote.ip >> 16) != 0xc0a8u && p->HandshakeComplete()) {
      ++out.honest_connected;
    }
  }
  out.evictions = victim.PeersEvicted();
  out.shed_frames = victim.RateLimitedFrames();
  out.rejects = victim.InboundFullRejects();
  return out;
}

int RunOverload(const Flags& flags) {
  const std::string defenses = flags.Get("defenses", "all");
  const bool eviction = defenses == "eviction" || defenses == "all";
  const bool ratelimit = defenses == "ratelimit" || defenses == "all";
  const bool priority = defenses == "priority" || defenses == "all";
  const int procs = static_cast<int>(flags.GetNum("procs", 4));
  const int windows = static_cast<int>(flags.GetNum("windows", 15));
  const double min_ratio = flags.GetNum("min-ratio", 0.0);
  const bool json = flags.Get("format", "table") == "json";
  const std::uint64_t seed = SeedOf(flags);

  const OverloadResult base =
      RunOverloadOnce(false, eviction, ratelimit, priority, procs, windows, seed);
  const OverloadResult hit =
      RunOverloadOnce(true, eviction, ratelimit, priority, procs, windows, seed);
  const double ratio =
      base.mining_hps > 0.0 ? hit.mining_hps / base.mining_hps : 0.0;

  if (json) {
    std::printf(
        "{\"defenses\":\"%s\",\"procs\":%d,\"seed\":%llu,\"baseline_hps\":%.1f,"
        "\"attacked_hps\":%.1f,\"mining_ratio\":%.4f,"
        "\"honest_connected\":%zu,\"evictions\":%llu,\"shed_frames\":%llu,"
        "\"inbound_rejects\":%llu,\"min_ratio\":%.3f,\"pass\":%s}\n",
        defenses.c_str(), procs, static_cast<unsigned long long>(seed),
        base.mining_hps, hit.mining_hps, ratio,
        hit.honest_connected, static_cast<unsigned long long>(hit.evictions),
        static_cast<unsigned long long>(hit.shed_frames),
        static_cast<unsigned long long>(hit.rejects), min_ratio,
        ratio >= min_ratio ? "true" : "false");
  } else {
    std::printf("overload: defenses=%s, %d attacker procs x 2 Sybil conns, "
                "60 kB bogus-BLOCK flood, seed %llu\n\n",
                defenses.c_str(), procs, static_cast<unsigned long long>(seed));
    std::printf("  baseline mining:  %12.1f h/s\n", base.mining_hps);
    std::printf("  attacked mining:  %12.1f h/s  (%.2fx of baseline)\n",
                hit.mining_hps, ratio);
    std::printf("  honest connected: %zu/6\n", hit.honest_connected);
    std::printf("  evictions=%llu shed-frames=%llu inbound-rejects=%llu\n",
                static_cast<unsigned long long>(hit.evictions),
                static_cast<unsigned long long>(hit.shed_frames),
                static_cast<unsigned long long>(hit.rejects));
    if (min_ratio > 0.0) {
      std::printf("  min-ratio gate %.2f: %s\n", min_ratio,
                  ratio >= min_ratio ? "PASS" : "FAIL");
    }
  }
  return ratio >= min_ratio ? 0 : 1;
}

// ---------------------------------------------------------------------------
// eclipse: sustained Sybil-occupation + ADDR-poisoning + Defamation eclipse
// against a stock vs. hardened victim (the bench_eclipse_resilience world in
// CLI form). Exit 0 iff the victim's final control fraction is below
// --heal-fraction — so `--defenses none` is expected to FAIL the gate and
// `--defenses all` to pass it (check.sh uses exactly that pair).

struct EclipseOutcome {
  double peak = 0.0;
  double final_fraction = 0.0;
  double heal_seconds = -1.0;  // from attack start; -1 = never healed
  std::size_t honest_inbound = 0;
  int attacker_outbound = 0;
  std::uint64_t feeler_promotions = 0;
  std::uint64_t stale_tip_events = 0;
  std::uint64_t evictions = 0;
  std::size_t tried = 0;
};

EclipseOutcome RunEclipseOnce(bool hardened, double seconds, double heal_fraction,
                              std::uint64_t seed) {
  constexpr std::uint32_t kVictim = 0x0a000001;
  constexpr int kHonest = 12;
  constexpr int kInfra = 8;
  const bsim::SimTime run_end = static_cast<bsim::SimTime>(seconds) * bsim::kSecond;
  const bsim::SimTime attack_start = 5 * bsim::kSecond;
  const bsim::SimTime attack_stop = run_end - 30 * bsim::kSecond;
  const bsim::SimTime dial_in = run_end - 40 * bsim::kSecond;

  bsim::Scheduler sched;
  bsim::Network net(sched);

  NodeConfig config;
  config.rng_seed = seed;
  config.max_inbound = 16;
  config.target_outbound = 6;
  config.ban_duration = 60 * bsim::kSecond;
  if (hardened) {
    config.enable_eviction = true;
    config.inactivity_timeout = 30 * bsim::kSecond;
    config.enable_addrman_bucketing = true;
    config.enable_anchors = true;
    config.enable_feelers = true;
    config.feeler_interval = 5 * bsim::kSecond;
    config.feeler_timeout = 3 * bsim::kSecond;
    config.enable_outbound_diversity = true;
    config.enable_stale_tip_recovery = true;
    config.stale_tip_timeout = 10 * bsim::kSecond;
  }

  // Honest world: ring mesh in distinct /16s, one miner, victim's address
  // learned mid-run (the dial-ins the eviction defense admits).
  bsattack::Crafter crafter(config.chain);
  std::vector<std::unique_ptr<Node>> honest;
  for (int i = 0; i < kHonest; ++i) {
    NodeConfig hc;
    hc.chain = config.chain;
    hc.target_outbound = 3;
    hc.rng_seed = seed + 958 + static_cast<std::uint64_t>(i);
    auto node = std::make_unique<Node>(
        sched, net, 0x0a000001 + (static_cast<std::uint32_t>(16 + i) << 16), hc);
    node->AddKnownAddress(
        {0x0a000001 + (static_cast<std::uint32_t>(16 + (i + 1) % kHonest) << 16),
         hc.listen_port});
    node->AddKnownAddress(
        {0x0a000001 + (static_cast<std::uint32_t>(16 + (i + 2) % kHonest) << 16),
         hc.listen_port});
    honest.push_back(std::move(node));
  }
  for (int i = 0; i < kHonest; ++i) {
    const int idx = i;
    sched.After(idx * 50 * bsim::kMillisecond,
                [&honest, idx]() { honest[static_cast<std::size_t>(idx)]->Start(); });
    sched.After(dial_in + idx * 1500 * bsim::kMillisecond, [&honest, idx]() {
      honest[static_cast<std::size_t>(idx)]->AddKnownAddress({kVictim, 8333});
    });
    auto send_tx = std::make_shared<std::function<void()>>();
    *send_tx = [&honest, &sched, &crafter, idx, send_tx]() {
      honest[static_cast<std::size_t>(idx)]->SendToRemoteIp(kVictim,
                                                           crafter.ValidTx());
      sched.After(2 * bsim::kSecond, [send_tx]() { (*send_tx)(); });
    };
    sched.After(dial_in + idx * 1500 * bsim::kMillisecond + 200 * bsim::kMillisecond,
                [send_tx]() { (*send_tx)(); });
  }
  auto mine = std::make_shared<std::function<void()>>();
  *mine = [&honest, &sched, mine]() {
    honest[0]->MineAndRelay();
    sched.After(3 * bsim::kSecond, [mine]() { (*mine)(); });
  };
  sched.After(2 * bsim::kSecond, [mine]() { (*mine)(); });

  std::vector<std::unique_ptr<Node>> infra;
  std::vector<Node*> infra_ptrs;
  std::set<std::uint32_t> attacker_ips = {0xc0a80001};
  for (int i = 0; i < kInfra; ++i) {
    NodeConfig ic;
    ic.chain = config.chain;
    ic.target_outbound = 0;
    ic.rng_seed = seed + 1958 + static_cast<std::uint64_t>(i);
    auto node = std::make_unique<Node>(sched, net,
                                       0xc0a80002 + static_cast<std::uint32_t>(i), ic);
    node->Start();
    infra_ptrs.push_back(node.get());
    attacker_ips.insert(node->Ip());
    infra.push_back(std::move(node));
  }

  Node victim(sched, net, kVictim, config);
  for (int i = 0; i < kHonest; ++i) {
    victim.AddKnownAddress(
        {0x0a000001 + (static_cast<std::uint32_t>(16 + i) << 16), 8333});
  }
  victim.Start();

  bsattack::AttackerNode attacker(sched, net, 0xc0a80001, config.chain.magic);
  bsattack::EclipseConfig ec;
  ec.inbound_sessions = 16;
  ec.addr_gossip_rounds = 4;
  ec.addrs_per_message = 400;
  ec.defame_interval = 2500 * bsim::kMillisecond;
  ec.repoison_interval = 2 * bsim::kSecond;
  ec.reoccupy_inbound = true;
  bsattack::EclipseAttack attack(attacker, victim, infra_ptrs, ec);
  sched.After(attack_start, [&attack]() { attack.Start(); });
  sched.After(attack_stop, [&attack]() { attack.Stop(); });

  std::vector<double> series;
  for (bsim::SimTime t = bsim::kSecond; t <= run_end; t += bsim::kSecond) {
    sched.RunUntil(t);
    std::size_t total = 0;
    std::size_t controlled = 0;
    for (const Peer* peer : victim.Peers()) {
      if (!peer->HandshakeComplete()) continue;
      ++total;
      controlled += attacker_ips.contains(peer->remote.ip) ? 1 : 0;
    }
    series.push_back(total == 0 ? 0.0
                                : static_cast<double>(controlled) /
                                      static_cast<double>(total));
  }
  attack.Stop();

  EclipseOutcome out;
  for (const double f : series) out.peak = std::max(out.peak, f);
  double tail = 0.0;
  for (std::size_t i = series.size() - 5; i < series.size(); ++i) tail += series[i];
  out.final_fraction = tail / 5.0;
  const double attack_start_s = bsim::ToSeconds(attack_start);
  int last_bad = -1;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double t = static_cast<double>(i + 1);
    if (t >= attack_start_s && series[i] >= heal_fraction) {
      last_bad = static_cast<int>(i);
    }
  }
  if (last_bad == -1) {
    out.heal_seconds = 0.0;
  } else if (last_bad + 1 != static_cast<int>(series.size())) {
    out.heal_seconds = static_cast<double>(last_bad + 2) - attack_start_s;
  }
  for (const Peer* peer : victim.Peers()) {
    if (!peer->HandshakeComplete()) continue;
    if (peer->inbound && !attacker_ips.contains(peer->remote.ip)) {
      ++out.honest_inbound;
    }
    if (!peer->inbound && attacker_ips.contains(peer->remote.ip)) {
      ++out.attacker_outbound;
    }
  }
  out.feeler_promotions = victim.FeelerPromotions();
  out.stale_tip_events = victim.StaleTipEvents();
  out.evictions = victim.PeersEvicted();
  out.tried = victim.Addrs().TriedCount();
  return out;
}

int RunEclipse(const Flags& flags) {
  const std::string defenses = flags.Get("defenses", "all");
  const bool hardened = defenses != "none";
  const double seconds = flags.GetNum("seconds", 90);
  const double heal_fraction = flags.GetNum("heal-fraction", 0.5);
  const bool json = flags.Get("format", "table") == "json";
  const std::uint64_t seed = SeedOf(flags);
  if (seconds < 60) {
    std::fprintf(stderr, "eclipse: --seconds must be >= 60\n");
    return 2;
  }

  const EclipseOutcome out = RunEclipseOnce(hardened, seconds, heal_fraction, seed);
  const bool healed = out.final_fraction < heal_fraction;
  if (json) {
    std::printf(
        "{\"defenses\":\"%s\",\"seconds\":%.0f,\"seed\":%llu,\"peak_fraction\":%.4f,"
        "\"final_fraction\":%.4f,\"heal_seconds\":%.1f,"
        "\"honest_inbound\":%zu,\"attacker_outbound\":%d,"
        "\"feeler_promotions\":%llu,\"stale_tip_events\":%llu,"
        "\"evictions\":%llu,\"tried\":%zu,\"heal_fraction\":%.3f,"
        "\"healed\":%s}\n",
        hardened ? "all" : "none", seconds, static_cast<unsigned long long>(seed),
        out.peak, out.final_fraction,
        out.heal_seconds, out.honest_inbound, out.attacker_outbound,
        static_cast<unsigned long long>(out.feeler_promotions),
        static_cast<unsigned long long>(out.stale_tip_events),
        static_cast<unsigned long long>(out.evictions), out.tried, heal_fraction,
        healed ? "true" : "false");
  } else {
    std::printf("eclipse: defenses=%s, %.0f s run, seed %llu, sustained Sybil\n"
                "occupation + ADDR poisoning + Defamation of honest outbound peers\n\n",
                hardened ? "all" : "none", seconds,
                static_cast<unsigned long long>(seed));
    std::printf("  control fraction: peak %.2f, final %.2f\n", out.peak,
                out.final_fraction);
    std::printf("  time-to-heal:     %s\n",
                out.heal_seconds < 0
                    ? "never"
                    : (std::to_string(static_cast<int>(out.heal_seconds)) + " s")
                          .c_str());
    std::printf("  honest inbound=%zu attacker outbound=%d evictions=%llu\n",
                out.honest_inbound, out.attacker_outbound,
                static_cast<unsigned long long>(out.evictions));
    std::printf("  feeler promotions=%llu stale-tip events=%llu tried=%zu\n",
                static_cast<unsigned long long>(out.feeler_promotions),
                static_cast<unsigned long long>(out.stale_tip_events), out.tried);
    std::printf("  heal gate (final < %.2f): %s\n", heal_fraction,
                healed ? "PASS" : "FAIL");
  }
  return healed ? 0 : 1;
}

// ---------------------------------------------------------------------------
// partition: the bench_partition world in CLI form — a Hijacking-Bitcoin
// style asymmetric routing detour (return traffic from the mining side takes
// a 45 s detour, forward traffic flows clean) against a stock or hardened
// victim whose outbound slots are full of same-side peers. A listen-only
// witness with healthy routes answers tip-probes with the true height; with
// --defenses all the fused suspicion score arms, the recovery ladder dials
// across the cut once the victim's /16 heals, and partition-aware damping
// keeps the reconverged victim from being banned by its stale buddies.
// Exit 0 iff the victim ends within 1 block of the miner — so
// `--defenses none` is expected to FAIL the gate and `--defenses all` to
// pass it (check.sh uses exactly that pair).

struct PartitionOutcome {
  int final_gap = 0;
  double reconverge_seconds = -1.0;  // from the heal; -1 = never
  std::uint64_t suspect_windows = 0;
  std::uint64_t recovery_actions = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t probe_replies = 0;
  std::uint64_t deferred_penalties = 0;
  std::size_t honest_bans = 0;  // every node in this world is honest
  int max_honest_score = 0;
  int victim_height = 0;
  int miner_height = 0;
};

PartitionOutcome RunPartitionOnce(bool hardened, double seconds,
                                  std::uint64_t seed) {
  constexpr std::uint32_t kVictimIp = 0x0a100001;   // 10.16.0.1
  constexpr std::uint32_t kWitnessIp = 0x0a280001;  // 10.40.0.1 — neither side
  constexpr std::uint32_t kMinerIp = 0x0a200001;    // 10.32.0.1
  constexpr int kBuddies = 4;
  constexpr int kRelays = 3;
  const auto buddy_ip = [](int i) {
    return 0x0a000001 + (static_cast<std::uint32_t>(17 + i) << 16);
  };
  const auto relay_ip = [](int i) {
    return 0x0a000001 + (static_cast<std::uint32_t>(33 + i) << 16);
  };
  const int run_seconds = static_cast<int>(seconds);
  const bsim::SimTime partition_at = 10 * bsim::kSecond;
  const bsim::SimTime heal_at = (run_seconds / 2) * bsim::kSecond;

  bsim::Scheduler sched;
  bsim::Network net(sched);
  bsim::FaultPlan plan(sched, seed);
  net.SetFaultPlan(&plan);

  NodeConfig config;
  config.rng_seed = seed;
  config.target_outbound = 4;
  if (hardened) {
    config.enable_partition_resilience = true;  // partition_damping defaults on
    config.enable_anchors = true;
    config.enable_stale_tip_recovery = true;
    config.stale_tip_timeout = 15 * bsim::kSecond;
  }

  std::vector<std::unique_ptr<Node>> world;
  const auto add_node = [&](std::uint32_t ip, NodeConfig nc,
                            std::vector<std::uint32_t> known,
                            bsim::SimTime start_at) -> Node* {
    auto node = std::make_unique<Node>(sched, net, ip, nc);
    for (const std::uint32_t k : known) node->AddKnownAddress({k, 8333});
    Node* raw = node.get();
    sched.After(start_at, [raw]() { raw->Start(); });
    world.push_back(std::move(node));
    return raw;
  };

  // Mining side: one miner + a small relay mesh, each in its own /16.
  NodeConfig miner_cfg;
  miner_cfg.chain = config.chain;
  miner_cfg.target_outbound = kRelays;
  miner_cfg.rng_seed = seed + 1958;
  Node* miner = add_node(kMinerIp, miner_cfg,
                         {relay_ip(0), relay_ip(1), relay_ip(2)}, 0);
  for (int i = 0; i < kRelays; ++i) {
    NodeConfig rc;
    rc.chain = config.chain;
    rc.target_outbound = 2;
    rc.rng_seed = seed + 2058 + static_cast<std::uint64_t>(i);
    add_node(relay_ip(i), rc, {kMinerIp, relay_ip((i + 1) % kRelays)},
             50 * bsim::kMillisecond * (i + 1));
  }

  // Victim-side buddies: each bridges one detoured relay link into the
  // victim's side of the cut; hardened runs switch their monitor on too.
  std::vector<Node*> buddies;
  for (int i = 0; i < kBuddies; ++i) {
    NodeConfig bc;
    bc.chain = config.chain;
    bc.target_outbound = 2;
    bc.rng_seed = seed + 958 + static_cast<std::uint64_t>(i);
    bc.enable_partition_resilience = hardened;
    buddies.push_back(add_node(buddy_ip(i), bc, {relay_ip(i % kRelays), kVictimIp},
                               300 * bsim::kMillisecond + i * 50 * bsim::kMillisecond));
  }

  // A listen-only witness in an untouched /16: relay=false means the only
  // thing it leaks is tip-probe answers — the gossip channel the monitor
  // feeds on.
  NodeConfig wc;
  wc.chain = config.chain;
  wc.target_outbound = 2;
  wc.rng_seed = seed + 2958;
  wc.relay = false;
  wc.enable_partition_resilience = true;
  add_node(kWitnessIp, wc, {kVictimIp, kMinerIp}, 600 * bsim::kMillisecond);

  // The victim boots knowing only its own side; the wider net's addresses
  // arrive after its slots are already full.
  std::unique_ptr<Node> victim;
  sched.After(bsim::kSecond, [&]() {
    victim = std::make_unique<Node>(sched, net, kVictimIp, config);
    for (int i = 0; i < kBuddies; ++i) {
      victim->AddKnownAddress({buddy_ip(i), 8333});
    }
    victim->Start();
  });
  sched.After(5 * bsim::kSecond, [&]() {
    victim->AddKnownAddress({kMinerIp, 8333});
    for (int i = 0; i < kRelays; ++i) victim->AddKnownAddress({relay_ip(i), 8333});
  });

  auto mine = std::make_shared<std::function<void()>>();
  *mine = [&sched, miner, mine]() {
    miner->MineAndRelay();
    sched.After(3 * bsim::kSecond, [mine]() { (*mine)(); });
  };
  sched.After(2 * bsim::kSecond, [mine]() { (*mine)(); });

  // The one-way detour over every mining-side -> victim-side segment, then a
  // partial heal of the victim's own /16 at half time.
  std::vector<std::uint32_t> side_a = {bsim::FaultPlan::GroupOf(kVictimIp)};
  for (int i = 0; i < kBuddies; ++i) {
    side_a.push_back(bsim::FaultPlan::GroupOf(buddy_ip(i)));
  }
  std::vector<std::uint32_t> side_b = {bsim::FaultPlan::GroupOf(kMinerIp)};
  for (int i = 0; i < kRelays; ++i) {
    side_b.push_back(bsim::FaultPlan::GroupOf(relay_ip(i)));
  }
  plan.ScheduleDelayPartition(side_a, side_b, /*ab=*/0, /*ba=*/45 * bsim::kSecond,
                              partition_at);
  plan.SchedulePartialHeal({bsim::FaultPlan::GroupOf(kVictimIp)}, side_b, heal_at);

  std::vector<int> gap_series;
  for (int s = 1; s <= run_seconds; ++s) {
    sched.RunUntil(s * bsim::kSecond);
    const int victim_h = victim == nullptr ? 0 : victim->Chain().TipHeight();
    gap_series.push_back(miner->Chain().TipHeight() - victim_h);
  }

  PartitionOutcome out;
  out.final_gap = gap_series.back();
  const int heal_s = static_cast<int>(heal_at / bsim::kSecond);
  int last_bad = -1;
  for (int i = heal_s; i < static_cast<int>(gap_series.size()); ++i) {
    if (gap_series[static_cast<std::size_t>(i)] > 1) last_bad = i;
  }
  if (last_bad == -1) {
    out.reconverge_seconds = 0.0;
  } else if (last_bad + 1 != static_cast<int>(gap_series.size())) {
    out.reconverge_seconds = static_cast<double>(last_bad + 2 - heal_s);
  }

  out.probes_sent = victim->TipProbesSent();
  out.probe_replies = victim->TipProbeReplies();
  out.suspect_windows = victim->PartitionSuspectWindows();
  out.recovery_actions = victim->PartitionRecoveryActions();
  out.deferred_penalties = victim->DeferredPenalties();
  out.victim_height = victim->Chain().TipHeight();
  out.miner_height = miner->Chain().TipHeight();
  const auto census = [&](Node& node) {
    out.honest_bans += node.Bans().Size();
    for (const Peer* peer : node.Peers()) {
      out.max_honest_score =
          std::max(out.max_honest_score, node.Tracker().Score(peer->id));
    }
  };
  for (const auto& node : world) census(*node);
  census(*victim);
  for (Node* buddy : buddies) out.deferred_penalties += buddy->DeferredPenalties();
  return out;
}

int RunPartition(const Flags& flags) {
  const std::string defenses = flags.Get("defenses", "all");
  const bool hardened = defenses != "none";
  const double seconds = flags.GetNum("seconds", 90);
  const bool json = flags.Get("format", "table") == "json";
  const std::uint64_t seed = SeedOf(flags);
  if (seconds < 60) {
    std::fprintf(stderr, "partition: --seconds must be >= 60\n");
    return 2;
  }

  const PartitionOutcome out = RunPartitionOnce(hardened, seconds, seed);
  const bool reconverged = out.final_gap <= 1;
  if (json) {
    std::printf(
        "{\"defenses\":\"%s\",\"seconds\":%.0f,\"seed\":%llu,\"final_gap\":%d,"
        "\"reconverge_seconds\":%.1f,\"suspect_windows\":%llu,"
        "\"recovery_actions\":%llu,\"probes_sent\":%llu,\"probe_replies\":%llu,"
        "\"deferred_penalties\":%llu,\"honest_bans\":%zu,"
        "\"max_honest_score\":%d,\"victim_height\":%d,\"miner_height\":%d,"
        "\"reconverged\":%s}\n",
        hardened ? "all" : "none", seconds, static_cast<unsigned long long>(seed),
        out.final_gap, out.reconverge_seconds,
        static_cast<unsigned long long>(out.suspect_windows),
        static_cast<unsigned long long>(out.recovery_actions),
        static_cast<unsigned long long>(out.probes_sent),
        static_cast<unsigned long long>(out.probe_replies),
        static_cast<unsigned long long>(out.deferred_penalties), out.honest_bans,
        out.max_honest_score, out.victim_height, out.miner_height,
        reconverged ? "true" : "false");
  } else {
    std::printf("partition: defenses=%s, %.0f s run, seed %llu, one-way 45 s\n"
                "routing detour from the mining side, victim /16 healed at "
                "half time\n\n",
                hardened ? "all" : "none", seconds,
                static_cast<unsigned long long>(seed));
    std::printf("  tip gap:    final %d (victim %d vs miner %d), reconverge %s\n",
                out.final_gap, out.victim_height, out.miner_height,
                out.reconverge_seconds < 0
                    ? "never"
                    : (std::to_string(static_cast<int>(out.reconverge_seconds)) +
                       " s after the heal")
                          .c_str());
    std::printf("  detection:  suspect windows=%llu recovery actions=%llu\n",
                static_cast<unsigned long long>(out.suspect_windows),
                static_cast<unsigned long long>(out.recovery_actions));
    std::printf("  tip probes: sent=%llu answered=%llu deferred penalties=%llu\n",
                static_cast<unsigned long long>(out.probes_sent),
                static_cast<unsigned long long>(out.probe_replies),
                static_cast<unsigned long long>(out.deferred_penalties));
    std::printf("  honest bans=%zu max honest score=%d\n", out.honest_bans,
                out.max_honest_score);
    std::printf("  reconverge gate (final gap <= 1): %s\n",
                reconverged ? "PASS" : "FAIL");
  }
  return reconverged ? 0 : 1;
}

int RunChaos(const Flags& flags) {
  const int seeds = static_cast<int>(flags.GetNum("seeds", 20));
  const std::uint64_t base = static_cast<std::uint64_t>(flags.GetNum("seed-base", 1));
  const double seconds = flags.GetNum("seconds", 60);

  std::printf("chaos sweep: %d seeds x %.0f s of randomized faults "
              "(loss/dup/reorder/corrupt + 2 link flaps + 1 crash/restart)\n\n",
              seeds, seconds);
  std::printf("%6s | %6s %6s %6s %6s %6s | %4s %9s | %s\n", "seed", "loss", "dup",
              "reord", "corr", "part", "bans", "shed B", "invariants");
  int failures = 0;
  for (int k = 0; k < seeds; ++k) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(k);
    const ChaosOutcome out = RunOneChaosSeed(seed, seconds);
    std::string verdict;
    if (out.Ok()) {
      verdict = "OK";
    } else {
      if (!out.only_attacker_scored) verdict += " HONEST-SCORED";
      if (out.threshold_without_ban != 0) verdict += " THRESHOLD-NO-BAN";
      if (out.bans < 1) verdict += " NO-BAN-LANDED";
      if (!out.bans_expired) verdict += " BAN-STUCK";
      if (!out.recovered) verdict += " NOT-RECOVERED";
      ++failures;
    }
    std::printf("%6llu | %6llu %6llu %6llu %6llu %6llu | %4llu %9llu |%s%s\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(out.dropped_loss),
                static_cast<unsigned long long>(out.duplicated),
                static_cast<unsigned long long>(out.delayed),
                static_cast<unsigned long long>(out.corrupted),
                static_cast<unsigned long long>(out.dropped_partition),
                static_cast<unsigned long long>(out.bans),
                static_cast<unsigned long long>(out.shed_bytes),
                out.Ok() ? " " : "", verdict.c_str());
  }
  std::printf("\n%d/%d seeds held every invariant\n", seeds - failures, seeds);
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// fsck: offline validation/repair of a StateStore directory (src/store/fsck).
// --demo builds a small store in --dir first: "clean" leaves it intact,
// "torn" appends a torn half-frame to the journal so the repair path runs.
// The cli_fsck_roundtrip ctest and the check.sh store-recovery stage gate on
// the exit code: 0 iff the store is healthy after any requested repair.

void PrintFsckTable(const bsstore::FsckReport& report) {
  std::printf("fsck: store_found=%s healthy=%s repaired=%s active_seq=%llu\n",
              report.store_found ? "yes" : "no", report.healthy ? "yes" : "NO",
              report.repaired ? "yes" : "no",
              static_cast<unsigned long long>(report.active_seq));
  std::printf("  active records: %zu  truncated frames: %zu (%zu B)  "
              "corrupt snapshots: %zu  orphan tmp: %zu  stale: %zu\n",
              report.active_records, report.truncated_frames,
              report.truncated_bytes, report.corrupt_snapshots,
              report.orphan_tmp_files, report.stale_files);
  for (const bsstore::FsckFileReport& f : report.files) {
    std::printf("  %-20s %-8s seq=%-4llu header=%s clean=%s records=%zu "
                "committed=%zu dropped=%zu garbage=%zuB%s%s%s\n",
                f.name.c_str(),
                f.orphan_tmp ? "tmp"
                             : (f.kind == bsstore::FileKind::kSnapshot ? "snapshot"
                                                                      : "journal"),
                static_cast<unsigned long long>(f.seq), f.header_ok ? "ok" : "BAD",
                f.clean ? "yes" : "NO", f.records, f.committed, f.dropped_frames,
                f.garbage_bytes, f.stale ? " STALE" : "",
                f.orphan_tmp ? " ORPHAN" : "", f.repaired ? " [repaired]" : "");
  }
}

/// Build a small real store under `dir` (a few committed score records),
/// then for "torn" append half a frame to the journal — the torn tail a
/// crash mid-append leaves behind.
bool BuildFsckDemo(bsstore::StoreFs& fs, const std::string& dir, bool torn) {
  std::uint64_t seq = 0;
  {
    bsstore::StateStore store(fs, dir);
    store.SetSnapshotSource([](const bsstore::StateStore::SnapshotSink&) {});
    if (!store.Open([](std::uint8_t, bsutil::ByteSpan) {})) return false;
    for (std::uint64_t i = 0; i < 8; ++i) {
      bsutil::Writer w;
      w.WriteU64(i);
      w.WriteI64(static_cast<std::int64_t>(10 * i));
      w.WriteI64(0);
      if (!store.AppendCommit(7, w.Data())) return false;
    }
    seq = store.ActiveSeq();
  }
  if (!torn) return true;
  const std::string wal =
      bsstore::JoinPath(dir, bsstore::StateStore::JournalName(seq));
  const int fd = fs.OpenWrite(wal, /*truncate=*/false);
  if (fd < 0) return false;
  // Length prefix promising 64 payload bytes, then only a few: a torn frame.
  bsutil::Writer w;
  w.WriteU32(64);
  w.WriteU8(7);
  w.WriteU32(0xdeadbeef);
  w.WriteU32(0x1234);
  const bool ok = fs.Write(fd, w.Data());
  fs.Close(fd);
  return ok;
}

int RunStoreFsck(const Flags& flags) {
  const std::string dir = flags.Get("dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "fsck: --dir is required\n");
    return 2;
  }
  const bool repair = flags.Get("repair", "no") == "yes";
  const bool json = flags.Get("format", "table") == "json";
  const std::string demo = flags.Get("demo", "");
  bsstore::StoreFs& fs = bsstore::RealFs::Instance();

  if (!demo.empty()) {
    if (demo != "clean" && demo != "torn") {
      std::fprintf(stderr, "fsck: --demo must be clean or torn\n");
      return 2;
    }
    if (!BuildFsckDemo(fs, dir, demo == "torn")) {
      std::fprintf(stderr, "fsck: demo store construction failed in %s\n",
                   dir.c_str());
      return 2;
    }
  }

  const bsstore::FsckReport report = bsstore::RunFsck(fs, dir, repair);
  if (json) {
    std::printf("%s\n", report.ToJson().c_str());
  } else {
    PrintFsckTable(report);
  }
  if (!report.store_found) return 1;
  return report.healthy || report.repaired ? 0 : 1;
}

// ---------------------------------------------------------------------------
// timeline: forensic reconstruction of a ban's causal chain. Runs a seeded
// attack scenario with one shared SpanTracer across every node, then prints
// the merged span + event timeline and walks the last kBan span's parent
// chain back to its root. Exit 0 iff the chain is complete: it reaches a
// root kSend/kInject span and crosses at least two distinct nodes (the
// acceptance test for cross-node causality).

std::string IpToString(std::uint32_t ip) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

std::uint32_t ParseIp(const std::string& s) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u", &a, &b, &c, &d) != 4) return 0;
  return (a << 24) | (b << 16) | (c << 8) | d;
}

std::string SpanLine(const bsobs::SpanRecord& rec) {
  char buf[256];
  std::string detail;
  switch (rec.kind) {
    case bsobs::SpanKind::kSend:
    case bsobs::SpanKind::kInject:
      detail = (rec.msg_type >= 0
                    ? std::string(bsproto::CommandName(
                          static_cast<bsproto::MsgType>(rec.msg_type)))
                    : std::string("?")) +
               " " + std::to_string(rec.a) + " B";
      if (rec.kind == bsobs::SpanKind::kInject) {
        detail += " spoofing " + IpToString(static_cast<std::uint32_t>(rec.b));
      }
      break;
    case bsobs::SpanKind::kReceive:
      detail = (rec.msg_type >= 0
                    ? std::string(bsproto::CommandName(
                          static_cast<bsproto::MsgType>(rec.msg_type)))
                    : std::string("?")) +
               " " + std::to_string(rec.b) + " B";
      break;
    case bsobs::SpanKind::kDrop:
      detail = "decode status " + std::to_string(rec.a) + ", " +
               std::to_string(rec.b) + " B";
      break;
    case bsobs::SpanKind::kShed:
      detail = std::to_string(rec.a) + " B shed";
      break;
    case bsobs::SpanKind::kMisbehavior:
      detail = "+" + std::to_string(rec.a) + " -> score " + std::to_string(rec.b);
      break;
    case bsobs::SpanKind::kBan:
      detail = "banned " + IpToString(static_cast<std::uint32_t>(rec.a)) +
               " at score " + std::to_string(rec.b);
      break;
    case bsobs::SpanKind::kDetect:
      detail = "anomalous=" + std::to_string(rec.a);
      break;
  }
  std::string flags;
  if ((rec.flags & bsobs::kFlagOrphan) != 0) flags += " ORPHAN";
  if ((rec.flags & bsobs::kFlagResync) != 0) flags += " RESYNC";
  if ((rec.flags & bsobs::kFlagDiscouraged) != 0) flags += " DISCOURAGED";
  std::snprintf(buf, sizeof(buf),
                "%12.6f  %-15s %-12s trace=%llu span=%llu parent=%llu  %s%s",
                bsim::ToSeconds(rec.time), IpToString(rec.node_ip).c_str(),
                bsobs::ToString(rec.kind),
                static_cast<unsigned long long>(rec.trace_id),
                static_cast<unsigned long long>(rec.span_id),
                static_cast<unsigned long long>(rec.parent_span), detail.c_str(),
                flags.c_str());
  return buf;
}

int RunTimeline(const Flags& flags) {
  const std::string scenario = flags.Get("scenario", "defame-post");
  const std::uint32_t peer_filter = ParseIp(flags.Get("peer", ""));
  const std::uint64_t seed = SeedOf(flags);
  constexpr std::uint32_t kTargetIp = 0x0a000001;
  constexpr std::uint32_t kInnocentIp = 0x0a000002;
  constexpr std::uint32_t kAttackerIp = 0x0a000066;

  bsim::Scheduler sched;
  bsim::Network net(sched);
  bsobs::SpanTracer tracer;

  NodeConfig tc;
  tc.rng_seed = seed;
  tc.span_tracer = &tracer;
  tc.target_outbound = scenario == "defame-post" ? 1 : 0;
  Node target(sched, net, kTargetIp, tc);
  NodeConfig ic;
  ic.rng_seed = seed;
  ic.span_tracer = &tracer;
  ic.target_outbound = 0;
  Node innocent(sched, net, kInnocentIp, ic);
  innocent.Start();
  if (scenario == "defame-post") target.AddKnownAddress({kInnocentIp, 8333});
  target.Start();
  sched.RunUntil(5 * bsim::kSecond);

  bsattack::AttackerNode attacker(sched, net, kAttackerIp, tc.chain.magic);
  attacker.SetSpanTracer(&tracer);
  bsattack::Crafter crafter(tc.chain);

  if (scenario == "defame-pre") {
    bsattack::PreConnectionDefamation pre(
        attacker, {kTargetIp, 8333}, {kInnocentIp, 55555},
        bsattack::PreConnectionDefamation::InstantBanFrames(tc.chain.magic));
    pre.SetSpanTracer(&tracer);
    pre.Run();
    sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
  } else if (scenario == "defame-post") {
    innocent.MineAndRelay();
    sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
    const Peer* outbound = nullptr;
    for (const Peer* p : target.Peers()) {
      if (!p->inbound) outbound = p;
    }
    if (outbound == nullptr) {
      std::fprintf(stderr, "timeline: setup failed, no outbound session\n");
      return 2;
    }
    bsattack::PostConnectionDefamation post(attacker, outbound->conn->Local(),
                                            outbound->remote);
    post.SetSpanTracer(&tracer);
    post.Arm({bsproto::EncodeMessage(tc.chain.magic, crafter.SegwitInvalidTx())});
    innocent.SendToRemoteIp(kTargetIp, bsproto::PingMsg{1});
    sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
  } else if (scenario == "sybil") {
    bsattack::SerialSybilConfig sc;
    sc.max_identifiers = 2;
    bsattack::SerialSybilAttack attack(attacker, {kTargetIp, 8333}, sc);
    attack.Start();
    sched.RunUntil(sched.Now() + 20 * bsim::kSecond);
  } else {
    std::fprintf(stderr, "timeline: unknown --scenario '%s'\n", scenario.c_str());
    return 2;
  }

  // ---- merged annotated timeline: spans (all nodes) + the target's events.
  const std::vector<bsobs::SpanRecord> spans = tracer.Log().Snapshot();
  struct Line {
    bsim::SimTime time;
    int order;  // events sort after spans at the same instant
    std::string text;
  };
  std::vector<Line> lines;
  for (const bsobs::SpanRecord& rec : spans) {
    if (peer_filter != 0 && rec.node_ip != peer_filter &&
        static_cast<std::uint32_t>(rec.a) != peer_filter &&
        static_cast<std::uint32_t>(rec.b) != peer_filter) {
      continue;
    }
    lines.push_back({rec.time, 0, SpanLine(rec)});
  }
  for (const bsobs::TraceEvent& ev : target.Trace().Snapshot()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%12.6f  %-15s event:%-21s peer=%llu a=%lld b=%lld",
                  bsim::ToSeconds(ev.time), IpToString(kTargetIp).c_str(),
                  bsobs::ToString(ev.type),
                  static_cast<unsigned long long>(ev.peer_id),
                  static_cast<long long>(ev.a), static_cast<long long>(ev.b));
    lines.push_back({ev.time, 1, buf});
  }
  std::stable_sort(lines.begin(), lines.end(), [](const Line& x, const Line& y) {
    return x.time != y.time ? x.time < y.time : x.order < y.order;
  });
  std::printf("timeline: scenario=%s, seed=%llu, %zu spans "
              "(%llu recorded, %llu evicted)\n\n",
              scenario.c_str(), static_cast<unsigned long long>(seed), spans.size(),
              static_cast<unsigned long long>(tracer.Log().Recorded()),
              static_cast<unsigned long long>(tracer.Log().Dropped()));
  std::printf("%12s  %-15s %s\n", "time (s)", "node", "record");
  for (const Line& line : lines) std::printf("%s\n", line.text.c_str());

  // ---- causal chain of the last ban: walk parent_span links to the root.
  std::map<std::uint64_t, const bsobs::SpanRecord*> by_span;
  const bsobs::SpanRecord* ban = nullptr;
  for (const bsobs::SpanRecord& rec : spans) {
    by_span[rec.span_id] = &rec;
    if (rec.kind == bsobs::SpanKind::kBan) ban = &rec;
  }
  if (ban == nullptr) {
    std::printf("\nno kBan span recorded — nothing to reconstruct\n");
    return 1;
  }
  std::vector<const bsobs::SpanRecord*> chain;
  std::set<std::uint64_t> nodes;
  for (const bsobs::SpanRecord* rec = ban; rec != nullptr;) {
    chain.push_back(rec);
    nodes.insert(rec->node_ip);
    if (rec->parent_span == 0) break;
    const auto it = by_span.find(rec->parent_span);
    rec = it == by_span.end() ? nullptr : it->second;
  }
  std::printf("\ncausal chain of the final ban (leaf -> root):\n");
  for (const bsobs::SpanRecord* rec : chain) std::printf("  %s\n", SpanLine(*rec).c_str());
  const bsobs::SpanRecord* root = chain.back();
  const bool rooted = root->parent_span == 0 &&
                      (root->kind == bsobs::SpanKind::kSend ||
                       root->kind == bsobs::SpanKind::kInject);
  const bool cross_node = nodes.size() >= 2;
  std::printf("\nchain: %zu spans across %zu nodes, root=%s -> %s\n", chain.size(),
              nodes.size(), rooted ? bsobs::ToString(root->kind) : "MISSING",
              rooted && cross_node ? "COMPLETE" : "INCOMPLETE");
  return rooted && cross_node ? 0 : 1;
}

// ---------------------------------------------------------------------------
// bench-diff: compare two BENCH_*.json reports field by field. Deterministic
// counters gate at --tolerance (default 0: exact); timing fields (ns/sec/
// rate-valued, matched by name) gate at --timing-tolerance. Exit 2 when the
// reports are not comparable (parse failure, schema/bench/seed mismatch),
// 1 when any field leaves its tolerance, 0 on pass.

/// Split a dotted/underscored field path into lowercase tokens, so "ns" in
/// "p50_ns" matches but the "ns_" inside "spans_recorded" does not.
std::vector<std::string> FieldTokens(const std::string& key) {
  std::vector<std::string> tokens;
  std::string cur;
  for (const char c : key) {
    if (c == '.' || c == '_') {
      if (!cur.empty()) tokens.push_back(cur);
      cur.clear();
    } else {
      cur += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  if (!cur.empty()) tokens.push_back(cur);
  return tokens;
}

bool IsTimingField(const std::string& key) {
  for (const std::string& tok : FieldTokens(key)) {
    for (const char* t : {"ns", "sec", "secs", "seconds", "hps", "wall", "ratio",
                          "time", "latency", "overhead"}) {
      if (tok == t) return true;
    }
  }
  return false;
}

/// Distribution extremes (min_ns/max_ns) are single-sample outliers — one
/// cold cache miss moves max_ns by orders of magnitude — so they are shown
/// but never gated.
bool IsInfoOnlyField(const std::string& key) {
  if (!IsTimingField(key)) return false;
  for (const std::string& tok : FieldTokens(key)) {
    if (tok == "min" || tok == "max") return true;
  }
  return false;
}

std::optional<bsutil::JsonValue> LoadReport(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench-diff: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;) {
    text.append(buf, n);
  }
  std::fclose(f);
  auto parsed = bsutil::ParseJson(text);
  if (!parsed) std::fprintf(stderr, "bench-diff: %s is not valid JSON\n", path.c_str());
  return parsed;
}

/// Identity fields that must agree before any numeric comparison happens.
bool SameIdentity(const bsutil::JsonValue& a, const bsutil::JsonValue& b,
                  std::string& why) {
  const auto str_of = [](const bsutil::JsonValue& v, const char* key) {
    const bsutil::JsonValue* f = v.Find(key);
    return f != nullptr && f->IsString() ? f->str : std::string();
  };
  const auto num_of = [](const bsutil::JsonValue& v, const char* key) {
    const bsutil::JsonValue* f = v.Find(key);
    return f != nullptr && f->IsNumber() ? f->number : -1.0;
  };
  if (str_of(a, "schema") != bsbench::kReportSchema ||
      str_of(b, "schema") != bsbench::kReportSchema) {
    why = "missing or foreign \"schema\" field (want \"" +
          std::string(bsbench::kReportSchema) + "\")";
    return false;
  }
  if (num_of(a, "schema_version") != num_of(b, "schema_version")) {
    why = "schema_version mismatch";
    return false;
  }
  if (str_of(a, "bench") != str_of(b, "bench")) {
    why = "bench name mismatch (" + str_of(a, "bench") + " vs " + str_of(b, "bench") + ")";
    return false;
  }
  if (num_of(a, "seed") != num_of(b, "seed")) {
    why = "seed mismatch — deterministic counters are not comparable";
    return false;
  }
  return true;
}

int RunBenchDiff(const Flags& flags) {
  const std::string old_path = flags.Get("old", "");
  const std::string new_path = flags.Get("new", "");
  if (old_path.empty() || new_path.empty()) {
    std::fprintf(stderr, "bench-diff: --old and --new are required\n");
    return 2;
  }
  const double tol = flags.GetNum("tolerance", 0.0);
  const double timing_tol = flags.GetNum("timing-tolerance", 0.5);

  const auto old_doc = LoadReport(old_path);
  const auto new_doc = LoadReport(new_path);
  if (!old_doc || !new_doc) return 2;
  std::string why;
  if (!SameIdentity(*old_doc, *new_doc, why)) {
    std::fprintf(stderr, "bench-diff: reports are not comparable: %s\n", why.c_str());
    return 2;
  }

  const bsutil::JsonValue* old_results = old_doc->Find("results");
  const bsutil::JsonValue* new_results = new_doc->Find("results");
  if (old_results == nullptr || new_results == nullptr) {
    std::fprintf(stderr, "bench-diff: a report has no \"results\" object\n");
    return 2;
  }
  std::vector<std::pair<std::string, double>> old_flat;
  std::vector<std::pair<std::string, double>> new_flat;
  bsutil::FlattenJsonNumbers(*old_results, "", old_flat);
  bsutil::FlattenJsonNumbers(*new_results, "", new_flat);
  std::map<std::string, double> new_map(new_flat.begin(), new_flat.end());

  std::printf("bench-diff: %s\n            %s\n", old_path.c_str(), new_path.c_str());
  std::printf("tolerance %.4g (deterministic), %.4g (timing)\n\n", tol, timing_tol);
  std::printf("%-44s %14s %14s %9s %7s  %s\n", "field", "old", "new", "delta",
              "gate", "verdict");
  int violations = 0;
  for (const auto& [key, old_value] : old_flat) {
    const auto it = new_map.find(key);
    if (it == new_map.end()) {
      std::printf("%-44s %14.6g %14s %9s %7s  MISSING\n", key.c_str(), old_value,
                  "-", "-", "-");
      ++violations;
      continue;
    }
    const bool timing = IsTimingField(key);
    const bool info = IsInfoOnlyField(key);
    const double limit = timing ? timing_tol : tol;
    const double base = std::max(std::abs(old_value), 1e-12);
    const double rel = std::abs(it->second - old_value) / base;
    const bool ok = info || rel <= limit;
    if (!ok) ++violations;
    std::printf("%-44s %14.6g %14.6g %8.2f%% %7s  %s\n", key.c_str(), old_value,
                it->second, 100.0 * rel,
                info ? "info" : (timing ? "loose" : "tight"),
                ok ? "ok" : "VIOLATION");
    new_map.erase(it);
  }
  for (const auto& [key, value] : new_map) {
    std::printf("%-44s %14s %14.6g %9s %7s  new field\n", key.c_str(), "-", value,
                "-", "-");
  }
  std::printf("\n%s: %d violation%s\n", violations == 0 ? "PASS" : "FAIL", violations,
              violations == 1 ? "" : "s");
  return violations == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// fuzz — deterministic structure-aware fuzz campaigns over the four wire-
// facing harnesses, plus the Table I differential rule-set oracle. Exit 0
// iff every campaign is failure-free AND the observed 0.20/0.21/0.22
// divergence set equals the paper's predicted matrix exactly.

int RunFuzz(const Flags& flags) {
  const std::string harness = flags.Get("harness", "all");
  const std::string format = flags.Get("format", "table");
  const std::string corpus = flags.Get("corpus", "fuzz/corpus");
  const std::string artifacts = flags.Get("artifacts", "build/fuzz-artifacts");
  const auto seeds = static_cast<std::size_t>(flags.GetNum("seeds", 8));
  const auto seed_base = static_cast<std::uint64_t>(flags.GetNum("seed-base", 1));
  const auto iters = static_cast<std::size_t>(flags.GetNum("iters", 1500));
  const auto diff_iters = static_cast<std::size_t>(flags.GetNum("diff-iters", 200));
  const std::string replay = flags.Get("replay", "");
  const std::string reseed = flags.Get("reseed", "");

  if (harness != "all" && harness != "diff") {
    const auto& known = bsfuzz::AllHarnesses();
    if (std::find(known.begin(), known.end(), harness) == known.end()) {
      std::fprintf(stderr, "unknown --harness: %s\n", harness.c_str());
      return 2;
    }
  }

  if (!reseed.empty()) {
    const auto count = static_cast<std::size_t>(flags.GetNum("count", 6));
    std::size_t total = 0;
    for (const std::string& h : bsfuzz::AllHarnesses()) {
      const std::size_t n = bsfuzz::ReseedCorpus(h, reseed, seed_base, count);
      std::printf("reseeded %s: %zu inputs\n", h.c_str(), n);
      total += n;
    }
    // +1: the codec corpus always gets the pinned divergent tip-probe entry.
    return total == 4 * count + 1 ? 0 : 1;
  }

  if (!replay.empty()) {
    if (harness == "all" || harness == "diff") {
      std::fprintf(stderr, "--replay needs a concrete --harness\n");
      return 2;
    }
    bsutil::ByteVec input;
    if (!bsfuzz::ReadReproFile(replay, input)) {
      std::fprintf(stderr, "cannot read repro file: %s\n", replay.c_str());
      return 2;
    }
    const bsfuzz::HarnessResult r = bsfuzz::RunHarness(harness, input);
    std::printf("%s: %s%s%s\n", harness.c_str(), r.ok ? "OK" : "FAIL",
                r.ok ? "" : " oracle=", r.ok ? "" : r.oracle.c_str());
    if (!r.ok) std::printf("  detail: %s\n", r.detail.c_str());
    return r.ok ? 0 : 1;
  }

  std::vector<std::string> harnesses;
  bool run_diff = false;
  if (harness == "all") {
    harnesses = bsfuzz::AllHarnesses();
    run_diff = true;
  } else if (harness == "diff") {
    run_diff = true;
  } else {
    harnesses = {harness};
  }

  struct CampaignRow {
    std::string harness;
    std::size_t iterations = 0;
    std::size_t corpus_inputs = 0;
    std::vector<bsfuzz::FuzzFailure> failures;
  };
  std::vector<CampaignRow> rows;
  std::size_t total_failures = 0;
  for (const std::string& h : harnesses) {
    CampaignRow row;
    row.harness = h;
    for (std::size_t s = 0; s < seeds; ++s) {
      bsfuzz::CampaignConfig config;
      config.harness = h;
      config.seed = seed_base + s;
      config.iters = iters;
      config.corpus_dir = s == 0 ? corpus : "";  // replay corpus once
      config.artifacts_dir = artifacts;
      bsfuzz::CampaignResult r = bsfuzz::RunCampaign(config);
      row.iterations += r.iterations;
      row.corpus_inputs += r.corpus_inputs;
      for (auto& f : r.failures) row.failures.push_back(std::move(f));
    }
    total_failures += row.failures.size();
    rows.push_back(std::move(row));
  }

  bsfuzz::DiffResult diff;
  if (run_diff) {
    diff = bsfuzz::RunDifferential(seed_base, diff_iters * seeds);
  }
  const bool ok = total_failures == 0 && (!run_diff || diff.ok);

  if (format == "json") {
    std::string out = "{\"campaigns\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const CampaignRow& row = rows[i];
      if (i > 0) out += ",";
      out += "{\"harness\":\"" + row.harness + "\",\"iterations\":" +
             std::to_string(row.iterations) + ",\"corpus_inputs\":" +
             std::to_string(row.corpus_inputs) + ",\"failures\":[";
      for (std::size_t f = 0; f < row.failures.size(); ++f) {
        const auto& fail = row.failures[f];
        if (f > 0) out += ",";
        out += "{\"seed\":" + std::to_string(fail.seed) + ",\"oracle\":\"" +
               fail.oracle + "\",\"source\":\"" + fail.source +
               "\",\"artifact\":\"" + fail.artifact_path + "\"}";
      }
      out += "]}";
    }
    out += "]";
    if (run_diff) {
      auto cell_list = [](const std::vector<std::string>& cells) {
        std::string s = "[";
        for (std::size_t i = 0; i < cells.size(); ++i) {
          if (i > 0) s += ",";
          s += "\"" + cells[i] + "\"";
        }
        return s + "]";
      };
      out += ",\"differential\":{\"ok\":" + std::string(diff.ok ? "true" : "false") +
             ",\"events\":" + std::to_string(diff.events) +
             ",\"observed\":" + cell_list(diff.observed) +
             ",\"unpredicted\":" + cell_list(diff.unpredicted) +
             ",\"missing\":" + cell_list(diff.missing) + "}";
    }
    out += ",\"ok\":" + std::string(ok ? "true" : "false") + "}";
    std::printf("%s\n", out.c_str());
  } else {
    std::printf("%-10s %12s %8s %9s\n", "harness", "iterations", "corpus",
                "failures");
    for (const CampaignRow& row : rows) {
      std::printf("%-10s %12zu %8zu %9zu\n", row.harness.c_str(), row.iterations,
                  row.corpus_inputs, row.failures.size());
      for (const auto& fail : row.failures) {
        std::printf("  FAIL seed=%llu source=%s oracle=%s\n",
                    static_cast<unsigned long long>(fail.seed),
                    fail.source.c_str(), fail.oracle.c_str());
        std::printf("    detail: %s\n", fail.detail.c_str());
        if (!fail.artifact_path.empty()) {
          std::printf("    repro: %s\n", fail.artifact_path.c_str());
        }
      }
    }
    if (run_diff) {
      std::printf("differential: %s (%zu events, %zu/%zu predicted cells hit",
                  diff.ok ? "PASS" : "FAIL", diff.events,
                  diff.predicted.size() - diff.missing.size(),
                  diff.predicted.size());
      std::printf(", %zu unpredicted)\n", diff.unpredicted.size());
      for (const std::string& cell : diff.unpredicted) {
        std::printf("  UNPREDICTED divergence: %s\n", cell.c_str());
      }
      for (const std::string& cell : diff.missing) {
        std::printf("  MISSING divergence: %s\n", cell.c_str());
      }
    }
    std::printf("%s\n", ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// testbed: N-process loopback cluster with a kill -9 recovery drill
//
// Spawns N bsnetd daemons on loopback (ports derived from the pid so
// parallel ctest runs never collide), waits for full-mesh handshakes, lets
// the miner build a chain, kill -9s the last member mid-traffic, restarts it
// on the same store directory, and requires:
//   - the survivors notice the silent death (the dead peer's entry drains),
//   - the restarted member replays its WAL and reconverges to within one
//     block of the miner,
//   - no honest peer is banned anywhere at any point,
//   - every member exits 0 on RPC "stop" and every store passes fsck.

struct TestbedMember {
  pid_t pid = -1;
  std::uint16_t port = 0;
  std::uint16_t rpc_port = 0;
  std::string store_dir;
};

std::string SelfDir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

pid_t SpawnTestbedDaemon(const std::string& bsnetd, const TestbedMember& member,
                         const std::string& peers, bool miner,
                         std::uint64_t seed, long lifetime_sec) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child. --seconds is a safety net so an orphaned daemon cannot outlive a
  // crashed supervisor.
  std::vector<std::string> args = {
      bsnetd,       "--port",      std::to_string(member.port),
      "--rpc-port", std::to_string(member.rpc_port),
      "--store-dir", member.store_dir,
      "--seed",     std::to_string(seed),
      "--seconds",  std::to_string(lifetime_sec),
      "--quiet",    "",
  };
  args.pop_back();  // "--quiet" takes no value
  if (!peers.empty()) {
    args.push_back("--peers");
    args.push_back(peers);
  }
  if (miner) {
    args.push_back("--mine-interval-ms");
    args.push_back("150");
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(bsnetd.c_str(), argv.data());
  std::_Exit(127);
}

std::optional<bsutil::JsonValue> TestbedRpc(std::uint16_t rpc_port,
                                            const std::string& request) {
  const auto reply = RpcCall(rpc_port, request, 1000);
  if (!reply) return std::nullopt;
  return bsutil::ParseJson(*reply);
}

/// getinfo field, or -1 when the daemon is unreachable / mid-start.
long TestbedInfo(std::uint16_t rpc_port, const std::string& field) {
  const auto doc = TestbedRpc(rpc_port, "{\"method\":\"getinfo\"}");
  if (!doc) return -1;
  const bsutil::JsonValue* result = doc->Find("result");
  if (result == nullptr) return -1;
  const bsutil::JsonValue* value = result->Find(field);
  return value != nullptr && value->IsNumber() ? static_cast<long>(value->number)
                                               : -1;
}

bool TestbedPoll(const std::function<bool()>& done, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 100) {
    if (done()) return true;
    ::usleep(100 * 1000);
  }
  return done();
}

/// True when any member reports a non-empty ban list or a peer with a
/// positive ban score — the invariant the whole drill must never violate.
bool TestbedAnyHonestBan(const std::vector<TestbedMember>& members) {
  for (const auto& m : members) {
    if (m.pid < 0) continue;
    const long bans = TestbedInfo(m.rpc_port, "bans");
    if (bans > 0) return true;
    const auto peers = TestbedRpc(m.rpc_port, "{\"method\":\"getpeerinfo\"}");
    if (!peers) continue;
    const bsutil::JsonValue* result = peers->Find("result");
    if (result == nullptr || !result->IsArray()) continue;
    for (const auto& peer : result->array) {
      const bsutil::JsonValue* score = peer.Find("banscore");
      if (score != nullptr && score->IsNumber() && score->number > 0) return true;
    }
  }
  return false;
}

int RunTestbed(const Flags& flags) {
  const int n = std::max(2, static_cast<int>(flags.GetNum("nodes", 3)));
  const auto seed = static_cast<std::uint64_t>(flags.GetNum("seed", 42));
  const long lifetime_sec = static_cast<long>(flags.GetNum("lifetime", 120));
  const std::string bsnetd = SelfDir() + "/bsnetd";
  if (::access(bsnetd.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "testbed: bsnetd not found at %s\n", bsnetd.c_str());
    return 2;
  }

  // Pid-derived ports: 2N consecutive ports somewhere in 20000..59999.
  const std::uint16_t base = static_cast<std::uint16_t>(
      20000 + (static_cast<unsigned>(::getpid()) * 131) % 39000);
  const std::string root =
      "bsnetd-testbed-" + std::to_string(static_cast<long>(::getpid()));
  std::vector<TestbedMember> members(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& m = members[static_cast<std::size_t>(i)];
    m.port = static_cast<std::uint16_t>(base + i);
    m.rpc_port = static_cast<std::uint16_t>(base + n + i);
    m.store_dir = root + "/n" + std::to_string(i);
  }
  const auto peers_of = [&](int self) {
    std::string list;
    for (int i = 0; i < n; ++i) {
      if (i == self) continue;
      if (!list.empty()) list += ",";
      list += "127.0.0.1:" + std::to_string(members[static_cast<std::size_t>(i)].port);
    }
    return list;
  };

  bool ok = true;
  std::string failure;
  const auto fail = [&](const std::string& why) {
    ok = false;
    if (failure.empty()) failure = why;
  };

  for (int i = 0; i < n; ++i) {
    auto& m = members[static_cast<std::size_t>(i)];
    m.pid = SpawnTestbedDaemon(bsnetd, m, peers_of(i), /*miner=*/i == 0, seed + i,
                               lifetime_sec);
  }

  // Phase 1: full connectivity — every member handshakes at least one peer.
  if (!TestbedPoll(
          [&] {
            for (const auto& m : members) {
              if (TestbedInfo(m.rpc_port, "established") < 1) return false;
            }
            return true;
          },
          15000)) {
    fail("cluster never converged to established handshakes");
  }

  // Phase 2: traffic — the victim must have real chain state to lose.
  const int victim = n - 1;
  auto& v = members[static_cast<std::size_t>(victim)];
  if (ok && !TestbedPoll(
                [&] { return TestbedInfo(v.rpc_port, "height") >= 2; }, 15000)) {
    fail("victim never synced past height 2");
  }
  if (ok && TestbedAnyHonestBan(members)) fail("honest ban before the kill");

  // Phase 3: kill -9 mid-traffic. Survivors must drain the dead peer.
  const std::uint16_t victim_port = v.port;
  if (ok) {
    ::kill(v.pid, SIGKILL);
    int status = 0;
    ::waitpid(v.pid, &status, 0);
    v.pid = -1;
    const std::uint16_t miner_rpc = members[0].rpc_port;
    if (!TestbedPoll(
            [&] {
              const auto peers =
                  TestbedRpc(miner_rpc, "{\"method\":\"getpeerinfo\"}");
              if (!peers) return false;
              const bsutil::JsonValue* result = peers->Find("result");
              if (result == nullptr || !result->IsArray()) return false;
              for (const auto& peer : result->array) {
                const bsutil::JsonValue* addr = peer.Find("addr");
                if (addr != nullptr && addr->IsString() &&
                    addr->str == "127.0.0.1:" + std::to_string(victim_port)) {
                  return false;  // dead outbound entry still present
                }
              }
              return true;
            },
            30000)) {
      fail("survivors never dropped the killed member's connection");
    }
  }

  // Phase 4: restart on the same store directory; the WAL must replay and
  // the member must redial and reconverge to the miner's chain.
  if (ok) {
    v.pid = SpawnTestbedDaemon(bsnetd, v, peers_of(victim), /*miner=*/false,
                               seed + victim, lifetime_sec);
    if (!TestbedPoll(
            [&] {
              if (TestbedInfo(v.rpc_port, "established") < 1) return false;
              const long miner_height = TestbedInfo(members[0].rpc_port, "height");
              const long victim_height = TestbedInfo(v.rpc_port, "height");
              return miner_height >= 0 && victim_height >= 0 &&
                     miner_height - victim_height <= 1;
            },
            30000)) {
      fail("restarted member never reconverged with the miner");
    }
  }
  if (ok && TestbedAnyHonestBan(members)) fail("honest ban after recovery");

  // Phase 5: graceful stop everywhere; every live member must exit 0.
  for (auto& m : members) {
    if (m.pid < 0) continue;
    TestbedRpc(m.rpc_port, "{\"method\":\"stop\"}");
  }
  for (auto& m : members) {
    if (m.pid < 0) continue;
    int status = 0;
    if (!TestbedPoll(
            [&] { return ::waitpid(m.pid, &status, WNOHANG) == m.pid; }, 10000)) {
      ::kill(m.pid, SIGKILL);
      ::waitpid(m.pid, &status, 0);
      fail("member on port " + std::to_string(m.port) +
           " did not exit on RPC stop");
    } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      fail("member on port " + std::to_string(m.port) + " exited unclean");
    }
    m.pid = -1;
  }

  // Phase 6: every store directory must verify healthy — including the one
  // that lived through kill -9.
  for (const auto& m : members) {
    const bsstore::FsckReport report =
        bsstore::RunFsck(bsstore::RealFs::Instance(), m.store_dir, false);
    if (!report.store_found || !report.healthy) {
      fail("fsck unhealthy in " + m.store_dir);
    }
  }

  if (flags.Get("format", "table") == "json") {
    std::printf(
        "{\"schema\":\"banscore-lab-testbed\",\"seed\":%llu,\"nodes\":%d,"
        "\"pass\":%s,\"failure\":\"%s\"}\n",
        static_cast<unsigned long long>(seed), n, ok ? "true" : "false",
        failure.c_str());
  } else {
    std::printf("testbed: %d nodes, seed %llu\n", n,
                static_cast<unsigned long long>(seed));
    if (!ok) std::printf("  FAILED: %s\n", failure.c_str());
    std::printf("%s\n", ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}

void Usage() {
  std::printf(
      "banscore-lab <scenario> [--flag value ...]\n"
      "scenarios:\n"
      "  rules   --version 0.20|0.21|0.22\n"
      "  bmdos   --payload ping|bogus-block|unknown|invalid-pow --connections N\n"
      "          --rate R --seconds S --policy banscore|infinity|disabled|goodscore\n"
      "  sybil   --identifiers N --delay-ms D --version V --threshold T\n"
      "  defame  --mode pre|post --policy P\n"
      "  detect  --train-minutes M --window W --attack bmdos|defame\n"
      "  dump-metrics --seconds S --payload P --format prom|json\n"
      "          (run a short instrumented flood, print the bsobs snapshot)\n"
      "  chaos   --seeds N --seed-base B --seconds S\n"
      "          (seeded fault-injection sweep over the hardened node;\n"
      "           exit 0 iff every seed's safety invariants held)\n"
      "  overload --defenses none|eviction|ratelimit|priority|all --procs N\n"
      "          --windows W --min-ratio R --format table|json\n"
      "          (Sybil-flood A/B of honest mining rate; exit 1 if the\n"
      "           attacked/baseline ratio drops below --min-ratio)\n"
      "  fsck    --dir D --repair yes --format table|json --demo clean|torn\n"
      "          (validate/repair a crash-consistent state-store directory;\n"
      "           exit 0 iff the store is healthy after any requested repair)\n"
      "  eclipse --defenses none|all --seconds S --heal-fraction F\n"
      "          --format table|json\n"
      "          (sustained eclipse vs stock or hardened victim; exit 0 iff\n"
      "           the final attacker control fraction is below --heal-fraction)\n"
      "  partition --defenses none|all --seconds S --format table|json\n"
      "          (asymmetric one-way routing detour vs stock or hardened\n"
      "           victim, with a listen-only tip-probe witness; exit 0 iff\n"
      "           the victim ends within 1 block of the miner)\n"
      "  timeline --scenario defame-post|defame-pre|sybil --peer a.b.c.d\n"
      "          (seeded run under a shared span tracer; prints the merged\n"
      "           span+event timeline and walks the final ban's causal chain;\n"
      "           exit 0 iff the chain is complete and crosses nodes)\n"
      "  fuzz --harness codec|tracker|store|addrman|diff|all --seeds N\n"
      "          --seed-base B --iters I --corpus DIR --artifacts DIR\n"
      "          --format table|json\n"
      "          (deterministic structure-aware fuzz campaigns over the four\n"
      "           wire-facing harnesses plus the Table I differential oracle;\n"
      "           failures are minimized into DIR/<h>-seed<S>-iter<I>.repro;\n"
      "           --replay FILE re-runs one repro; --reseed DIR --count K\n"
      "           regenerates the committed corpus; exit 0 iff no oracle\n"
      "           fired and observed divergence == Table I exactly)\n"
      "  testbed --nodes N --seed S --format table|json\n"
      "          (spawn an N-process bsnetd loopback cluster, kill -9 a\n"
      "           member mid-traffic, restart it on the same store dir;\n"
      "           exit 0 iff the cluster reconverges with zero honest bans\n"
      "           and every store passes fsck)\n"
      "  bench-diff --old A.json --new B.json --tolerance T\n"
      "          --timing-tolerance TT\n"
      "          (compare two BENCH_*.json reports; deterministic counters\n"
      "           gate tight, timing fields loose; exit 2 = not comparable,\n"
      "           1 = out of tolerance, 0 = pass)\n"
      "every scenario also accepts --seed N (default 42) and echoes it\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string scenario = argv[1];
  const Flags flags(argc, argv, 2);
  if (scenario == "rules") return RunRules(flags);
  if (scenario == "bmdos") return RunBmDos(flags);
  if (scenario == "sybil") return RunSybil(flags);
  if (scenario == "defame") return RunDefame(flags);
  if (scenario == "detect") return RunDetect(flags);
  if (scenario == "dump-metrics") return RunDumpMetrics(flags);
  if (scenario == "chaos") return RunChaos(flags);
  if (scenario == "overload") return RunOverload(flags);
  if (scenario == "fsck") return RunStoreFsck(flags);
  if (scenario == "eclipse") return RunEclipse(flags);
  if (scenario == "partition") return RunPartition(flags);
  if (scenario == "timeline") return RunTimeline(flags);
  if (scenario == "bench-diff") return RunBenchDiff(flags);
  if (scenario == "fuzz") return RunFuzz(flags);
  if (scenario == "testbed") return RunTestbed(flags);
  Usage();
  return 2;
}
