// banscore-lab — command-line laboratory for the ban-score attack/defense
// scenarios. Every experiment from the paper can be run with tunable
// parameters without writing code.
//
//   banscore-lab rules   [--version 0.20|0.21|0.22]
//   banscore-lab bmdos   [--payload ping|bogus-block|unknown|invalid-pow]
//                        [--connections N] [--rate R] [--seconds S]
//                        [--policy banscore|infinity|disabled|goodscore]
//   banscore-lab sybil   [--identifiers N] [--delay-ms D]
//                        [--version 0.20|0.21|0.22] [--threshold T]
//   banscore-lab defame  [--mode pre|post] [--policy ...]
//   banscore-lab detect  [--train-minutes M] [--attack bmdos|defame]
//                        [--window W]
//   banscore-lab dump-metrics [--seconds S] [--payload ...] [--format prom|json]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attack/bmdos.hpp"
#include "attack/defamation.hpp"
#include "attack/sybil.hpp"
#include "attack/traffic.hpp"
#include "core/node.hpp"
#include "detect/engine.hpp"
#include "detect/monitor.hpp"

using namespace bsnet;  // NOLINT

namespace {

// ---------------------------------------------------------------------------
// Tiny flag parser: --key value pairs after the scenario name.

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
        std::exit(2);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetNum(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

CoreVersion ParseVersion(const std::string& s) {
  if (s == "0.21") return CoreVersion::kV0_21;
  if (s == "0.22") return CoreVersion::kV0_22;
  return CoreVersion::kV0_20;
}

BanPolicy ParsePolicy(const std::string& s) {
  if (s == "infinity") return BanPolicy::kThresholdInfinity;
  if (s == "disabled") return BanPolicy::kDisabled;
  if (s == "goodscore") return BanPolicy::kGoodScore;
  return BanPolicy::kBanScore;
}

// ---------------------------------------------------------------------------
// Scenarios

int RunRules(const Flags& flags) {
  const CoreVersion version = ParseVersion(flags.Get("version", "0.20"));
  std::printf("ban-score rules of Bitcoin Core %s\n\n", ToString(version));
  std::printf("%-12s | %-44s | %5s | %-13s | %s\n", "Message", "Misbehavior", "score",
              "Object of ban", "Type");
  for (const RuleInfo& rule : RulesFor(version)) {
    if (!rule.in_paper_table) continue;
    std::printf("%-12s | %-44s | %5d | %-13s | %s\n", rule.message_type,
                rule.description, rule.score, ToString(rule.scope), ToString(rule.cls));
  }
  return 0;
}

int RunBmDos(const Flags& flags) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  bsim::CpuModel cpu;
  NodeConfig config;
  config.ban_policy = ParsePolicy(flags.Get("policy", "banscore"));
  Node victim(sched, net, 0x0a000001, config, &cpu);
  victim.Start();
  bsattack::AttackerNode attacker(sched, net, 0x0a000002, config.chain.magic);
  bsattack::Crafter crafter(config.chain);

  bsattack::BmDosConfig bm;
  const std::string payload = flags.Get("payload", "bogus-block");
  if (payload == "ping") bm.payload = bsattack::BmDosConfig::Payload::kPing;
  else if (payload == "unknown") bm.payload = bsattack::BmDosConfig::Payload::kUnknownCommand;
  else if (payload == "invalid-pow") bm.payload = bsattack::BmDosConfig::Payload::kInvalidPowBlock;
  else bm.payload = bsattack::BmDosConfig::Payload::kBogusBlock;
  bm.sybil_connections = static_cast<int>(flags.GetNum("connections", 1));
  bm.rate_msgs_per_sec = flags.GetNum("rate", 1000);
  const double seconds = flags.GetNum("seconds", 10);

  cpu.SetActiveConnections(10 + bm.sybil_connections);
  cpu.BeginWindow(sched.Now());
  sched.RunUntil(bsim::kSecond);
  const double baseline = cpu.EndWindow(sched.Now()).mining_rate_hps;

  bsattack::BmDosAttack attack(attacker, {victim.Ip(), 8333}, crafter, bm);
  attack.Start();
  sched.RunUntil(sched.Now() + 2 * bsim::kSecond);
  cpu.BeginWindow(sched.Now());
  sched.RunUntil(sched.Now() + bsim::FromSeconds(seconds));
  const auto sample = cpu.EndWindow(sched.Now());
  attack.Stop();

  std::printf("BM-DoS: payload=%s connections=%d rate=%.0f/s policy=%s\n",
              payload.c_str(), bm.sybil_connections, attack.EffectiveRate(),
              ToString(config.ban_policy));
  std::printf("  messages sent:        %llu\n",
              static_cast<unsigned long long>(attack.MessagesSent()));
  std::printf("  mining: %.3g -> %.3g h/s (%.0f%% drop), CPU busy %.1f%%\n", baseline,
              sample.mining_rate_hps,
              100.0 * (1.0 - sample.mining_rate_hps / baseline),
              100.0 * sample.busy_fraction);
  std::printf("  bad-checksum frames dropped: %llu, peers banned: %llu\n",
              static_cast<unsigned long long>(victim.FramesDroppedBadChecksum()),
              static_cast<unsigned long long>(victim.PeersBanned()));
  return 0;
}

int RunSybil(const Flags& flags) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.core_version = ParseVersion(flags.Get("version", "0.20"));
  config.ban_threshold = static_cast<int>(flags.GetNum("threshold", 100));
  Node target(sched, net, 0x0a000001, config);
  target.Start();
  bsattack::AttackerNode attacker(sched, net, 0x0a000002, config.chain.magic);

  bsattack::SerialSybilConfig sc;
  sc.max_identifiers = static_cast<int>(flags.GetNum("identifiers", 10));
  sc.extra_message_delay =
      static_cast<bsim::SimTime>(flags.GetNum("delay-ms", 0) * bsim::kMillisecond);
  bsattack::SerialSybilAttack attack(attacker, {target.Ip(), 8333}, sc);
  attack.Start();
  sched.RunUntil(bsim::FromSeconds(sc.max_identifiers * 3.0 + 10));

  std::printf("serial Sybil (duplicate VERSION) vs Core %s, threshold %d\n",
              ToString(config.core_version), config.ban_threshold);
  std::printf("  identifiers banned: %d/%d\n", attack.IdentifiersBanned(),
              sc.max_identifiers);
  if (attack.IdentifiersBanned() > 0) {
    std::printf("  mean time-to-ban:   %.4f s\n", attack.MeanTimeToBan());
    const double per_id = attack.MeanTimeToBan() + 0.2;
    std::printf("  full-IP projection: %.2f min for 16384 ports\n",
                16384.0 * per_id / 60.0);
  } else {
    std::printf("  the VERSION rules are absent in this rule set: the vector is dead\n");
  }
  return 0;
}

int RunDefame(const Flags& flags) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig target_config;
  target_config.ban_policy = ParsePolicy(flags.Get("policy", "banscore"));
  target_config.target_outbound = 1;
  Node target(sched, net, 0x0a000001, target_config);
  NodeConfig pc;
  pc.target_outbound = 0;
  Node innocent(sched, net, 0x0a000002, pc);
  innocent.Start();
  target.AddKnownAddress({innocent.Ip(), 8333});
  target.Start();
  sched.RunUntil(5 * bsim::kSecond);

  bsattack::AttackerNode attacker(sched, net, 0x0a000066, target_config.chain.magic);
  bsattack::Crafter crafter(target_config.chain);
  const std::string mode = flags.Get("mode", "post");

  if (mode == "pre") {
    const bsproto::Endpoint victim_id{innocent.Ip(), 55555};
    bsattack::PreConnectionDefamation pre(
        attacker, {target.Ip(), 8333}, victim_id,
        bsattack::PreConnectionDefamation::InstantBanFrames(target_config.chain.magic));
    pre.Run();
    sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
    std::printf("pre-connection Defamation of %s under %s: banned=%s\n",
                victim_id.ToString().c_str(), ToString(target_config.ban_policy),
                target.Bans().IsBanned(victim_id, sched.Now()) ? "YES" : "no");
    return 0;
  }

  // Post-connection: earn the innocent peer a good score first, so the
  // goodscore policy has something to exempt.
  innocent.MineAndRelay();
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
  const Peer* outbound = nullptr;
  for (const Peer* p : target.Peers()) {
    if (!p->inbound) outbound = p;
  }
  if (outbound == nullptr) {
    std::printf("setup failed: no outbound session\n");
    return 1;
  }
  bsattack::PostConnectionDefamation post(attacker, outbound->conn->Local(),
                                          outbound->remote);
  post.Arm({bsproto::EncodeMessage(target_config.chain.magic,
                                   crafter.SegwitInvalidTx())});
  innocent.SendToRemoteIp(target.Ip(), bsproto::PingMsg{1});
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
  std::printf("post-connection Defamation of %s under %s: injected=%s banned=%s\n",
              outbound->remote.ToString().c_str(), ToString(target_config.ban_policy),
              post.Injected() ? "yes" : "no",
              target.Bans().IsBanned({innocent.Ip(), 8333}, sched.Now()) ? "YES" : "no");
  return 0;
}

int RunDetect(const Flags& flags) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  config.target_outbound = 8;
  Node target(sched, net, 0x0a000001, config);
  std::vector<std::unique_ptr<Node>> storage;
  std::vector<Node*> peers;
  for (int i = 0; i < 20; ++i) {
    NodeConfig pc;
    pc.target_outbound = 0;
    auto peer = std::make_unique<Node>(sched, net, 0x0a000100 + i, pc);
    peer->Start();
    target.AddKnownAddress({peer->Ip(), 8333});
    peers.push_back(peer.get());
    storage.push_back(std::move(peer));
  }
  target.Start();
  sched.RunUntil(10 * bsim::kSecond);

  bsdetect::Monitor monitor(target);
  bsattack::MainnetTrafficGenerator traffic(sched, peers, target,
                                            bsattack::TrafficConfig{});
  traffic.Start();

  const int train_minutes = static_cast<int>(flags.GetNum("train-minutes", 60));
  const int window = static_cast<int>(flags.GetNum("window", 10));
  std::printf("training on %d simulated minutes (window %d min)...\n", train_minutes,
              window);
  sched.RunUntil(sched.Now() + train_minutes * bsim::kMinute);
  bsdetect::StatEngine engine;
  if (!engine.Train(monitor.AllWindows(window))) {
    std::printf("not enough windows to train\n");
    return 1;
  }
  const auto& p = engine.GetProfile();
  std::printf("tau_n=[%.0f, %.0f]  tau_c=[0, %.2f]  tau_lambda=%.4f\n", p.tau_n_low,
              p.tau_n_high, p.tau_c_high, p.tau_lambda);

  const std::string attack = flags.Get("attack", "bmdos");
  bsattack::AttackerNode attacker(sched, net, 0x0a000066, config.chain.magic);
  bsattack::Crafter crafter(config.chain);
  std::unique_ptr<bsattack::BmDosAttack> flood;
  std::vector<std::unique_ptr<bsattack::PostConnectionDefamation>> defamations;
  if (attack == "bmdos") {
    bsattack::BmDosConfig bm;
    bm.payload = bsattack::BmDosConfig::Payload::kPing;
    bm.rate_msgs_per_sec = 250;
    flood = std::make_unique<bsattack::BmDosAttack>(attacker,
                                                    bsproto::Endpoint{target.Ip(), 8333},
                                                    crafter, bm);
    flood->Start();
    sched.RunUntil(sched.Now() + (window + 1) * bsim::kMinute);
  } else {
    const bsim::SimTime until = sched.Now() + window * bsim::kMinute;
    while (sched.Now() < until) {
      for (const Peer* peer : target.Peers()) {
        if (!peer->inbound && peer->HandshakeComplete() &&
            !target.Bans().IsBanned(peer->remote, sched.Now())) {
          auto d = std::make_unique<bsattack::PostConnectionDefamation>(
              attacker, peer->conn->Local(), peer->remote);
          d->Arm({bsproto::EncodeMessage(config.chain.magic,
                                         crafter.SegwitInvalidTx())});
          defamations.push_back(std::move(d));
          break;
        }
      }
      sched.RunUntil(sched.Now() + 10 * bsim::kSecond);
    }
  }

  const auto result = engine.Detect(monitor.Window(sched.Now(), window));
  std::printf("under %s: n=%.0f c=%.2f rho=%.4f -> %s%s%s\n", attack.c_str(), result.n,
              result.c, result.rho, result.anomalous ? "ANOMALOUS (" : "normal",
              result.anomalous
                  ? (result.bmdos_suspected ? "bm-dos " : "")
                  : "",
              result.anomalous
                  ? (result.defamation_suspected ? "defamation)" : ")")
                  : "");
  return result.anomalous ? 0 : 1;
}

int RunDumpMetrics(const Flags& flags) {
  // Drive a short instrumented BM-DoS run against a victim node sharing one
  // registry with the scheduler, then print the scrape-ready snapshot.
  bsobs::MetricsRegistry registry;
  bsim::Scheduler sched;
  sched.AttachMetrics(registry);
  bsim::Network net(sched);
  NodeConfig config;
  config.metrics = &registry;
  config.ban_policy = ParsePolicy(flags.Get("policy", "banscore"));
  Node victim(sched, net, 0x0a000001, config);
  victim.Start();
  bsattack::AttackerNode attacker(sched, net, 0x0a000002, config.chain.magic);
  bsattack::Crafter crafter(config.chain);

  bsattack::BmDosConfig bm;
  const std::string payload = flags.Get("payload", "bogus-block");
  if (payload == "ping") bm.payload = bsattack::BmDosConfig::Payload::kPing;
  else if (payload == "unknown") bm.payload = bsattack::BmDosConfig::Payload::kUnknownCommand;
  else if (payload == "invalid-pow") bm.payload = bsattack::BmDosConfig::Payload::kInvalidPowBlock;
  else bm.payload = bsattack::BmDosConfig::Payload::kBogusBlock;
  bsattack::BmDosAttack attack(attacker, {victim.Ip(), 8333}, crafter, bm);
  attack.Start();
  sched.RunUntil(bsim::FromSeconds(flags.GetNum("seconds", 5)));
  attack.Stop();

  const std::string format = flags.Get("format", "prom");
  if (format == "json") {
    std::printf("%s\n", registry.RenderJson().c_str());
  } else {
    std::printf("%s", registry.RenderPrometheus().c_str());
  }
  return 0;
}

void Usage() {
  std::printf(
      "banscore-lab <scenario> [--flag value ...]\n"
      "scenarios:\n"
      "  rules   --version 0.20|0.21|0.22\n"
      "  bmdos   --payload ping|bogus-block|unknown|invalid-pow --connections N\n"
      "          --rate R --seconds S --policy banscore|infinity|disabled|goodscore\n"
      "  sybil   --identifiers N --delay-ms D --version V --threshold T\n"
      "  defame  --mode pre|post --policy P\n"
      "  detect  --train-minutes M --window W --attack bmdos|defame\n"
      "  dump-metrics --seconds S --payload P --format prom|json\n"
      "          (run a short instrumented flood, print the bsobs snapshot)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string scenario = argv[1];
  const Flags flags(argc, argv, 2);
  if (scenario == "rules") return RunRules(flags);
  if (scenario == "bmdos") return RunBmDos(flags);
  if (scenario == "sybil") return RunSybil(flags);
  if (scenario == "defame") return RunDefame(flags);
  if (scenario == "detect") return RunDetect(flags);
  if (scenario == "dump-metrics") return RunDumpMetrics(flags);
  Usage();
  return 2;
}
