# bench-diff round-trip driver (ctest cli_bench_diff).
#
#   1. Run bench_hotpath twice with the same seed; bench-diff between the two
#      reports must pass (deterministic counters identical, timings within
#      the loose gate).
#   2. A report against a file with a foreign schema must be refused (exit 2).
#
# Invoked with -DLAB=<banscore-lab> -DBENCH=<bench_hotpath> -DDIR=<scratch>.
file(REMOVE_RECURSE "${DIR}")
file(MAKE_DIRECTORY "${DIR}")

execute_process(COMMAND "${BENCH}" --sim-seconds 3 --json "${DIR}/a.json"
                RESULT_VARIABLE a_rc OUTPUT_QUIET)
if(NOT a_rc EQUAL 0)
  message(FATAL_ERROR "bench_hotpath run A failed (rc=${a_rc})")
endif()
execute_process(COMMAND "${BENCH}" --sim-seconds 3 --json "${DIR}/b.json"
                RESULT_VARIABLE b_rc OUTPUT_QUIET)
if(NOT b_rc EQUAL 0)
  message(FATAL_ERROR "bench_hotpath run B failed (rc=${b_rc})")
endif()

execute_process(COMMAND "${LAB}" bench-diff --old "${DIR}/a.json"
                --new "${DIR}/b.json" --tolerance 0.0 --timing-tolerance 20.0
                RESULT_VARIABLE diff_rc OUTPUT_VARIABLE diff_out)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR "same-seed bench-diff failed (rc=${diff_rc}): ${diff_out}")
endif()

file(WRITE "${DIR}/foreign.json" "{\"bench\":\"bench_hotpath\"}\n")
execute_process(COMMAND "${LAB}" bench-diff --old "${DIR}/a.json"
                --new "${DIR}/foreign.json"
                RESULT_VARIABLE foreign_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT foreign_rc EQUAL 2)
  message(FATAL_ERROR
          "schema-less report was not refused with exit 2 (rc=${foreign_rc})")
endif()
