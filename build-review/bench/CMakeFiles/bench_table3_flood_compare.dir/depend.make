# Empty dependencies file for bench_table3_flood_compare.
# This may be replaced when dependencies are built.
