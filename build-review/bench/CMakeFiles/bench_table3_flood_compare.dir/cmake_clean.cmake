file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_flood_compare.dir/bench_table3_flood_compare.cpp.o"
  "CMakeFiles/bench_table3_flood_compare.dir/bench_table3_flood_compare.cpp.o.d"
  "bench_table3_flood_compare"
  "bench_table3_flood_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_flood_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
