
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_flood_compare.cpp" "bench/CMakeFiles/bench_table3_flood_compare.dir/bench_table3_flood_compare.cpp.o" "gcc" "bench/CMakeFiles/bench_table3_flood_compare.dir/bench_table3_flood_compare.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/attack/CMakeFiles/bsattack.dir/DependInfo.cmake"
  "/root/repo/build-review/src/detect/CMakeFiles/bsdetect.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mlbase/CMakeFiles/bsml.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/bsnet.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/bsim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/proto/CMakeFiles/bsproto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/chain/CMakeFiles/bschain.dir/DependInfo.cmake"
  "/root/repo/build-review/src/crypto/CMakeFiles/bscrypto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/bsobs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/bsutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
