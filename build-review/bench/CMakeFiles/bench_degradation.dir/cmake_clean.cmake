file(REMOVE_RECURSE
  "CMakeFiles/bench_degradation.dir/bench_degradation.cpp.o"
  "CMakeFiles/bench_degradation.dir/bench_degradation.cpp.o.d"
  "bench_degradation"
  "bench_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
