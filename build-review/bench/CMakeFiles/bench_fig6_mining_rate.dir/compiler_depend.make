# Empty compiler generated dependencies file for bench_fig6_mining_rate.
# This may be replaced when dependencies are built.
