# Empty dependencies file for bench_fig8_defamation.
# This may be replaced when dependencies are built.
