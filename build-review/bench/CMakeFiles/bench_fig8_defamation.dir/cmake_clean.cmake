file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_defamation.dir/bench_fig8_defamation.cpp.o"
  "CMakeFiles/bench_fig8_defamation.dir/bench_fig8_defamation.cpp.o.d"
  "bench_fig8_defamation"
  "bench_fig8_defamation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_defamation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
