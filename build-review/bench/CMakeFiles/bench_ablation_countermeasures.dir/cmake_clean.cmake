file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_countermeasures.dir/bench_ablation_countermeasures.cpp.o"
  "CMakeFiles/bench_ablation_countermeasures.dir/bench_ablation_countermeasures.cpp.o.d"
  "bench_ablation_countermeasures"
  "bench_ablation_countermeasures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_countermeasures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
