# Empty compiler generated dependencies file for bench_ablation_countermeasures.
# This may be replaced when dependencies are built.
