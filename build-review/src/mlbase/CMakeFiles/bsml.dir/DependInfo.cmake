
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mlbase/autoencoder.cpp" "src/mlbase/CMakeFiles/bsml.dir/autoencoder.cpp.o" "gcc" "src/mlbase/CMakeFiles/bsml.dir/autoencoder.cpp.o.d"
  "/root/repo/src/mlbase/boosting.cpp" "src/mlbase/CMakeFiles/bsml.dir/boosting.cpp.o" "gcc" "src/mlbase/CMakeFiles/bsml.dir/boosting.cpp.o.d"
  "/root/repo/src/mlbase/dataset.cpp" "src/mlbase/CMakeFiles/bsml.dir/dataset.cpp.o" "gcc" "src/mlbase/CMakeFiles/bsml.dir/dataset.cpp.o.d"
  "/root/repo/src/mlbase/dnn.cpp" "src/mlbase/CMakeFiles/bsml.dir/dnn.cpp.o" "gcc" "src/mlbase/CMakeFiles/bsml.dir/dnn.cpp.o.d"
  "/root/repo/src/mlbase/forest.cpp" "src/mlbase/CMakeFiles/bsml.dir/forest.cpp.o" "gcc" "src/mlbase/CMakeFiles/bsml.dir/forest.cpp.o.d"
  "/root/repo/src/mlbase/kernel_svm.cpp" "src/mlbase/CMakeFiles/bsml.dir/kernel_svm.cpp.o" "gcc" "src/mlbase/CMakeFiles/bsml.dir/kernel_svm.cpp.o.d"
  "/root/repo/src/mlbase/logistic.cpp" "src/mlbase/CMakeFiles/bsml.dir/logistic.cpp.o" "gcc" "src/mlbase/CMakeFiles/bsml.dir/logistic.cpp.o.d"
  "/root/repo/src/mlbase/ocsvm.cpp" "src/mlbase/CMakeFiles/bsml.dir/ocsvm.cpp.o" "gcc" "src/mlbase/CMakeFiles/bsml.dir/ocsvm.cpp.o.d"
  "/root/repo/src/mlbase/svm.cpp" "src/mlbase/CMakeFiles/bsml.dir/svm.cpp.o" "gcc" "src/mlbase/CMakeFiles/bsml.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/bsutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
