# Empty dependencies file for bsml.
# This may be replaced when dependencies are built.
