file(REMOVE_RECURSE
  "libbsml.a"
)
