file(REMOVE_RECURSE
  "CMakeFiles/bsml.dir/autoencoder.cpp.o"
  "CMakeFiles/bsml.dir/autoencoder.cpp.o.d"
  "CMakeFiles/bsml.dir/boosting.cpp.o"
  "CMakeFiles/bsml.dir/boosting.cpp.o.d"
  "CMakeFiles/bsml.dir/dataset.cpp.o"
  "CMakeFiles/bsml.dir/dataset.cpp.o.d"
  "CMakeFiles/bsml.dir/dnn.cpp.o"
  "CMakeFiles/bsml.dir/dnn.cpp.o.d"
  "CMakeFiles/bsml.dir/forest.cpp.o"
  "CMakeFiles/bsml.dir/forest.cpp.o.d"
  "CMakeFiles/bsml.dir/kernel_svm.cpp.o"
  "CMakeFiles/bsml.dir/kernel_svm.cpp.o.d"
  "CMakeFiles/bsml.dir/logistic.cpp.o"
  "CMakeFiles/bsml.dir/logistic.cpp.o.d"
  "CMakeFiles/bsml.dir/ocsvm.cpp.o"
  "CMakeFiles/bsml.dir/ocsvm.cpp.o.d"
  "CMakeFiles/bsml.dir/svm.cpp.o"
  "CMakeFiles/bsml.dir/svm.cpp.o.d"
  "libbsml.a"
  "libbsml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
