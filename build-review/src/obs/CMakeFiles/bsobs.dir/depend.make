# Empty dependencies file for bsobs.
# This may be replaced when dependencies are built.
