file(REMOVE_RECURSE
  "libbsobs.a"
)
