file(REMOVE_RECURSE
  "CMakeFiles/bsobs.dir/metrics.cpp.o"
  "CMakeFiles/bsobs.dir/metrics.cpp.o.d"
  "CMakeFiles/bsobs.dir/trace.cpp.o"
  "CMakeFiles/bsobs.dir/trace.cpp.o.d"
  "libbsobs.a"
  "libbsobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
