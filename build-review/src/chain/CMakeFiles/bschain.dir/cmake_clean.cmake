file(REMOVE_RECURSE
  "CMakeFiles/bschain.dir/block.cpp.o"
  "CMakeFiles/bschain.dir/block.cpp.o.d"
  "CMakeFiles/bschain.dir/chainstate.cpp.o"
  "CMakeFiles/bschain.dir/chainstate.cpp.o.d"
  "CMakeFiles/bschain.dir/mempool.cpp.o"
  "CMakeFiles/bschain.dir/mempool.cpp.o.d"
  "CMakeFiles/bschain.dir/miner.cpp.o"
  "CMakeFiles/bschain.dir/miner.cpp.o.d"
  "CMakeFiles/bschain.dir/pow.cpp.o"
  "CMakeFiles/bschain.dir/pow.cpp.o.d"
  "CMakeFiles/bschain.dir/transaction.cpp.o"
  "CMakeFiles/bschain.dir/transaction.cpp.o.d"
  "CMakeFiles/bschain.dir/validation.cpp.o"
  "CMakeFiles/bschain.dir/validation.cpp.o.d"
  "libbschain.a"
  "libbschain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bschain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
