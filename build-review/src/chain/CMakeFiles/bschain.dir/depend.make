# Empty dependencies file for bschain.
# This may be replaced when dependencies are built.
