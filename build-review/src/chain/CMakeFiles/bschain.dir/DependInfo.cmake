
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/block.cpp" "src/chain/CMakeFiles/bschain.dir/block.cpp.o" "gcc" "src/chain/CMakeFiles/bschain.dir/block.cpp.o.d"
  "/root/repo/src/chain/chainstate.cpp" "src/chain/CMakeFiles/bschain.dir/chainstate.cpp.o" "gcc" "src/chain/CMakeFiles/bschain.dir/chainstate.cpp.o.d"
  "/root/repo/src/chain/mempool.cpp" "src/chain/CMakeFiles/bschain.dir/mempool.cpp.o" "gcc" "src/chain/CMakeFiles/bschain.dir/mempool.cpp.o.d"
  "/root/repo/src/chain/miner.cpp" "src/chain/CMakeFiles/bschain.dir/miner.cpp.o" "gcc" "src/chain/CMakeFiles/bschain.dir/miner.cpp.o.d"
  "/root/repo/src/chain/pow.cpp" "src/chain/CMakeFiles/bschain.dir/pow.cpp.o" "gcc" "src/chain/CMakeFiles/bschain.dir/pow.cpp.o.d"
  "/root/repo/src/chain/transaction.cpp" "src/chain/CMakeFiles/bschain.dir/transaction.cpp.o" "gcc" "src/chain/CMakeFiles/bschain.dir/transaction.cpp.o.d"
  "/root/repo/src/chain/validation.cpp" "src/chain/CMakeFiles/bschain.dir/validation.cpp.o" "gcc" "src/chain/CMakeFiles/bschain.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/crypto/CMakeFiles/bscrypto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/bsutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
