file(REMOVE_RECURSE
  "libbschain.a"
)
