# Empty dependencies file for bsim.
# This may be replaced when dependencies are built.
