file(REMOVE_RECURSE
  "CMakeFiles/bsim.dir/cpu.cpp.o"
  "CMakeFiles/bsim.dir/cpu.cpp.o.d"
  "CMakeFiles/bsim.dir/faults.cpp.o"
  "CMakeFiles/bsim.dir/faults.cpp.o.d"
  "CMakeFiles/bsim.dir/network.cpp.o"
  "CMakeFiles/bsim.dir/network.cpp.o.d"
  "CMakeFiles/bsim.dir/scheduler.cpp.o"
  "CMakeFiles/bsim.dir/scheduler.cpp.o.d"
  "CMakeFiles/bsim.dir/tcp.cpp.o"
  "CMakeFiles/bsim.dir/tcp.cpp.o.d"
  "libbsim.a"
  "libbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
