file(REMOVE_RECURSE
  "libbsim.a"
)
