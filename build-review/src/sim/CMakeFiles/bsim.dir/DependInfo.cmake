
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cpu.cpp" "src/sim/CMakeFiles/bsim.dir/cpu.cpp.o" "gcc" "src/sim/CMakeFiles/bsim.dir/cpu.cpp.o.d"
  "/root/repo/src/sim/faults.cpp" "src/sim/CMakeFiles/bsim.dir/faults.cpp.o" "gcc" "src/sim/CMakeFiles/bsim.dir/faults.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/bsim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/bsim.dir/network.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/bsim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/bsim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/tcp.cpp" "src/sim/CMakeFiles/bsim.dir/tcp.cpp.o" "gcc" "src/sim/CMakeFiles/bsim.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/proto/CMakeFiles/bsproto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/bsobs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/bsutil.dir/DependInfo.cmake"
  "/root/repo/build-review/src/chain/CMakeFiles/bschain.dir/DependInfo.cmake"
  "/root/repo/build-review/src/crypto/CMakeFiles/bscrypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
