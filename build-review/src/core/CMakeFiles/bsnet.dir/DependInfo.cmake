
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/addrman.cpp" "src/core/CMakeFiles/bsnet.dir/addrman.cpp.o" "gcc" "src/core/CMakeFiles/bsnet.dir/addrman.cpp.o.d"
  "/root/repo/src/core/banman.cpp" "src/core/CMakeFiles/bsnet.dir/banman.cpp.o" "gcc" "src/core/CMakeFiles/bsnet.dir/banman.cpp.o.d"
  "/root/repo/src/core/costmodel.cpp" "src/core/CMakeFiles/bsnet.dir/costmodel.cpp.o" "gcc" "src/core/CMakeFiles/bsnet.dir/costmodel.cpp.o.d"
  "/root/repo/src/core/eviction.cpp" "src/core/CMakeFiles/bsnet.dir/eviction.cpp.o" "gcc" "src/core/CMakeFiles/bsnet.dir/eviction.cpp.o.d"
  "/root/repo/src/core/misbehavior.cpp" "src/core/CMakeFiles/bsnet.dir/misbehavior.cpp.o" "gcc" "src/core/CMakeFiles/bsnet.dir/misbehavior.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/core/CMakeFiles/bsnet.dir/node.cpp.o" "gcc" "src/core/CMakeFiles/bsnet.dir/node.cpp.o.d"
  "/root/repo/src/core/ratelimit.cpp" "src/core/CMakeFiles/bsnet.dir/ratelimit.cpp.o" "gcc" "src/core/CMakeFiles/bsnet.dir/ratelimit.cpp.o.d"
  "/root/repo/src/core/rules.cpp" "src/core/CMakeFiles/bsnet.dir/rules.cpp.o" "gcc" "src/core/CMakeFiles/bsnet.dir/rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/bsim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/proto/CMakeFiles/bsproto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/chain/CMakeFiles/bschain.dir/DependInfo.cmake"
  "/root/repo/build-review/src/crypto/CMakeFiles/bscrypto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/bsobs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/bsutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
