# Empty dependencies file for bsnet.
# This may be replaced when dependencies are built.
