file(REMOVE_RECURSE
  "CMakeFiles/bsnet.dir/addrman.cpp.o"
  "CMakeFiles/bsnet.dir/addrman.cpp.o.d"
  "CMakeFiles/bsnet.dir/banman.cpp.o"
  "CMakeFiles/bsnet.dir/banman.cpp.o.d"
  "CMakeFiles/bsnet.dir/costmodel.cpp.o"
  "CMakeFiles/bsnet.dir/costmodel.cpp.o.d"
  "CMakeFiles/bsnet.dir/eviction.cpp.o"
  "CMakeFiles/bsnet.dir/eviction.cpp.o.d"
  "CMakeFiles/bsnet.dir/misbehavior.cpp.o"
  "CMakeFiles/bsnet.dir/misbehavior.cpp.o.d"
  "CMakeFiles/bsnet.dir/node.cpp.o"
  "CMakeFiles/bsnet.dir/node.cpp.o.d"
  "CMakeFiles/bsnet.dir/ratelimit.cpp.o"
  "CMakeFiles/bsnet.dir/ratelimit.cpp.o.d"
  "CMakeFiles/bsnet.dir/rules.cpp.o"
  "CMakeFiles/bsnet.dir/rules.cpp.o.d"
  "libbsnet.a"
  "libbsnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
