file(REMOVE_RECURSE
  "libbsnet.a"
)
