# Empty dependencies file for bscrypto.
# This may be replaced when dependencies are built.
