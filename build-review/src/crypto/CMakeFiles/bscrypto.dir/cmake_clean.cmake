file(REMOVE_RECURSE
  "CMakeFiles/bscrypto.dir/hash256.cpp.o"
  "CMakeFiles/bscrypto.dir/hash256.cpp.o.d"
  "CMakeFiles/bscrypto.dir/merkle.cpp.o"
  "CMakeFiles/bscrypto.dir/merkle.cpp.o.d"
  "CMakeFiles/bscrypto.dir/murmur3.cpp.o"
  "CMakeFiles/bscrypto.dir/murmur3.cpp.o.d"
  "CMakeFiles/bscrypto.dir/partial_merkle.cpp.o"
  "CMakeFiles/bscrypto.dir/partial_merkle.cpp.o.d"
  "CMakeFiles/bscrypto.dir/sha256.cpp.o"
  "CMakeFiles/bscrypto.dir/sha256.cpp.o.d"
  "libbscrypto.a"
  "libbscrypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bscrypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
