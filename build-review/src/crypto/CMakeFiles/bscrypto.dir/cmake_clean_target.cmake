file(REMOVE_RECURSE
  "libbscrypto.a"
)
