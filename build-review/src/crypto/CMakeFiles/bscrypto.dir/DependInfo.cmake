
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/hash256.cpp" "src/crypto/CMakeFiles/bscrypto.dir/hash256.cpp.o" "gcc" "src/crypto/CMakeFiles/bscrypto.dir/hash256.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "src/crypto/CMakeFiles/bscrypto.dir/merkle.cpp.o" "gcc" "src/crypto/CMakeFiles/bscrypto.dir/merkle.cpp.o.d"
  "/root/repo/src/crypto/murmur3.cpp" "src/crypto/CMakeFiles/bscrypto.dir/murmur3.cpp.o" "gcc" "src/crypto/CMakeFiles/bscrypto.dir/murmur3.cpp.o.d"
  "/root/repo/src/crypto/partial_merkle.cpp" "src/crypto/CMakeFiles/bscrypto.dir/partial_merkle.cpp.o" "gcc" "src/crypto/CMakeFiles/bscrypto.dir/partial_merkle.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/bscrypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/bscrypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/bsutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
