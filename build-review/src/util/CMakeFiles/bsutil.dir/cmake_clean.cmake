file(REMOVE_RECURSE
  "CMakeFiles/bsutil.dir/hex.cpp.o"
  "CMakeFiles/bsutil.dir/hex.cpp.o.d"
  "CMakeFiles/bsutil.dir/log.cpp.o"
  "CMakeFiles/bsutil.dir/log.cpp.o.d"
  "CMakeFiles/bsutil.dir/serialize.cpp.o"
  "CMakeFiles/bsutil.dir/serialize.cpp.o.d"
  "CMakeFiles/bsutil.dir/stats.cpp.o"
  "CMakeFiles/bsutil.dir/stats.cpp.o.d"
  "libbsutil.a"
  "libbsutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
