file(REMOVE_RECURSE
  "libbsutil.a"
)
