# Empty dependencies file for bsutil.
# This may be replaced when dependencies are built.
