file(REMOVE_RECURSE
  "libbsproto.a"
)
