# Empty dependencies file for bsproto.
# This may be replaced when dependencies are built.
