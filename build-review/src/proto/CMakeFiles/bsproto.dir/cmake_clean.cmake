file(REMOVE_RECURSE
  "CMakeFiles/bsproto.dir/bloom.cpp.o"
  "CMakeFiles/bsproto.dir/bloom.cpp.o.d"
  "CMakeFiles/bsproto.dir/codec.cpp.o"
  "CMakeFiles/bsproto.dir/codec.cpp.o.d"
  "CMakeFiles/bsproto.dir/compact.cpp.o"
  "CMakeFiles/bsproto.dir/compact.cpp.o.d"
  "CMakeFiles/bsproto.dir/constants.cpp.o"
  "CMakeFiles/bsproto.dir/constants.cpp.o.d"
  "CMakeFiles/bsproto.dir/messages.cpp.o"
  "CMakeFiles/bsproto.dir/messages.cpp.o.d"
  "CMakeFiles/bsproto.dir/netaddr.cpp.o"
  "CMakeFiles/bsproto.dir/netaddr.cpp.o.d"
  "libbsproto.a"
  "libbsproto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsproto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
