
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/bloom.cpp" "src/proto/CMakeFiles/bsproto.dir/bloom.cpp.o" "gcc" "src/proto/CMakeFiles/bsproto.dir/bloom.cpp.o.d"
  "/root/repo/src/proto/codec.cpp" "src/proto/CMakeFiles/bsproto.dir/codec.cpp.o" "gcc" "src/proto/CMakeFiles/bsproto.dir/codec.cpp.o.d"
  "/root/repo/src/proto/compact.cpp" "src/proto/CMakeFiles/bsproto.dir/compact.cpp.o" "gcc" "src/proto/CMakeFiles/bsproto.dir/compact.cpp.o.d"
  "/root/repo/src/proto/constants.cpp" "src/proto/CMakeFiles/bsproto.dir/constants.cpp.o" "gcc" "src/proto/CMakeFiles/bsproto.dir/constants.cpp.o.d"
  "/root/repo/src/proto/messages.cpp" "src/proto/CMakeFiles/bsproto.dir/messages.cpp.o" "gcc" "src/proto/CMakeFiles/bsproto.dir/messages.cpp.o.d"
  "/root/repo/src/proto/netaddr.cpp" "src/proto/CMakeFiles/bsproto.dir/netaddr.cpp.o" "gcc" "src/proto/CMakeFiles/bsproto.dir/netaddr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/chain/CMakeFiles/bschain.dir/DependInfo.cmake"
  "/root/repo/build-review/src/crypto/CMakeFiles/bscrypto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/bsutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
