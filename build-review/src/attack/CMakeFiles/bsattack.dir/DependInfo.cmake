
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/attacker.cpp" "src/attack/CMakeFiles/bsattack.dir/attacker.cpp.o" "gcc" "src/attack/CMakeFiles/bsattack.dir/attacker.cpp.o.d"
  "/root/repo/src/attack/bmdos.cpp" "src/attack/CMakeFiles/bsattack.dir/bmdos.cpp.o" "gcc" "src/attack/CMakeFiles/bsattack.dir/bmdos.cpp.o.d"
  "/root/repo/src/attack/crafter.cpp" "src/attack/CMakeFiles/bsattack.dir/crafter.cpp.o" "gcc" "src/attack/CMakeFiles/bsattack.dir/crafter.cpp.o.d"
  "/root/repo/src/attack/defamation.cpp" "src/attack/CMakeFiles/bsattack.dir/defamation.cpp.o" "gcc" "src/attack/CMakeFiles/bsattack.dir/defamation.cpp.o.d"
  "/root/repo/src/attack/eclipse.cpp" "src/attack/CMakeFiles/bsattack.dir/eclipse.cpp.o" "gcc" "src/attack/CMakeFiles/bsattack.dir/eclipse.cpp.o.d"
  "/root/repo/src/attack/icmpflood.cpp" "src/attack/CMakeFiles/bsattack.dir/icmpflood.cpp.o" "gcc" "src/attack/CMakeFiles/bsattack.dir/icmpflood.cpp.o.d"
  "/root/repo/src/attack/sybil.cpp" "src/attack/CMakeFiles/bsattack.dir/sybil.cpp.o" "gcc" "src/attack/CMakeFiles/bsattack.dir/sybil.cpp.o.d"
  "/root/repo/src/attack/traffic.cpp" "src/attack/CMakeFiles/bsattack.dir/traffic.cpp.o" "gcc" "src/attack/CMakeFiles/bsattack.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/bsnet.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/bsim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/proto/CMakeFiles/bsproto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/chain/CMakeFiles/bschain.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/bsutil.dir/DependInfo.cmake"
  "/root/repo/build-review/src/crypto/CMakeFiles/bscrypto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/bsobs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
