file(REMOVE_RECURSE
  "CMakeFiles/bsattack.dir/attacker.cpp.o"
  "CMakeFiles/bsattack.dir/attacker.cpp.o.d"
  "CMakeFiles/bsattack.dir/bmdos.cpp.o"
  "CMakeFiles/bsattack.dir/bmdos.cpp.o.d"
  "CMakeFiles/bsattack.dir/crafter.cpp.o"
  "CMakeFiles/bsattack.dir/crafter.cpp.o.d"
  "CMakeFiles/bsattack.dir/defamation.cpp.o"
  "CMakeFiles/bsattack.dir/defamation.cpp.o.d"
  "CMakeFiles/bsattack.dir/eclipse.cpp.o"
  "CMakeFiles/bsattack.dir/eclipse.cpp.o.d"
  "CMakeFiles/bsattack.dir/icmpflood.cpp.o"
  "CMakeFiles/bsattack.dir/icmpflood.cpp.o.d"
  "CMakeFiles/bsattack.dir/sybil.cpp.o"
  "CMakeFiles/bsattack.dir/sybil.cpp.o.d"
  "CMakeFiles/bsattack.dir/traffic.cpp.o"
  "CMakeFiles/bsattack.dir/traffic.cpp.o.d"
  "libbsattack.a"
  "libbsattack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsattack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
