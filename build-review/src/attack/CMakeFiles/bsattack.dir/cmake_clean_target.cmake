file(REMOVE_RECURSE
  "libbsattack.a"
)
