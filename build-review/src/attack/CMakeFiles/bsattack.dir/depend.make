# Empty dependencies file for bsattack.
# This may be replaced when dependencies are built.
