file(REMOVE_RECURSE
  "libbsdetect.a"
)
