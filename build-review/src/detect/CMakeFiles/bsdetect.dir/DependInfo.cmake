
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/engine.cpp" "src/detect/CMakeFiles/bsdetect.dir/engine.cpp.o" "gcc" "src/detect/CMakeFiles/bsdetect.dir/engine.cpp.o.d"
  "/root/repo/src/detect/monitor.cpp" "src/detect/CMakeFiles/bsdetect.dir/monitor.cpp.o" "gcc" "src/detect/CMakeFiles/bsdetect.dir/monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/bsnet.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/bsim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/proto/CMakeFiles/bsproto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/bsutil.dir/DependInfo.cmake"
  "/root/repo/build-review/src/chain/CMakeFiles/bschain.dir/DependInfo.cmake"
  "/root/repo/build-review/src/crypto/CMakeFiles/bscrypto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/bsobs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
