file(REMOVE_RECURSE
  "CMakeFiles/bsdetect.dir/engine.cpp.o"
  "CMakeFiles/bsdetect.dir/engine.cpp.o.d"
  "CMakeFiles/bsdetect.dir/monitor.cpp.o"
  "CMakeFiles/bsdetect.dir/monitor.cpp.o.d"
  "libbsdetect.a"
  "libbsdetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsdetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
