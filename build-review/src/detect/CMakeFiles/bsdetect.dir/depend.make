# Empty dependencies file for bsdetect.
# This may be replaced when dependencies are built.
