# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/util_tests[1]_include.cmake")
include("/root/repo/build-review/tests/obs_tests[1]_include.cmake")
include("/root/repo/build-review/tests/crypto_tests[1]_include.cmake")
include("/root/repo/build-review/tests/proto_tests[1]_include.cmake")
include("/root/repo/build-review/tests/chain_tests[1]_include.cmake")
include("/root/repo/build-review/tests/sim_tests[1]_include.cmake")
include("/root/repo/build-review/tests/rules_tests[1]_include.cmake")
include("/root/repo/build-review/tests/bloom_tests[1]_include.cmake")
include("/root/repo/build-review/tests/persistence_tests[1]_include.cmake")
include("/root/repo/build-review/tests/property_tests[1]_include.cmake")
include("/root/repo/build-review/tests/node_tests[1]_include.cmake")
include("/root/repo/build-review/tests/attack_tests[1]_include.cmake")
include("/root/repo/build-review/tests/detect_tests[1]_include.cmake")
include("/root/repo/build-review/tests/mlbase_tests[1]_include.cmake")
include("/root/repo/build-review/tests/countermeasure_tests[1]_include.cmake")
include("/root/repo/build-review/tests/e2e_tests[1]_include.cmake")
include("/root/repo/build-review/tests/chaos_tests[1]_include.cmake")
include("/root/repo/build-review/tests/governance_tests[1]_include.cmake")
