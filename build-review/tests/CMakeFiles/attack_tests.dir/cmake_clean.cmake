file(REMOVE_RECURSE
  "CMakeFiles/attack_tests.dir/attack_test.cpp.o"
  "CMakeFiles/attack_tests.dir/attack_test.cpp.o.d"
  "attack_tests"
  "attack_tests.pdb"
  "attack_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
