# Empty compiler generated dependencies file for attack_tests.
# This may be replaced when dependencies are built.
