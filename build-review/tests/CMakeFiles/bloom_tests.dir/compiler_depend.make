# Empty compiler generated dependencies file for bloom_tests.
# This may be replaced when dependencies are built.
