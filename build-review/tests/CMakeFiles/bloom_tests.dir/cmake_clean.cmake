file(REMOVE_RECURSE
  "CMakeFiles/bloom_tests.dir/bloom_test.cpp.o"
  "CMakeFiles/bloom_tests.dir/bloom_test.cpp.o.d"
  "bloom_tests"
  "bloom_tests.pdb"
  "bloom_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bloom_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
