file(REMOVE_RECURSE
  "CMakeFiles/chaos_tests.dir/chaos_test.cpp.o"
  "CMakeFiles/chaos_tests.dir/chaos_test.cpp.o.d"
  "chaos_tests"
  "chaos_tests.pdb"
  "chaos_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
