# Empty dependencies file for chaos_tests.
# This may be replaced when dependencies are built.
