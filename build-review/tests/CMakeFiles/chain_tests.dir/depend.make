# Empty dependencies file for chain_tests.
# This may be replaced when dependencies are built.
