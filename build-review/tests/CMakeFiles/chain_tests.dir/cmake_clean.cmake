file(REMOVE_RECURSE
  "CMakeFiles/chain_tests.dir/chain_test.cpp.o"
  "CMakeFiles/chain_tests.dir/chain_test.cpp.o.d"
  "chain_tests"
  "chain_tests.pdb"
  "chain_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
