# Empty compiler generated dependencies file for mlbase_tests.
# This may be replaced when dependencies are built.
