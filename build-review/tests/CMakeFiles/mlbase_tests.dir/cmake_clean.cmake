file(REMOVE_RECURSE
  "CMakeFiles/mlbase_tests.dir/mlbase_test.cpp.o"
  "CMakeFiles/mlbase_tests.dir/mlbase_test.cpp.o.d"
  "mlbase_tests"
  "mlbase_tests.pdb"
  "mlbase_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlbase_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
