# Empty dependencies file for e2e_tests.
# This may be replaced when dependencies are built.
