file(REMOVE_RECURSE
  "CMakeFiles/e2e_tests.dir/e2e_test.cpp.o"
  "CMakeFiles/e2e_tests.dir/e2e_test.cpp.o.d"
  "e2e_tests"
  "e2e_tests.pdb"
  "e2e_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
