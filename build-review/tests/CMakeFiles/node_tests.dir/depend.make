# Empty dependencies file for node_tests.
# This may be replaced when dependencies are built.
