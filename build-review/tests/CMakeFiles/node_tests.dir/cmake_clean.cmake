file(REMOVE_RECURSE
  "CMakeFiles/node_tests.dir/node_test.cpp.o"
  "CMakeFiles/node_tests.dir/node_test.cpp.o.d"
  "node_tests"
  "node_tests.pdb"
  "node_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
