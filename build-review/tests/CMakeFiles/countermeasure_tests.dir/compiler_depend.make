# Empty compiler generated dependencies file for countermeasure_tests.
# This may be replaced when dependencies are built.
