file(REMOVE_RECURSE
  "CMakeFiles/countermeasure_tests.dir/countermeasure_test.cpp.o"
  "CMakeFiles/countermeasure_tests.dir/countermeasure_test.cpp.o.d"
  "countermeasure_tests"
  "countermeasure_tests.pdb"
  "countermeasure_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/countermeasure_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
