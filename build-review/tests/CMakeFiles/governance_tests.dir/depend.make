# Empty dependencies file for governance_tests.
# This may be replaced when dependencies are built.
