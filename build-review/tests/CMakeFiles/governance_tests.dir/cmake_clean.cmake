file(REMOVE_RECURSE
  "CMakeFiles/governance_tests.dir/governance_test.cpp.o"
  "CMakeFiles/governance_tests.dir/governance_test.cpp.o.d"
  "governance_tests"
  "governance_tests.pdb"
  "governance_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/governance_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
