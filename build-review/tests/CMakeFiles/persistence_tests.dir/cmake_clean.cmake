file(REMOVE_RECURSE
  "CMakeFiles/persistence_tests.dir/persistence_test.cpp.o"
  "CMakeFiles/persistence_tests.dir/persistence_test.cpp.o.d"
  "persistence_tests"
  "persistence_tests.pdb"
  "persistence_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistence_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
