# Empty dependencies file for persistence_tests.
# This may be replaced when dependencies are built.
