file(REMOVE_RECURSE
  "CMakeFiles/crypto_tests.dir/crypto_test.cpp.o"
  "CMakeFiles/crypto_tests.dir/crypto_test.cpp.o.d"
  "crypto_tests"
  "crypto_tests.pdb"
  "crypto_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
