file(REMOVE_RECURSE
  "CMakeFiles/rules_tests.dir/rules_test.cpp.o"
  "CMakeFiles/rules_tests.dir/rules_test.cpp.o.d"
  "rules_tests"
  "rules_tests.pdb"
  "rules_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
