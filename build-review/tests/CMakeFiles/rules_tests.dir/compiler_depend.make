# Empty compiler generated dependencies file for rules_tests.
# This may be replaced when dependencies are built.
