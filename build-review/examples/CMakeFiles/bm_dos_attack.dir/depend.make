# Empty dependencies file for bm_dos_attack.
# This may be replaced when dependencies are built.
