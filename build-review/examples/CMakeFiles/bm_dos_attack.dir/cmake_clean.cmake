file(REMOVE_RECURSE
  "CMakeFiles/bm_dos_attack.dir/bm_dos_attack.cpp.o"
  "CMakeFiles/bm_dos_attack.dir/bm_dos_attack.cpp.o.d"
  "bm_dos_attack"
  "bm_dos_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_dos_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
