# Empty compiler generated dependencies file for good_score.
# This may be replaced when dependencies are built.
