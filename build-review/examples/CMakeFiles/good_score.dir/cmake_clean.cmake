file(REMOVE_RECURSE
  "CMakeFiles/good_score.dir/good_score.cpp.o"
  "CMakeFiles/good_score.dir/good_score.cpp.o.d"
  "good_score"
  "good_score.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/good_score.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
