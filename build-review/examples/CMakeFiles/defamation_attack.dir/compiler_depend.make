# Empty compiler generated dependencies file for defamation_attack.
# This may be replaced when dependencies are built.
