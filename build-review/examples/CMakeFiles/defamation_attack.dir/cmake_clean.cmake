file(REMOVE_RECURSE
  "CMakeFiles/defamation_attack.dir/defamation_attack.cpp.o"
  "CMakeFiles/defamation_attack.dir/defamation_attack.cpp.o.d"
  "defamation_attack"
  "defamation_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defamation_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
