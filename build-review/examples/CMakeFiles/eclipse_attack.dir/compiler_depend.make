# Empty compiler generated dependencies file for eclipse_attack.
# This may be replaced when dependencies are built.
