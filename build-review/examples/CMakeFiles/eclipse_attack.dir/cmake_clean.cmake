file(REMOVE_RECURSE
  "CMakeFiles/eclipse_attack.dir/eclipse_attack.cpp.o"
  "CMakeFiles/eclipse_attack.dir/eclipse_attack.cpp.o.d"
  "eclipse_attack"
  "eclipse_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eclipse_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
