# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-review/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bm_dos_attack "/root/repo/build-review/examples/bm_dos_attack")
set_tests_properties(example_bm_dos_attack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_defamation_attack "/root/repo/build-review/examples/defamation_attack")
set_tests_properties(example_defamation_attack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_anomaly_detection "/root/repo/build-review/examples/anomaly_detection")
set_tests_properties(example_anomaly_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_good_score "/root/repo/build-review/examples/good_score")
set_tests_properties(example_good_score PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_eclipse_attack "/root/repo/build-review/examples/eclipse_attack")
set_tests_properties(example_eclipse_attack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
