# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-review/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_rules "/root/repo/build-review/tools/banscore-lab" "rules" "--version" "0.21")
set_tests_properties(cli_rules PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bmdos "/root/repo/build-review/tools/banscore-lab" "bmdos" "--payload" "ping" "--seconds" "3")
set_tests_properties(cli_bmdos PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sybil "/root/repo/build-review/tools/banscore-lab" "sybil" "--identifiers" "3")
set_tests_properties(cli_sybil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_defame_pre "/root/repo/build-review/tools/banscore-lab" "defame" "--mode" "pre")
set_tests_properties(cli_defame_pre PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_defame_post "/root/repo/build-review/tools/banscore-lab" "defame" "--mode" "post" "--policy" "goodscore")
set_tests_properties(cli_defame_post PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_detect "/root/repo/build-review/tools/banscore-lab" "detect" "--train-minutes" "30" "--window" "5")
set_tests_properties(cli_detect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dump_metrics "/root/repo/build-review/tools/banscore-lab" "dump-metrics" "--seconds" "2")
set_tests_properties(cli_dump_metrics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_overload "/root/repo/build-review/tools/banscore-lab" "overload" "--defenses" "all" "--procs" "2" "--windows" "4" "--min-ratio" "0.5" "--format" "json")
set_tests_properties(cli_overload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
