# Empty compiler generated dependencies file for banscore-lab.
# This may be replaced when dependencies are built.
