file(REMOVE_RECURSE
  "CMakeFiles/banscore-lab.dir/banscore_lab.cpp.o"
  "CMakeFiles/banscore-lab.dir/banscore_lab.cpp.o.d"
  "banscore-lab"
  "banscore-lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banscore-lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
